//! Equivalence properties of the class-deduplicated quadratic phase:
//! `recover_words_with` (cone-class memoization) must produce the same
//! `assignment` and a bitwise-identical `score_matrix` as the per-bit-pair
//! reference path (`recover_words_reference`) across random profiles,
//! model seeds, thread counts, and corruption (R-Index) levels — and
//! `jaccard_counts` over histograms must equal `jaccard` over slices.

use proptest::prelude::*;
use rebert::{
    jaccard, jaccard_counts, PairSequence, ReBertConfig, ReBertModel, RecoveredWords, Token, Vocab,
};
use rebert_circuits::{corrupt, generate, Profile};
use rebert_netlist::{Netlist, ALL_GATE_TYPES};

fn token_strategy() -> impl Strategy<Value = Token> {
    (0usize..=ALL_GATE_TYPES.len()).prop_map(|i| {
        if i == ALL_GATE_TYPES.len() {
            Token::X
        } else {
            Token::Gate(ALL_GATE_TYPES[i])
        }
    })
}

fn assert_bitwise_equal(dedup: &RecoveredWords, reference: &RecoveredWords, ctx: &str) {
    assert_eq!(dedup.assignment, reference.assignment, "{ctx}: assignment");
    let n = dedup.assignment.len();
    assert_eq!(reference.score_matrix.len(), n, "{ctx}: matrix size");
    for i in 0..n {
        for j in i + 1..n {
            assert_eq!(
                dedup.score_matrix.get(i, j).to_bits(),
                reference.score_matrix.get(i, j).to_bits(),
                "{ctx}: score ({i},{j})"
            );
        }
    }
    assert_eq!(
        dedup.stats.pairs_filtered, reference.stats.pairs_filtered,
        "{ctx}: filtered count"
    );
    assert_eq!(
        dedup.stats.pairs_scored, reference.stats.pairs_scored,
        "{ctx}: scored count"
    );
}

fn check_equivalence(model: &ReBertModel, nl: &Netlist, threads: usize, ctx: &str) {
    let dedup = model.recover_words_with(nl, threads);
    let reference = model.recover_words_reference(nl, threads);
    assert_bitwise_equal(&dedup, &reference, ctx);
    // Memoization bookkeeping: the dedup path never runs the model more
    // often than the reference path, and the split adds up.
    assert!(
        dedup.stats.class_pairs_scored <= reference.stats.pairs_scored,
        "{ctx}"
    );
    assert_eq!(
        dedup.stats.pairs_scored,
        dedup.stats.class_pairs_scored + dedup.stats.pairs_memoized,
        "{ctx}"
    );
    assert!(dedup.stats.classes >= 1 || nl.dff_count() == 0, "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: class-deduplicated recovery is
    /// bitwise-equal to the bit-pair path for random circuit profiles,
    /// model seeds, thread counts, and corruption levels.
    #[test]
    fn dedup_equals_reference(
        gates in 60usize..140,
        ffs in 4usize..11,
        words in 2usize..4,
        circuit_seed in 0u64..1000,
        model_seed in 0u64..6,
        threads in 1usize..4,
        r_level in 0usize..3,
    ) {
        let words = words.min(ffs);
        let c = generate(&Profile::new("prop", gates, ffs, words), circuit_seed);
        let nl = match [0.0, 0.5, 1.0][r_level] {
            0.0 => c.netlist,
            r => corrupt(&c.netlist, r, circuit_seed ^ 0xC0DE).0,
        };
        let model = ReBertModel::new(ReBertConfig::tiny(), model_seed);
        check_equivalence(
            &model, &nl, threads,
            &format!("gates={gates} ffs={ffs} seed={circuit_seed} r={r_level} threads={threads}"),
        );
    }

    /// `jaccard_counts` over vocabulary histograms equals the slice-based
    /// `jaccard` bit for bit.
    #[test]
    fn jaccard_counts_equals_slice_jaccard(
        a in prop::collection::vec(token_strategy(), 0..40),
        b in prop::collection::vec(token_strategy(), 0..40),
    ) {
        let v = Vocab::new();
        let exact = jaccard(&a, &b);
        let fast = jaccard_counts(&v.histogram(&a), &v.histogram(&b));
        prop_assert_eq!(exact.to_bits(), fast.to_bits(), "{} vs {}", exact, fast);
    }
}

/// A focused matrix over jaccard thresholds, including the degenerate
/// filter-everything and filter-nothing regimes, at several thread counts.
#[test]
fn dedup_equals_reference_across_thresholds() {
    let c = generate(&Profile::new("thr", 100, 10, 3), 77);
    for threshold in [0.0, 0.7, 1.0, 1.01] {
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = threshold;
        let model = ReBertModel::new(cfg, 5);
        for threads in [1usize, 2, 0] {
            check_equivalence(
                &model,
                &c.netlist,
                threads,
                &format!("threshold={threshold} threads={threads}"),
            );
        }
    }
}

/// Full-corruption netlists still dedup correctly (corruption perturbs
/// cones, shrinking classes — equivalence must not depend on how much
/// duplication survives).
#[test]
fn dedup_equals_reference_under_full_corruption() {
    let c = generate(&Profile::new("corr", 120, 9, 3), 13);
    let (bad, _) = corrupt(&c.netlist, 1.0, 99);
    let model = ReBertModel::new(ReBertConfig::tiny(), 2);
    check_equivalence(&model, &bad, 2, "r=1.0");
}

/// Larger truncated pairs: sequences longer than `max_seq` exercise the
/// truncation branch of `PairSequence::build` in both paths.
#[test]
fn dedup_equals_reference_with_truncation() {
    let mut cfg = ReBertConfig::tiny();
    cfg.max_seq = 24; // force truncation of deeper cones
    cfg.k_levels = 5;
    let model = ReBertModel::new(cfg, 4);
    let c = generate(&Profile::new("trunc", 150, 8, 2), 21);
    check_equivalence(&model, &c.netlist, 1, "truncating");
}

/// Sanity: the memoized representative sequence really is what the
/// reference path builds for every member bit pair (spot-checked via the
/// public tokenization APIs).
#[test]
fn representative_sequences_match_member_sequences() {
    use rebert::{bit_sequences, ConeClasses};
    let c = generate(&Profile::new("repr", 100, 12, 3), 3);
    let cfg = ReBertConfig::tiny();
    let seqs = bit_sequences(&c.netlist, cfg.k_levels, cfg.code_width);
    let classes = ConeClasses::build(&seqs);
    for i in 0..seqs.len() {
        for j in i + 1..seqs.len() {
            let (ci, cj) = (classes.class_of(i), classes.class_of(j));
            let (ri, rj) = (classes.representative(ci), classes.representative(cj));
            let member = PairSequence::build(
                &seqs[i].0,
                &seqs[i].1,
                &seqs[j].0,
                &seqs[j].1,
                cfg.code_width,
                cfg.max_seq,
            );
            let repr = PairSequence::build(
                &seqs[ri].0,
                &seqs[ri].1,
                &seqs[rj].0,
                &seqs[rj].1,
                cfg.code_width,
                cfg.max_seq,
            );
            assert_eq!(member.tokens, repr.tokens, "pair ({i},{j})");
            assert_eq!(member.codes.len(), repr.codes.len(), "pair ({i},{j})");
        }
    }
}
