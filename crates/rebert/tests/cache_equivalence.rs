//! Bitwise-equivalence suite for the cross-request score cache: cached
//! recovery must produce the same `ScoreMatrix` and assignment as a cold
//! run — across random profiles, cache sizes (including a 1-entry
//! thrashing LRU), both pair orientations, a persist/restore cycle, and
//! in the presence of poisoned persisted cache files.

use std::sync::Arc;

use rebert::{
    Backend, CancelToken, ReBertConfig, ReBertModel, RecoveredWords, RecoverySession, ScoreCache,
};
use rebert_circuits::{corrupt, generate, Profile};
use rebert_netlist::{GateType, Netlist};

fn assert_bitwise_equal(a: &RecoveredWords, b: &RecoveredWords, label: &str) {
    assert_eq!(a.assignment, b.assignment, "{label}: assignment");
    let n = a.assignment.len();
    assert_eq!(n, b.assignment.len(), "{label}: bit count");
    for i in 0..n {
        for j in i + 1..n {
            assert_eq!(
                a.score_matrix.get(i, j).to_bits(),
                b.score_matrix.get(i, j).to_bits(),
                "{label}: score ({i},{j})"
            );
        }
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rebert_cache_equivalence");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn cached_recovery_is_bitwise_identical_across_profiles() {
    for (bits, words, seed, model_seed) in
        [(10usize, 3usize, 2u64, 5u64), (12, 4, 7, 9), (8, 2, 11, 13)]
    {
        let c = generate(&Profile::new("prof", 100, bits, words), seed);
        let model_for = |s| ReBertModel::new(ReBertConfig::tiny(), s);
        let cold = model_for(model_seed).recover_words_with(&c.netlist, 1);
        assert_eq!(cold.stats.cache_hits, 0, "no cache attached on cold path");
        assert_eq!(cold.stats.cache_misses, 0);

        let model = model_for(model_seed);
        let cache = Arc::new(ScoreCache::new(1 << 20, model.fingerprint()));
        let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
        let first = session.recover(&c.netlist);
        assert_bitwise_equal(&first, &cold, "first cached run");
        assert_eq!(first.stats.cache_hits, 0, "cold cache has no hits");
        assert_eq!(first.stats.cache_misses, first.stats.class_pairs_scored);

        let second = session.recover(&c.netlist);
        assert_bitwise_equal(&second, &cold, "fully warm rerun");
        assert_eq!(second.stats.cache_misses, 0, "warm rerun never misses");
        assert_eq!(second.stats.cache_hits, second.stats.class_pairs_scored);
        assert!(second.stats.cache_hits > 0, "profile produced scored pairs");
    }
}

#[test]
fn cache_sizes_do_not_change_results_including_one_entry_lru() {
    let c = generate(&Profile::new("sizes", 100, 12, 3), 4);
    let model_for = || ReBertModel::new(ReBertConfig::tiny(), 21);
    let cold = model_for().recover_words_with(&c.netlist, 1);
    let fp = model_for().fingerprint();
    for budget in [
        0,                            // no-op cache
        ScoreCache::ENTRY_BYTES,      // 1-entry thrashing LRU
        3 * ScoreCache::ENTRY_BYTES,  // a few entries, constant eviction
        64 * ScoreCache::ENTRY_BYTES, // small
        1 << 22,                      // comfortably larger than the run
    ] {
        let cache = Arc::new(ScoreCache::new(budget, fp));
        let session = RecoverySession::with_cache(model_for(), 1, Arc::clone(&cache));
        for round in 0..2 {
            let rec = session.recover(&c.netlist);
            assert_bitwise_equal(&rec, &cold, &format!("budget {budget} round {round}"));
            assert_eq!(
                rec.stats.cache_hits + rec.stats.cache_misses,
                rec.stats.class_pairs_scored,
                "budget {budget} round {round}: lookups partition the pairs"
            );
        }
        assert!(
            cache.bytes() <= budget,
            "budget {budget}: cache stayed within its byte budget"
        );
    }
}

/// Three bits where bits 0 and 2 share one cone and bit 1 differs, so
/// the bit pair (1, 2) needs the hi→lo orientation of class pair (0, 1)
/// while (0, 1) needs lo→hi — both orientations must round-trip through
/// the cache with their own keys.
fn orientation_netlist() -> Netlist {
    let mut nl = Netlist::new("orient");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    for (i, gt) in [GateType::And, GateType::Or, GateType::And]
        .iter()
        .enumerate()
    {
        let x = nl
            .add_gate_new_net(*gt, vec![a, b], format!("x{i}"))
            .expect("valid gate");
        let q = nl.add_net(format!("q{i}"));
        nl.add_dff(x, q).expect("valid dff");
    }
    nl
}

#[test]
fn both_orientations_hit_their_own_cache_entries() {
    let mut cfg = ReBertConfig::tiny();
    cfg.jaccard_threshold = 0.0; // keep every pair: both orientations survive
    let model_for = || ReBertModel::new(cfg.clone(), 31);
    let nl = orientation_netlist();
    let cold = model_for().recover_words_with(&nl, 1);
    // Classes {0,2} and {1}: one diagonal sequence plus both orientations
    // of the cross pair.
    assert_eq!(cold.stats.classes, 2);
    assert_eq!(cold.stats.class_pairs_scored, 3);

    let model = model_for();
    let cache = Arc::new(ScoreCache::new(1 << 16, model.fingerprint()));
    let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
    let first = session.recover(&nl);
    assert_bitwise_equal(&first, &cold, "orientations, cold cache");
    assert_eq!(first.stats.cache_misses, 3);
    assert_eq!(cache.len(), 3, "each orientation owns a distinct key");

    let second = session.recover(&nl);
    assert_bitwise_equal(&second, &cold, "orientations, warm cache");
    assert_eq!(second.stats.cache_hits, 3);
    assert_eq!(second.stats.cache_misses, 0);
}

#[test]
fn persist_restore_cycle_stays_bitwise_identical() {
    let c = generate(&Profile::new("persist", 110, 12, 4), 6);
    let model_for = || ReBertModel::new(ReBertConfig::tiny(), 41);
    let cold = model_for().recover_words_with(&c.netlist, 1);
    let path = tmp("persist_cycle.bin");

    // First daemon lifetime: fill and flush.
    {
        let model = model_for();
        let cache = Arc::new(ScoreCache::load_or_new(&path, 1 << 20, model.fingerprint()));
        assert!(cache.is_empty(), "no persisted file yet");
        let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
        let rec = session.recover(&c.netlist);
        assert_bitwise_equal(&rec, &cold, "pre-persist run");
        cache.flush(&path).expect("flush succeeds");
    }

    // Second lifetime: restart warm from disk.
    {
        let model = model_for();
        let cache = Arc::new(ScoreCache::load_or_new(&path, 1 << 20, model.fingerprint()));
        assert!(!cache.is_empty(), "restart loads the persisted entries");
        let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
        let rec = session.recover(&c.netlist);
        assert_bitwise_equal(&rec, &cold, "post-restore run");
        assert_eq!(
            rec.stats.cache_misses, 0,
            "restored cache serves everything"
        );
        assert_eq!(rec.stats.cache_hits, rec.stats.class_pairs_scored);
    }

    // A model with different weights ignores the stale file and still
    // recovers correctly from a cold cache.
    {
        let other = ReBertModel::new(ReBertConfig::tiny(), 42);
        let other_cold =
            ReBertModel::new(ReBertConfig::tiny(), 42).recover_words_with(&c.netlist, 1);
        let cache = Arc::new(ScoreCache::load_or_new(&path, 1 << 20, other.fingerprint()));
        assert!(cache.is_empty(), "stale fingerprint file is ignored");
        let session = RecoverySession::with_cache(other, 1, cache);
        assert_bitwise_equal(&session.recover(&c.netlist), &other_cold, "stale-fp run");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn poisoned_cache_file_never_panics_and_results_stay_exact() {
    let c = generate(&Profile::new("poison", 90, 10, 3), 8);
    let model_for = || ReBertModel::new(ReBertConfig::tiny(), 51);
    let cold = model_for().recover_words_with(&c.netlist, 1);
    for (name, bytes) in [
        ("garbage.bin", b"definitely not a score cache".to_vec()),
        ("zeros.bin", vec![0u8; 256]),
        ("tiny.bin", vec![0x52, 0x42]),
    ] {
        let path = tmp(name);
        std::fs::write(&path, &bytes).unwrap();
        let model = model_for();
        let cache = Arc::new(ScoreCache::load_or_new(&path, 1 << 20, model.fingerprint()));
        assert!(cache.is_empty(), "{name}: poisoned file ignored");
        let session = RecoverySession::with_cache(model, 1, cache);
        let rec = session.recover(&c.netlist);
        assert_bitwise_equal(&rec, &cold, name);
        assert_eq!(rec.stats.cache_hits, 0, "{name}: nothing to hit");
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn no_cache_bypass_and_backend_isolation() {
    let c = generate(&Profile::new("bypass", 100, 12, 3), 9);
    let model_for = || ReBertModel::new(ReBertConfig::tiny(), 61);
    let cold = model_for().recover_words_with(&c.netlist, 1);
    let model = model_for();
    let cache = Arc::new(ScoreCache::new(1 << 20, model.fingerprint()));
    let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
    let token = CancelToken::new();

    // Bypass: no lookups, no inserts, identical result.
    let bypass = session
        .try_recover_opts(&c.netlist, &token, Backend::F32Scalar, false)
        .expect("untripped token completes");
    assert_bitwise_equal(&bypass, &cold, "bypassed run");
    assert_eq!(bypass.stats.cache_hits + bypass.stats.cache_misses, 0);
    assert!(cache.is_empty(), "bypass must not populate the cache");

    // An int8 run fills the cache under its own backend tag...
    let int8 = session
        .try_recover_opts(&c.netlist, &token, Backend::Int8, true)
        .expect("untripped token completes");
    assert_eq!(int8.stats.cache_misses, int8.stats.class_pairs_scored);
    let after_int8 = cache.len();
    assert!(after_int8 > 0);

    // ...so a scalar run sees none of those entries and stays bitwise
    // equal to the scalar cold run.
    let scalar = session
        .try_recover_opts(&c.netlist, &token, Backend::F32Scalar, true)
        .expect("untripped token completes");
    assert_bitwise_equal(&scalar, &cold, "scalar after int8");
    assert_eq!(scalar.stats.cache_hits, 0, "backend keys never cross");
    assert!(cache.len() > after_int8, "scalar entries added separately");
}

#[test]
fn edited_resubmit_is_mostly_cache_hits_and_stays_exact() {
    // The delta-recovery property: after warming the cache on a design,
    // resubmitting a lightly edited variant hits for every cone pair the
    // edit did not touch, and the result is still bitwise-identical to a
    // cold recovery of the edited design.
    let c = generate(&Profile::new("edit", 140, 16, 4), 12);
    let (edited, _) = corrupt(&c.netlist, 0.05, 99);
    let model_for = || ReBertModel::new(ReBertConfig::tiny(), 71);
    let cold_edited = model_for().recover_words_with(&edited, 1);

    let model = model_for();
    let cache = Arc::new(ScoreCache::new(1 << 22, model.fingerprint()));
    let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
    let _ = session.recover(&c.netlist); // warm on the original design

    let resubmit = session.recover(&edited);
    assert_bitwise_equal(&resubmit, &cold_edited, "edited resubmit");
    assert!(
        resubmit.stats.cache_hits > 0,
        "unchanged cone pairs must be served from the cache"
    );
}
