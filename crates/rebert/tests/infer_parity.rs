//! Parity and determinism properties of the tape-free inference engine:
//! `predict_infer` / `score_pairs` must agree with the taped `predict`
//! (the acceptance bound is 1e-5; the engine is in fact bit-exact) for
//! random model configurations and seeds, and batched scoring must be
//! deterministic and thread-count-invariant.

use proptest::prelude::*;
use rebert::{PairSequence, ReBertConfig, ReBertModel, Token};
use rebert_netlist::ALL_GATE_TYPES;
use rebert_nn::BertConfig;

fn token_strategy() -> impl Strategy<Value = Token> {
    (0usize..=ALL_GATE_TYPES.len()).prop_map(|i| {
        if i == ALL_GATE_TYPES.len() {
            Token::X
        } else {
            Token::Gate(ALL_GATE_TYPES[i])
        }
    })
}

fn bit_strategy(max_len: usize) -> impl Strategy<Value = Vec<Token>> {
    prop::collection::vec(token_strategy(), 1..max_len)
}

/// Random small-but-varied model shapes: heads × head width, layer
/// count, FF width, code width, and sequence budget all move.
fn config_strategy() -> impl Strategy<Value = ReBertConfig> {
    (
        1usize..=4,
        2usize..=8,
        1usize..=3,
        4usize..=32,
        1usize..=8,
        16usize..=64,
    )
        .prop_map(|(n_heads, d_head, n_layers, d_ff, half_code, max_seq)| {
            let mut cfg = ReBertConfig::tiny();
            cfg.bert = BertConfig {
                d_model: n_heads * d_head,
                n_heads,
                n_layers,
                d_ff,
            };
            cfg.code_width = 2 * half_code;
            cfg.max_seq = max_seq;
            cfg
        })
}

fn codes_strategy(n: usize, w: usize) -> Vec<Vec<f32>> {
    // Deterministic non-zero codes so the tree projection path is live.
    (0..n)
        .map(|i| {
            (0..w)
                .map(|j| ((i * 31 + j * 7) % 5) as f32 * 0.25)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole parity property: for random configs, model seeds, and
    /// token sequences, the tape-free forward matches the taped one.
    #[test]
    fn tape_free_matches_taped_predict(
        cfg in config_strategy(),
        seed in 0u64..6,
        a in bit_strategy(24),
        b in bit_strategy(24),
    ) {
        let model = ReBertModel::new(cfg.clone(), seed);
        let w = cfg.code_width;
        let pair = PairSequence::build(
            &a, &codes_strategy(a.len(), w), &b, &codes_strategy(b.len(), w), w, cfg.max_seq,
        );
        let taped = model.predict(&pair);
        let infer = model.predict_infer(&pair);
        prop_assert!(
            (taped - infer).abs() <= 1e-5,
            "taped {} vs tape-free {} (seed {})",
            taped, infer, seed
        );
        // The engine mirrors every taped op, so parity is actually exact.
        prop_assert_eq!(taped.to_bits(), infer.to_bits());
    }

    /// `score_pairs` is deterministic and independent of the thread count.
    #[test]
    fn score_pairs_thread_count_invariant(
        seed in 0u64..6,
        bits in prop::collection::vec(bit_strategy(16), 2..8),
    ) {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), seed);
        let w = cfg.code_width;
        let mut pairs = Vec::new();
        for i in 0..bits.len() {
            for j in i + 1..bits.len() {
                pairs.push(PairSequence::build(
                    &bits[i], &codes_strategy(bits[i].len(), w),
                    &bits[j], &codes_strategy(bits[j].len(), w),
                    w, cfg.max_seq,
                ));
            }
        }
        let base = model.score_pairs(&pairs, 1);
        prop_assert_eq!(&model.score_pairs(&pairs, 1), &base, "not deterministic");
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&model.score_pairs(&pairs, threads), &base, "{} threads", threads);
        }
    }
}

/// Parity across the named configurations and ≥3 fixed seeds (the
/// acceptance checklist's explicit matrix), exercised end to end through
/// `recover_words`: the recovered assignment must not depend on the
/// thread count.
#[test]
fn recover_words_assignment_invariant_across_thread_counts() {
    use rebert_circuits::{generate, Profile};

    for (cfg, seed) in [
        (ReBertConfig::tiny(), 0u64),
        (ReBertConfig::tiny(), 1),
        (ReBertConfig::tiny(), 2),
        (ReBertConfig::small(), 3),
    ] {
        let model = ReBertModel::new(cfg, seed);
        let c = generate(&Profile::new("demo", 120, 14, 4), seed ^ 0x5EED);
        let base = model.recover_words_with(&c.netlist, 1);
        for threads in [2usize, 4, 0] {
            let rec = model.recover_words_with(&c.netlist, threads);
            assert_eq!(
                rec.assignment, base.assignment,
                "assignment differs at {threads} threads (seed {seed})"
            );
        }
    }
}
