//! Property-based tests of the model surface: predictions are valid
//! probabilities for arbitrary token sequences, deterministic, and
//! sensitive to the inputs they should be sensitive to.

use proptest::prelude::*;
use rebert::{PairSequence, ReBertConfig, ReBertModel, Token};
use rebert_netlist::ALL_GATE_TYPES;

fn token_strategy() -> impl Strategy<Value = Token> {
    (0usize..=ALL_GATE_TYPES.len()).prop_map(|i| {
        if i == ALL_GATE_TYPES.len() {
            Token::X
        } else {
            Token::Gate(ALL_GATE_TYPES[i])
        }
    })
}

fn bit_strategy(max_len: usize) -> impl Strategy<Value = Vec<Token>> {
    prop::collection::vec(token_strategy(), 1..max_len)
}

fn zero_codes(n: usize, w: usize) -> Vec<Vec<f32>> {
    vec![vec![0.0; w]; n]
}

fn model() -> &'static ReBertModel {
    use std::sync::OnceLock;
    static MODEL: OnceLock<ReBertModel> = OnceLock::new();
    MODEL.get_or_init(|| ReBertModel::new(ReBertConfig::tiny(), 0xFEED))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_probabilities(a in bit_strategy(20), b in bit_strategy(20)) {
        let m = model();
        let w = m.config().code_width;
        let pair = PairSequence::build(
            &a, &zero_codes(a.len(), w), &b, &zero_codes(b.len(), w), w, m.config().max_seq,
        );
        let p = m.predict(&pair);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        prop_assert!(p.is_finite());
    }

    #[test]
    fn predictions_are_deterministic(a in bit_strategy(12)) {
        let m = model();
        let w = m.config().code_width;
        let pair = PairSequence::build(
            &a, &zero_codes(a.len(), w), &a, &zero_codes(a.len(), w), w, m.config().max_seq,
        );
        prop_assert_eq!(m.predict(&pair), m.predict(&pair));
    }

    #[test]
    fn truncated_sequences_still_predict(a in bit_strategy(200), b in bit_strategy(200)) {
        // Longer than max_seq: truncation must keep the pipeline alive.
        let m = model();
        let w = m.config().code_width;
        let pair = PairSequence::build(
            &a, &zero_codes(a.len(), w), &b, &zero_codes(b.len(), w), w, m.config().max_seq,
        );
        prop_assert!(pair.len() <= m.config().max_seq);
        prop_assert!(m.predict(&pair).is_finite());
    }

    #[test]
    fn tree_codes_change_predictions(a in bit_strategy(8)) {
        // The tree positional embedding must actually reach the output:
        // flipping a code bit on some token changes the prediction
        // (generically — allow rare exact ties by checking inequality of
        // the *pair* of score vectors across several tokens).
        let m = model();
        let w = m.config().code_width;
        let base = PairSequence::build(
            &a, &zero_codes(a.len(), w), &a, &zero_codes(a.len(), w), w, m.config().max_seq,
        );
        let mut altered = base.clone();
        for code in altered.codes.iter_mut().skip(1) {
            code[0] = 1.0;
        }
        let p0 = m.predict(&base);
        let p1 = m.predict(&altered);
        prop_assert!((p0 - p1).abs() > 0.0, "tree codes had no effect");
    }
}

#[test]
fn order_of_bits_matters_little_for_identical_bits() {
    // swap(a, b) with a == b is literally the same sequence.
    let m = model();
    let w = m.config().code_width;
    let a = vec![Token::Gate(ALL_GATE_TYPES[0]), Token::X, Token::X];
    let pair_ab = PairSequence::build(
        &a,
        &zero_codes(3, w),
        &a,
        &zero_codes(3, w),
        w,
        m.config().max_seq,
    );
    assert_eq!(m.predict(&pair_ab), m.predict(&pair_ab.clone()));
}
