//! Paper-fidelity checks: the constants, defaults, and behavioural
//! details the DATE 2025 paper specifies, pinned as tests so refactors
//! cannot silently drift from the publication.

use rebert::{
    ari, group_bits_adaptive, jaccard, tokenize_bit, tree_codes, DatasetConfig, PairSequence,
    ReBertConfig, ScoreMatrix, Token, Vocab, FILTERED_SCORE, PAPER_JACCARD_THRESHOLD,
};
use rebert_netlist::{binarize, parse_bench, BitTree, GateType};

#[test]
fn paper_constants() {
    // §II-C: "token sequence pairs with a Jaccard similarity score lower
    // than 0.7 are filtered out, and their pairwise score is set to −1".
    assert_eq!(PAPER_JACCARD_THRESHOLD, 0.7);
    assert_eq!(FILTERED_SCORE, -1.0);

    // §III-A.2 defaults: R-Index 0..1 step 0.2; ratio 1:1.2; cap 5000;
    // §II-A.1: k = 6.
    let d = DatasetConfig::default();
    assert_eq!(d.r_indexes, vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
    assert!((d.neg_ratio - 1.2).abs() < 1e-12);
    assert_eq!(d.max_per_circuit, 5000);
    assert_eq!(d.k_levels, 6);

    // §II-C: "we use 12 heads for every multi-head attention block".
    assert_eq!(ReBertConfig::paper().bert.n_heads, 12);
    assert_eq!(ReBertConfig::paper().k_levels, 6);
    assert!((ReBertConfig::paper().jaccard_threshold - 0.7).abs() < 1e-12);
}

#[test]
fn fig2_tokenization_example() {
    // Fig. 2: bit = OR(AND(X,X), NOT(X)) → "OR AND X X NOT X", leaf names
    // generalized to X.
    let src = "\
INPUT(x1)
INPUT(x2)
INPUT(x3)
a = AND(x1, x2)
n = NOT(x3)
d = OR(a, n)
q = DFF(d)
OUTPUT(d)
";
    let (bin, _) = binarize(&parse_bench("fig2", src).unwrap());
    let tree = BitTree::extract(&bin, bin.bits()[0], 3);
    let toks: Vec<String> = tokenize_bit(&tree).iter().map(|t| t.to_string()).collect();
    assert_eq!(toks, ["OR", "AND", "X", "X", "NOT", "X"]);
    // No concrete signal name survives tokenization.
    assert!(toks.iter().all(|t| t != "x1" && t != "x2" && t != "x3"));
}

#[test]
fn fig3_tree_code_example() {
    // Fig. 3: a 3-node tree — root all-zero; children differ in the
    // leading 2-digit marker (10 left, 01 right).
    let src = "INPUT(a)\nINPUT(b)\nd = AND(a, b)\nq = DFF(d)\nOUTPUT(d)\n";
    let (bin, _) = binarize(&parse_bench("fig3", src).unwrap());
    let tree = BitTree::extract(&bin, bin.bits()[0], 3);
    let codes = tree_codes(&tree, 6);
    assert_eq!(codes[0], vec![0.0; 6], "root is the zero vector");
    assert_eq!(&codes[1][..2], &[1.0, 0.0], "left child marker is 10");
    assert_eq!(&codes[2][..2], &[0.0, 1.0], "right child marker is 01");
}

#[test]
fn pair_sequence_uses_sep_between_bits() {
    // §II-A.3: "concatenated into a single token sequence, after
    // inserting a special token [SEP]".
    let toks = vec![Token::X, Token::X];
    let codes = vec![vec![0.0; 4]; 2];
    let pair = PairSequence::build(&toks, &codes, &toks, &codes, 4, 64);
    let seps = pair.tokens.iter().filter(|&&t| t == Token::Sep).count();
    assert_eq!(seps, 1);
    assert_eq!(pair.tokens[0], Token::Cls);
}

#[test]
fn adaptive_threshold_is_one_third_of_max() {
    // §II-D: "the threshold is defined as 1/3 max(score matrix)".
    let mut m = ScoreMatrix::new(4);
    m.set(0, 1, 0.96);
    m.set(2, 3, 0.31);
    assert!((m.threshold() - 0.32).abs() < 1e-6);
    let assign = group_bits_adaptive(&m);
    assert_eq!(assign[0], assign[1], "0.96 > 0.32 joins");
    assert_ne!(assign[2], assign[3], "0.31 < 0.32 stays apart");
}

#[test]
fn filtered_pairs_hold_minus_one() {
    let m = ScoreMatrix::new(3);
    assert_eq!(m.get(0, 1), -1.0);
    assert_eq!(m.get(1, 2), FILTERED_SCORE);
}

#[test]
fn vocabulary_is_gates_plus_specials_only() {
    // §II-A.2: names generalize to X, so the vocabulary is tiny and
    // closed: [CLS], [SEP], [PAD], X, and one token per gate type.
    let v = Vocab::new();
    assert_eq!(v.len(), 4 + rebert_netlist::ALL_GATE_TYPES.len());
}

#[test]
fn jaccard_formula_matches_definition() {
    // J(A,B) = |A ∩ B| / |A ∪ B| over token multisets.
    let a = vec![
        Token::Gate(GateType::And),
        Token::Gate(GateType::And),
        Token::X,
    ];
    let b = vec![Token::Gate(GateType::And), Token::X, Token::X];
    // inter = min(2,1) + min(1,2) = 2; union = max(2,1) + max(1,2) = 4.
    assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
}

#[test]
fn ari_definition_reference_values() {
    // §III-A.3 ranges: perfect 1, random ≈ 0, worse-than-random < 0.
    assert_eq!(ari(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
    assert!(ari(&[0, 0, 1, 1], &[0, 1, 0, 1]) <= 0.0);
}

#[test]
fn loo_cv_uses_all_other_circuits() {
    use rebert::loo_split;
    use rebert_circuits::{generate, Profile};
    let circuits: Vec<_> = (0..4)
        .map(|i| generate(&Profile::new(format!("c{i}"), 60, 10, 2), i as u64))
        .collect();
    for test_idx in 0..4 {
        let (train, test) = loo_split(&circuits, test_idx);
        assert_eq!(train.len(), 3);
        assert!(train
            .iter()
            .all(|c| c.netlist.name() != test.netlist.name()));
    }
}
