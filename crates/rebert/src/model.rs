//! The ReBERT model: the three embedding schemes (§II-B) feeding the
//! BERT classifier (§II-C).

use std::sync::OnceLock;

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_nn::{
    Backend, BertClassifier, BertConfig, Embedding, Engine, Forward, InferScratch, Linear,
    ParamStore, QuantStore,
};
use rebert_tensor::{sigmoid, Tensor, VarId};
use serde::{Deserialize, Serialize};

use crate::session::{CancelToken, ScratchLease, ScratchPool};
use crate::token::{PairSequence, Vocab};

/// Which of the three embedding schemes are active (all three in the
/// paper; the ablation bench disables them one at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddingFlags {
    /// Learned token (word) embedding (§II-B.1).
    pub word: bool,
    /// Learned sequential positional embedding (§II-B.2).
    pub position: bool,
    /// Tree-based positional embedding (§II-B.3).
    pub tree: bool,
}

impl Default for EmbeddingFlags {
    fn default() -> Self {
        EmbeddingFlags {
            word: true,
            position: true,
            tree: true,
        }
    }
}

/// Full ReBERT hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReBertConfig {
    /// Encoder hyperparameters.
    pub bert: BertConfig,
    /// Maximum joint sequence length (longer pairs are truncated).
    pub max_seq: usize,
    /// Width of the tree positional code (must be even).
    pub code_width: usize,
    /// Fan-in back-trace depth `k` (paper uses 6).
    pub k_levels: usize,
    /// Jaccard pre-filter threshold (paper uses 0.7).
    pub jaccard_threshold: f64,
    /// Active embedding schemes.
    pub embeddings: EmbeddingFlags,
}

impl ReBertConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        ReBertConfig {
            bert: BertConfig::tiny(),
            max_seq: 64,
            code_width: 8,
            k_levels: 3,
            jaccard_threshold: 0.7,
            embeddings: EmbeddingFlags::default(),
        }
    }

    /// Default experiment configuration (single-core friendly).
    pub fn small() -> Self {
        ReBertConfig {
            bert: BertConfig::small(),
            max_seq: 128,
            code_width: 24,
            k_levels: 4,
            jaccard_threshold: 0.7,
            embeddings: EmbeddingFlags::default(),
        }
    }

    /// Paper-faithful settings: `k = 6`, 12 attention heads, Jaccard 0.7.
    /// (Hidden sizes remain scaled; see `DESIGN.md`.)
    pub fn paper() -> Self {
        ReBertConfig {
            bert: BertConfig::paper(),
            max_seq: 288,
            code_width: 32,
            k_levels: 6,
            jaccard_threshold: 0.7,
            embeddings: EmbeddingFlags::default(),
        }
    }
}

/// The trainable ReBERT model: embeddings + encoder + pooler + head.
///
/// # Examples
///
/// ```
/// use rebert::{PairSequence, ReBertConfig, ReBertModel, Token};
///
/// let model = ReBertModel::new(ReBertConfig::tiny(), 42);
/// let toks = vec![Token::X, Token::X];
/// let codes = vec![vec![0.0; 8]; 2];
/// let pair = PairSequence::build(&toks, &codes, &toks, &codes, 8, 64);
/// let p = model.predict(&pair);
/// assert!((0.0..=1.0).contains(&p));
/// ```
#[derive(Debug)]
pub struct ReBertModel {
    config: ReBertConfig,
    vocab: Vocab,
    store: ParamStore,
    /// Lazily built int8 view of the parameters, invalidated on any
    /// mutable store access (training steps, checkpoint loads).
    quant: OnceLock<QuantStore>,
    /// Lazily computed checkpoint fingerprint, invalidated alongside
    /// `quant` — both are pure functions of the current weights.
    fingerprint: OnceLock<u64>,
    word_emb: Embedding,
    pos_emb: Embedding,
    tree_proj: Linear,
    classifier: BertClassifier,
}

impl ReBertModel {
    /// Builds a model with fresh seeded parameters.
    ///
    /// # Panics
    ///
    /// Panics if no embedding scheme is enabled or `code_width` is odd.
    pub fn new(config: ReBertConfig, seed: u64) -> Self {
        assert!(
            config.embeddings.word || config.embeddings.position || config.embeddings.tree,
            "at least one embedding scheme must be enabled"
        );
        assert!(
            config.code_width >= 2 && config.code_width.is_multiple_of(2),
            "code_width must be a positive even number"
        );
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let vocab = Vocab::new();
        let d = config.bert.d_model;
        let word_emb = Embedding::new(&mut store, &mut rng, "emb.word", vocab.len(), d);
        let pos_emb = Embedding::new(&mut store, &mut rng, "emb.pos", config.max_seq, d);
        let tree_proj = Linear::new(&mut store, &mut rng, "emb.tree", config.code_width, d);
        let classifier = BertClassifier::new(&mut store, &mut rng, "bert", &config.bert);
        ReBertModel {
            config,
            vocab,
            store,
            quant: OnceLock::new(),
            fingerprint: OnceLock::new(),
            word_emb,
            pos_emb,
            tree_proj,
            classifier,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReBertConfig {
        &self.config
    }

    /// The fixed vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Read access to the parameters (for checkpointing/inspection).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameters (for the optimizer). Drops any
    /// cached int8 view and fingerprint — both would be stale after a
    /// weight update.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        self.quant.take();
        self.fingerprint.take();
        &mut self.store
    }

    /// Replaces the parameter store (checkpoint loading). Drops any
    /// cached int8 view.
    ///
    /// # Panics
    ///
    /// Panics if the replacement has a different number of parameters.
    pub fn set_store(&mut self, store: ParamStore) {
        assert_eq!(
            store.len(),
            self.store.len(),
            "checkpoint parameter count mismatch"
        );
        self.quant.take();
        self.fingerprint.take();
        self.store = store;
    }

    /// Stable 64-bit content fingerprint of the checkpoint: an FNV-1a
    /// hash ([`crate::StableHasher`]) over the exact bytes
    /// [`crate::save_model`] would write (config + every parameter
    /// scalar). Computed once and cached until the next mutable store
    /// access, identical across runs and platforms, and therefore usable
    /// as the model component of persistent cache keys — two models
    /// fingerprint equal only if they score every pair identically.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = crate::dataset::StableHasher::new();
            h.write(crate::persist::encode_checkpoint(&self.config, &self.store).as_bytes());
            h.finish()
        })
    }

    /// [`ReBertModel::fingerprint`] rendered as fixed-width lowercase
    /// hex — the form shown by `rebert inspect`, the serve payload's
    /// `model_fingerprint`, and the `/metrics` info series.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// The int8 view of the parameters, built on first use and cached
    /// until the next mutable store access. Building quantizes every
    /// matrix parameter (one pass over the weights); callers that will
    /// serve int8 requests should warm it up front.
    pub fn int8_view(&self) -> &QuantStore {
        self.quant.get_or_init(|| QuantStore::build(&self.store))
    }

    /// An inference engine for `backend`, resolved against host
    /// capability ([`Backend::effective`]). Int8 engines borrow the
    /// cached [`ReBertModel::int8_view`], building it if needed.
    pub fn engine(&self, backend: Backend) -> Engine<'_> {
        let quant = (backend == Backend::Int8).then(|| self.int8_view());
        Engine::new(&self.store, quant, backend)
    }

    /// Builds the combined embedding matrix for a pair sequence and runs
    /// the classifier, returning the `1 × 1` logit on the forward tape.
    ///
    /// Exposed so the trainer can attach a loss to the same tape.
    pub fn logit_on<'a>(&'a self, fwd: &mut Forward<'a>, pair: &PairSequence) -> VarId {
        let ids = self.vocab.encode(&pair.tokens);
        let n = ids.len();
        let flags = self.config.embeddings;
        let mut x: Option<VarId> = None;
        let add = |fwd: &mut Forward<'a>, acc: Option<VarId>, v: VarId| match acc {
            None => Some(v),
            Some(a) => Some(fwd.tape.add(a, v)),
        };
        if flags.word {
            let w = self.word_emb.forward(fwd, &ids);
            x = add(fwd, x, w);
        }
        if flags.position {
            let pos_ids: Vec<usize> = (0..n).map(|i| i.min(self.config.max_seq - 1)).collect();
            let p = self.pos_emb.forward(fwd, &pos_ids);
            x = add(fwd, x, p);
        }
        if flags.tree {
            let w = self.config.code_width;
            let mut flat = Vec::with_capacity(n * w);
            for code in &pair.codes {
                debug_assert_eq!(code.len(), w, "code width mismatch");
                flat.extend_from_slice(code);
            }
            let codes = fwd.input(Tensor::from_vec(n, w, flat));
            let t = self.tree_proj.forward(fwd, codes);
            x = add(fwd, x, t);
        }
        let x = x.expect("at least one embedding enabled (checked in new)");
        self.classifier.logit(fwd, x)
    }

    /// Predicts the probability that the pair's two bits belong to the
    /// same word.
    pub fn predict(&self, pair: &PairSequence) -> f32 {
        let mut fwd = Forward::new(&self.store);
        let z = self.logit_on(&mut fwd, pair);
        sigmoid(fwd.tape.value(z).data()[0])
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;
    use rebert_netlist::GateType;

    fn pair(cfg: &ReBertConfig) -> PairSequence {
        let toks = vec![Token::Gate(GateType::And), Token::X, Token::X];
        let codes = vec![vec![0.0; cfg.code_width]; 3];
        PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq)
    }

    #[test]
    fn predict_in_unit_interval() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 0);
        let p = model.predict(&pair(&cfg));
        assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ReBertConfig::tiny();
        let a = ReBertModel::new(cfg.clone(), 7);
        let b = ReBertModel::new(cfg.clone(), 7);
        assert_eq!(a.predict(&pair(&cfg)), b.predict(&pair(&cfg)));
        let c = ReBertModel::new(cfg.clone(), 8);
        assert_ne!(a.predict(&pair(&cfg)), c.predict(&pair(&cfg)));
    }

    #[test]
    fn embedding_flags_change_output() {
        let mut cfg = ReBertConfig::tiny();
        let full = ReBertModel::new(cfg.clone(), 3);
        cfg.embeddings.tree = false;
        let no_tree = ReBertModel::new(cfg.clone(), 3);
        // Same seed, same pair, different active embeddings => different
        // prediction (tree codes of non-root tokens are nonzero).
        let toks = vec![Token::Gate(GateType::And), Token::X, Token::X];
        let codes = vec![
            vec![0.0; cfg.code_width],
            {
                let mut c = vec![0.0; cfg.code_width];
                c[0] = 1.0;
                c
            },
            {
                let mut c = vec![0.0; cfg.code_width];
                c[1] = 1.0;
                c
            },
        ];
        let p = PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq);
        assert_ne!(full.predict(&p), no_tree.predict(&p));
    }

    #[test]
    #[should_panic(expected = "at least one embedding")]
    fn all_disabled_rejected() {
        let mut cfg = ReBertConfig::tiny();
        cfg.embeddings = EmbeddingFlags {
            word: false,
            position: false,
            tree: false,
        };
        let _ = ReBertModel::new(cfg, 0);
    }

    #[test]
    fn long_sequences_clamp_position_ids() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 0);
        // Build a pair longer than max_seq via pad_to; prediction must not
        // panic thanks to position clamping.
        let toks = vec![Token::X; 10];
        let codes = vec![vec![0.0; cfg.code_width]; 10];
        let mut p = PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq);
        p.pad_to(cfg.max_seq + 8);
        let v = model.predict(&p);
        assert!(v.is_finite());
    }

    #[test]
    fn parameter_count_is_substantial() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        assert!(model.parameter_count() > 1000);
    }
}

/// Pairs per work-stealing batch in [`ReBertModel::score_pairs`].
///
/// Small enough that Jaccard-filtered survivor sets (irregular sequence
/// lengths) balance well across cores, large enough that the atomic
/// cursor is not contended.
const SCORE_BATCH: usize = 32;

/// Resolves a thread-count knob: `0` means "use all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Per-thread scratch state for tape-free scoring: the neural-net
/// buffers plus the embedding-side staging tensors. Reused across pairs,
/// so a warm scratch scores with zero allocations.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    nn: InferScratch,
    codes: Tensor,
    tree_out: Tensor,
    ids: Vec<usize>,
    pos_ids: Vec<usize>,
}

impl ScoreScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReBertModel {
    /// Tape-free prediction: same value as [`ReBertModel::predict`]
    /// bit-for-bit (the inference path mirrors every taped operation),
    /// several times faster, and allocation-free with a warm scratch.
    pub fn predict_with_scratch(&self, pair: &PairSequence, scratch: &mut ScoreScratch) -> f32 {
        sigmoid(self.infer_logit(pair, scratch, &Engine::scalar(&self.store)))
    }

    /// Tape-free prediction on an explicit backend. Scalar reproduces
    /// [`ReBertModel::predict`] bit-for-bit; SIMD and int8 are faster,
    /// tolerance-equivalent paths (see `Backend`).
    pub fn predict_with_scratch_backend(
        &self,
        pair: &PairSequence,
        scratch: &mut ScoreScratch,
        backend: Backend,
    ) -> f32 {
        sigmoid(self.infer_logit(pair, scratch, &self.engine(backend)))
    }

    /// Tape-free prediction with a one-shot scratch. Prefer
    /// [`ReBertModel::predict_with_scratch`] or
    /// [`ReBertModel::score_pairs`] in loops.
    pub fn predict_infer(&self, pair: &PairSequence) -> f32 {
        self.predict_with_scratch(pair, &mut ScoreScratch::new())
    }

    /// Builds the combined embedding matrix into the scratch and runs the
    /// tape-free classifier on `engine`, mirroring
    /// [`ReBertModel::logit_on`] exactly on the scalar engine. Embedding
    /// gathers always read the f32 store — they are memory-bound lookups
    /// with nothing to vectorize or quantize.
    fn infer_logit(&self, pair: &PairSequence, s: &mut ScoreScratch, engine: &Engine<'_>) -> f32 {
        let flags = self.config.embeddings;
        s.ids.clear();
        s.ids.extend(pair.tokens.iter().map(|&t| self.vocab.id(t)));
        let n = s.ids.len();
        let x = s.nn.input_mut(n, self.config.bert.d_model);
        let mut have = false;
        if flags.word {
            self.word_emb.gather_into(&self.store, &s.ids, x);
            have = true;
        }
        if flags.position {
            s.pos_ids.clear();
            s.pos_ids
                .extend((0..n).map(|i| i.min(self.config.max_seq - 1)));
            if have {
                self.pos_emb.gather_add(&self.store, &s.pos_ids, x);
            } else {
                self.pos_emb.gather_into(&self.store, &s.pos_ids, x);
                have = true;
            }
        }
        if flags.tree {
            let w = self.config.code_width;
            s.codes.resize(n, w);
            for (i, code) in pair.codes.iter().enumerate() {
                debug_assert_eq!(code.len(), w, "code width mismatch");
                s.codes.row_mut(i).copy_from_slice(code);
            }
            self.tree_proj
                .infer_into_with(engine, &s.codes, &mut s.tree_out);
            if have {
                x.add_assign(&s.tree_out);
            } else {
                x.data_mut().copy_from_slice(s.tree_out.data());
            }
        }
        self.classifier.infer_logit_with(engine, &mut s.nn)
    }

    /// Scores a batch of pairs on the tape-free engine, fanning the work
    /// out over `threads` OS threads (`0` = all available cores).
    ///
    /// Scheduling is work stealing over an atomic pair-index cursor in
    /// [`SCORE_BATCH`]-sized batches — Jaccard-filtered survivors have
    /// irregular sequence lengths, so fixed chunks would leave cores
    /// idle. Results are written by pair index, so the output is
    /// deterministic and independent of the thread count.
    pub fn score_pairs(&self, pairs: &[PairSequence], threads: usize) -> Vec<f32> {
        let refs: Vec<&PairSequence> = pairs.iter().collect();
        self.score_pair_refs(&refs, threads)
    }

    /// [`ReBertModel::score_pairs`] on an explicit backend. The scalar
    /// backend is bitwise-identical to [`ReBertModel::score_pairs`];
    /// SIMD and int8 trade bitwise identity for throughput.
    pub fn score_pairs_backend(
        &self,
        pairs: &[PairSequence],
        threads: usize,
        backend: Backend,
    ) -> Vec<f32> {
        let refs: Vec<&PairSequence> = pairs.iter().collect();
        self.score_refs_ctx(&refs, threads, None, None, backend)
            .expect("uncancellable scoring always completes")
    }

    /// [`ReBertModel::score_pairs`] over borrowed pairs — lets callers
    /// score sequences owned elsewhere (e.g. evaluation samples) without
    /// cloning them.
    pub fn score_pair_refs(&self, pairs: &[&PairSequence], threads: usize) -> Vec<f32> {
        self.score_refs_ctx(pairs, threads, None, None, Backend::F32Scalar)
            .expect("uncancellable scoring always completes")
    }

    /// [`ReBertModel::score_pairs`] with cooperative cancellation:
    /// returns `None` if `cancel` tripped before every pair was scored
    /// (workers stop claiming batches within one batch of the trip).
    pub fn try_score_pairs(
        &self,
        pairs: &[PairSequence],
        threads: usize,
        cancel: &CancelToken,
    ) -> Option<Vec<f32>> {
        let refs: Vec<&PairSequence> = pairs.iter().collect();
        self.score_refs_ctx(&refs, threads, Some(cancel), None, Backend::F32Scalar)
    }

    /// The shared scoring loop: optional cancellation, optionally a
    /// [`ScratchPool`] so resident sessions reuse warm buffers instead of
    /// allocating per call, and an execution backend. The engine (and any
    /// int8 view it needs) is resolved once here, before the fan-out, so
    /// workers share one immutable engine.
    pub(crate) fn score_refs_ctx(
        &self,
        pairs: &[&PairSequence],
        threads: usize,
        cancel: Option<&CancelToken>,
        scratches: Option<&ScratchPool>,
        backend: Backend,
    ) -> Option<Vec<f32>> {
        let engine = self.engine(backend);
        crate::par::try_par_map_batched(
            pairs,
            threads,
            SCORE_BATCH,
            cancel,
            || scratches.map_or_else(ScratchLease::fresh, ScratchPool::lease),
            |lease, p| sigmoid(self.infer_logit(p, lease.scratch_mut(), &engine)),
        )
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::token::Token;
    use rebert_netlist::GateType;

    fn demo_pairs(cfg: &ReBertConfig) -> Vec<PairSequence> {
        let mk = |g: GateType| {
            let toks = vec![Token::Gate(g), Token::X, Token::X];
            let codes = vec![vec![0.0; cfg.code_width]; 3];
            PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq)
        };
        vec![
            mk(GateType::And),
            mk(GateType::Or),
            mk(GateType::Xor),
            mk(GateType::Nand),
            mk(GateType::Nor),
        ]
    }

    #[test]
    fn model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReBertModel>();
    }

    #[test]
    fn infer_matches_taped_predict() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 5);
        for pair in demo_pairs(&cfg) {
            let taped = model.predict(&pair);
            let infer = model.predict_infer(&pair);
            assert_eq!(
                taped.to_bits(),
                infer.to_bits(),
                "taped {taped} infer {infer}"
            );
        }
    }

    #[test]
    fn score_pairs_matches_serial_for_any_thread_count() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 5);
        let pairs = demo_pairs(&cfg);
        let serial: Vec<f32> = pairs.iter().map(|p| model.predict(p)).collect();
        for threads in [0usize, 1, 2, 4, 8] {
            assert_eq!(
                model.score_pairs(&pairs, threads),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 5);
        assert!(model.score_pairs(&[], 4).is_empty());
    }

    #[test]
    fn try_score_pairs_completes_or_aborts() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 5);
        let pairs = demo_pairs(&cfg);
        let token = CancelToken::new();
        let scored = model
            .try_score_pairs(&pairs, 2, &token)
            .expect("untripped token completes");
        assert_eq!(scored, model.score_pairs(&pairs, 1));
        token.cancel();
        assert_eq!(model.try_score_pairs(&pairs, 2, &token), None);
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn backend_scoring_tracks_scalar() {
        use rebert_nn::Backend;

        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 5);
        let pairs = demo_pairs(&cfg);
        let reference = model.score_pairs(&pairs, 1);
        // The scalar backend IS the default path, bit for bit.
        assert_eq!(
            model.score_pairs_backend(&pairs, 1, Backend::F32Scalar),
            reference
        );
        // SIMD and int8 probabilities stay close after the sigmoid.
        for backend in [Backend::F32Simd, Backend::Int8] {
            let scored = model.score_pairs_backend(&pairs, 2, backend);
            assert_eq!(scored.len(), reference.len());
            for (s, r) in scored.iter().zip(&reference) {
                assert!(
                    (s - r).abs() <= 0.05,
                    "{backend}: probability {s} vs scalar {r}"
                );
            }
        }
    }

    #[test]
    fn int8_view_rebuilds_after_weight_updates() {
        use rebert_nn::Backend;

        let cfg = ReBertConfig::tiny();
        let mut model = ReBertModel::new(cfg.clone(), 5);
        let pair = demo_pairs(&cfg).remove(0);
        let mut scratch = ScoreScratch::new();
        let before = model.predict_with_scratch_backend(&pair, &mut scratch, Backend::Int8);

        // Flip the sign of one feed-forward weight matrix through the
        // invalidating accessor; a stale cached view would keep serving
        // the old prediction.
        let target = model
            .store()
            .iter()
            .find(|(_, name, t)| name.contains("ff1") && t.rows() >= 2)
            .map(|(id, _, _)| id)
            .expect("model has a feed-forward weight matrix");
        model
            .store_mut()
            .get_mut(target)
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = -*v);
        let after = model.predict_with_scratch_backend(&pair, &mut scratch, Backend::Int8);
        assert_ne!(before.to_bits(), after.to_bits());
    }
}
