//! Resident recovery sessions: a loaded model plus warm per-thread
//! scoring scratches, with cooperative cancellation.
//!
//! A one-shot `rebert recover` pays model construction and scratch
//! warm-up on every invocation. A [`RecoverySession`] keeps that state
//! alive between requests: scoring scratches are leased to worker
//! threads and returned warm, so steady-state requests run
//! allocation-free. [`CancelToken`] threads a deadline (or an explicit
//! abort) through the pipeline's atomic-cursor work loops — workers stop
//! claiming batches as soon as the token trips, and the session stays
//! reusable afterwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rebert_sync::Mutex;
use std::time::{Duration, Instant};

use rebert_netlist::Netlist;
use rebert_nn::Backend;

use crate::cache::ScoreCache;
use crate::model::{ReBertModel, ScoreScratch};
use crate::pipeline::{RecoveredWords, RunCtx};

/// Cooperative cancellation handle: an explicit flag plus an optional
/// deadline. Cloneable; all clones observe the same cancellation.
///
/// Work loops poll [`CancelToken::is_cancelled`] once per claimed batch,
/// so cancellation latency is bounded by one batch of work (a few dozen
/// model calls at most).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token that auto-cancels at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Trips the token; every holder observes it on the next poll.
    pub fn cancel(&self) {
        // The flag publishes nothing but itself; workers only poll it
        // to stop claiming — rebert-lint: allow(relaxed-publication-store)
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                // Same pure flag — rebert-lint: allow(relaxed-publication-store)
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Error returned when a recovery was aborted by its [`CancelToken`]
/// (deadline exceeded or explicit cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("word recovery cancelled (deadline exceeded or explicit abort)")
    }
}

impl std::error::Error for Cancelled {}

/// A pool of warm [`ScoreScratch`]es shared across requests. Workers
/// lease a scratch for the duration of one parallel map and return it on
/// drop, so buffer capacity (and the pages backing it) survive between
/// requests.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    free: Mutex<Vec<ScoreScratch>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new(), "rebert.session.scratch"),
        }
    }
}

impl ScratchPool {
    /// Takes a warm scratch (or a fresh one when the pool is empty).
    pub(crate) fn lease(&self) -> ScratchLease<'_> {
        let scratch = self.free.lock().pop().unwrap_or_default();
        ScratchLease {
            pool: Some(self),
            scratch,
        }
    }

    #[cfg(test)]
    fn warm_count(&self) -> usize {
        self.free.lock().len()
    }
}

/// A leased scratch: hands the buffer back to its pool on drop. A lease
/// without a pool ([`ScratchLease::fresh`]) just drops the buffer.
#[derive(Debug)]
pub(crate) struct ScratchLease<'a> {
    pool: Option<&'a ScratchPool>,
    scratch: ScoreScratch,
}

impl<'a> ScratchLease<'a> {
    /// A pool-less lease for one-shot scoring.
    pub(crate) fn fresh() -> ScratchLease<'a> {
        ScratchLease {
            pool: None,
            scratch: ScoreScratch::new(),
        }
    }

    /// The scratch buffers.
    pub(crate) fn scratch_mut(&mut self) -> &mut ScoreScratch {
        &mut self.scratch
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            let scratch = std::mem::take(&mut self.scratch);
            pool.free.lock().push(scratch);
        }
    }
}

/// A resident word-recovery session: the model, its thread-count knob,
/// and a pool of warm scoring scratches.
///
/// Results are bitwise-identical to the one-shot
/// [`ReBertModel::recover_words_with`] path — the session only changes
/// where scratch buffers come from and adds cancellation points.
///
/// # Examples
///
/// ```
/// use rebert::{CancelToken, RecoverySession, ReBertConfig, ReBertModel};
/// use rebert_circuits::{generate, Profile};
///
/// let model = ReBertModel::new(ReBertConfig::tiny(), 0);
/// let session = RecoverySession::new(model, 1);
/// let c = generate(&Profile::new("demo", 80, 8, 2), 3);
/// let rec = session.recover(&c.netlist);
/// assert_eq!(rec.assignment.len(), 8);
/// // A pre-cancelled token aborts without poisoning the session.
/// let token = CancelToken::new();
/// token.cancel();
/// assert!(session.try_recover(&c.netlist, &token).is_err());
/// assert_eq!(session.recover(&c.netlist).assignment, rec.assignment);
/// ```
#[derive(Debug)]
pub struct RecoverySession {
    model: ReBertModel,
    threads: usize,
    scratches: ScratchPool,
    cache: Option<Arc<ScoreCache>>,
}

impl RecoverySession {
    /// Wraps a model into a resident session scoring with `threads` OS
    /// threads (`0` = all available cores).
    pub fn new(model: ReBertModel, threads: usize) -> Self {
        RecoverySession {
            model,
            threads,
            scratches: ScratchPool::default(),
            cache: None,
        }
    }

    /// [`RecoverySession::new`] with a shared cross-request score cache:
    /// every recovery consults `cache` before the model and publishes
    /// fresh scores into it, so repeated cone pairs — across requests,
    /// edited resubmits, even unrelated designs sharing standard-cell
    /// cone shapes — are pure lookups. The `Arc` lets the serving layer
    /// keep a handle for metrics and shutdown flushes.
    pub fn with_cache(model: ReBertModel, threads: usize, cache: Arc<ScoreCache>) -> Self {
        RecoverySession {
            model,
            threads,
            scratches: ScratchPool::default(),
            cache: Some(cache),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &ReBertModel {
        &self.model
    }

    /// The shared score cache, if one is attached.
    pub fn cache(&self) -> Option<&Arc<ScoreCache>> {
        self.cache.as_ref()
    }

    /// Attaches (or replaces) the shared score cache on an existing
    /// session — used by the daemon, which receives a ready-made session
    /// and wires the cache in from its own config.
    pub fn attach_cache(&mut self, cache: Arc<ScoreCache>) {
        self.cache = Some(cache);
    }

    /// The configured thread-count knob (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Recovers words with warm scratches and no cancellation.
    pub fn recover(&self, nl: &Netlist) -> RecoveredWords {
        self.try_recover(nl, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// Recovers words, aborting cooperatively if `cancel` trips. On
    /// cancellation the session remains fully reusable: leased scratches
    /// are returned to the pool and no partial result escapes.
    pub fn try_recover(
        &self,
        nl: &Netlist,
        cancel: &CancelToken,
    ) -> Result<RecoveredWords, Cancelled> {
        self.try_recover_with(nl, cancel, Backend::F32Scalar)
    }

    /// [`RecoverySession::try_recover`] on an explicit inference backend
    /// — the per-request precision knob the serving layer exposes as
    /// `X-Rebert-Precision`. The resolved backend is reported in the
    /// result's stats.
    pub fn try_recover_with(
        &self,
        nl: &Netlist,
        cancel: &CancelToken,
        backend: Backend,
    ) -> Result<RecoveredWords, Cancelled> {
        self.try_recover_opts(nl, cancel, backend, true)
    }

    /// [`RecoverySession::try_recover_with`] with an explicit cache
    /// switch: `use_cache: false` bypasses the shared score cache for
    /// this request only (neither lookups nor inserts happen) — the
    /// daemon's `X-Rebert-No-Cache` escape hatch. A no-op when no cache
    /// is attached.
    pub fn try_recover_opts(
        &self,
        nl: &Netlist,
        cancel: &CancelToken,
        backend: Backend,
        use_cache: bool,
    ) -> Result<RecoveredWords, Cancelled> {
        self.model
            .run_recovery(
                nl,
                RunCtx {
                    threads: self.threads,
                    cancel: Some(cancel),
                    scratches: Some(&self.scratches),
                    backend,
                    cache: if use_cache {
                        self.cache.as_deref()
                    } else {
                        None
                    },
                },
            )
            .ok_or(Cancelled)
    }

    /// Consumes the session, returning the model (e.g. to re-checkpoint).
    pub fn into_model(self) -> ReBertModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use rebert_circuits::{generate, Profile};

    #[test]
    fn session_matches_one_shot_bitwise() {
        let mk = || ReBertModel::new(ReBertConfig::tiny(), 13);
        let c = generate(&Profile::new("demo", 100, 12, 3), 4);
        let offline = mk().recover_words_with(&c.netlist, 1);
        let session = RecoverySession::new(mk(), 1);
        for round in 0..3 {
            let rec = session.recover(&c.netlist);
            assert_eq!(rec.assignment, offline.assignment, "round {round}");
            for i in 0..12 {
                for j in (i + 1)..12 {
                    assert_eq!(
                        rec.score_matrix.get(i, j).to_bits(),
                        offline.score_matrix.get(i, j).to_bits(),
                        "round {round} score ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn session_is_thread_count_invariant() {
        let c = generate(&Profile::new("demo", 90, 10, 3), 6);
        let base =
            RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 3), 1).recover(&c.netlist);
        for threads in [2usize, 4] {
            let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 3), threads);
            assert_eq!(
                session.recover(&c.netlist).assignment,
                base.assignment,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn scratches_return_to_pool_warm() {
        let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 0), 1);
        let c = generate(&Profile::new("demo", 80, 8, 2), 5);
        assert_eq!(session.scratches.warm_count(), 0);
        let _ = session.recover(&c.netlist);
        let after_first = session.scratches.warm_count();
        assert!(after_first >= 1, "scoring leased at least one scratch");
        let _ = session.recover(&c.netlist);
        // Steady state: the pool does not grow without bound.
        assert_eq!(session.scratches.warm_count(), after_first);
    }

    #[test]
    fn cancelled_token_aborts_and_session_survives() {
        let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 2), 2);
        let c = generate(&Profile::new("demo", 120, 14, 4), 7);
        let clean = session.recover(&c.netlist);

        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            session.try_recover(&c.netlist, &token).unwrap_err(),
            Cancelled
        );

        // An expired deadline behaves the same way.
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(
            session.try_recover(&c.netlist, &expired).unwrap_err(),
            Cancelled
        );

        // The session is not poisoned: results stay bitwise-identical.
        let again = session.recover(&c.netlist);
        assert_eq!(again.assignment, clean.assignment);
    }

    #[test]
    fn generous_deadline_completes() {
        let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 1), 1);
        let c = generate(&Profile::new("demo", 80, 8, 2), 8);
        let token = CancelToken::with_deadline(Duration::from_secs(600));
        let rec = session.try_recover(&c.netlist, &token).expect("finishes");
        assert_eq!(rec.assignment, session.recover(&c.netlist).assignment);
    }

    #[test]
    fn session_backend_knob_reports_resolved_backend() {
        let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 13), 1);
        let c = generate(&Profile::new("demo", 100, 12, 3), 4);
        let scalar = session.recover(&c.netlist);
        assert_eq!(scalar.stats.backend, Backend::F32Scalar);

        let token = CancelToken::new();
        let int8 = session
            .try_recover_with(&c.netlist, &token, Backend::Int8)
            .expect("untripped token completes");
        assert_eq!(int8.stats.backend, Backend::Int8);
        assert_eq!(int8.assignment.len(), 12);
        // Sessions stay reusable and bitwise on the default path after
        // serving an int8 request.
        let again = session.recover(&c.netlist);
        assert_eq!(again.assignment, scalar.assignment);
    }

    #[test]
    fn token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn deadline_token_trips_after_expiry() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
        assert!(CancelToken::new().deadline().is_none());
    }
}
