//! The end-to-end recovery pipeline: netlist → score matrix → words
//! (Fig. 1 of the paper).
//!
//! The quadratic phase is **class-deduplicated**: bits with bit-identical
//! `(tokens, codes)` cones are grouped into [`ConeClasses`], the Jaccard
//! filter and the model run once per *class* pair, and the memoized score
//! is broadcast to every member bit pair. Replicated datapath slices make
//! cone duplication common on ITC'99-style netlists, so the number of
//! model calls can drop quadratically while the produced score matrix
//! stays bitwise-identical to the per-bit-pair reference path
//! ([`ReBertModel::recover_words_reference`]).

use std::time::{Duration, Instant};

use rebert_netlist::Netlist;
use rebert_nn::Backend;
use rebert_obs as obs;

use crate::cache::ScoreCache;
use crate::dataset::{bit_sequences, ConeClasses};
use crate::filter::{jaccard, jaccard_counts};
use crate::group::{group_bits_adaptive, ScoreMatrix};
use crate::model::ReBertModel;
use crate::par::try_par_map_batched;
use crate::session::{CancelToken, ScratchPool};
use crate::token::PairSequence;

/// Class pairs per work-stealing batch in the filter/assembly sweep.
///
/// A class-pair step is orders of magnitude cheaper than a model call
/// (one histogram pass plus, for survivors, one sequence assembly), so
/// batches are much larger than the scorer's to keep the atomic cursor
/// uncontended.
const SWEEP_BATCH: usize = 512;

/// Emits a coarse `pipeline`/`progress` instant event at a phase
/// boundary: the phase that just advanced, a rough percent-complete for
/// the whole run, and phase-specific counters. Purely observational —
/// instants never touch the phase spans' `end_at` timing contract, and
/// the serve streaming endpoint translates them into NDJSON progress
/// records. Context fields (the request id) ride along automatically.
fn progress(phase: &'static str, pct: u64, extra: Vec<obs::Field>) {
    if !obs::enabled(obs::Level::Info) {
        return;
    }
    let mut fields: Vec<obs::Field> = vec![("phase", phase.into()), ("pct", pct.into())];
    fields.extend(extra);
    obs::event_with(obs::Level::Info, "pipeline", "progress", fields);
}

/// Telemetry from one pipeline run, including a per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Total bit pairs considered.
    pub pairs_total: usize,
    /// Pairs discarded by the Jaccard pre-filter.
    pub pairs_filtered: usize,
    /// Bit pairs that received a model-derived score.
    pub pairs_scored: usize,
    /// Distinct cone classes among the bits (`0` when the bit-pair
    /// reference path was used and classes were never computed).
    pub classes: usize,
    /// Unique class-pair sequences that needed a score this run — from a
    /// fresh model call or, bitwise-identically, from the shared score
    /// cache. On the reference path this equals
    /// [`PipelineStats::pairs_scored`].
    pub class_pairs_scored: usize,
    /// Class-pair scores served from the shared cross-request score
    /// cache (`0` when no cache was attached). With a cache,
    /// `cache_hits + cache_misses == class_pairs_scored`.
    pub cache_hits: usize,
    /// Class-pair sequences that missed the score cache and went to the
    /// model (`0` when no cache was attached — misses count cache
    /// consultations, not model calls).
    pub cache_misses: usize,
    /// Bit pairs whose score was reused from a memoized class pair
    /// instead of a fresh model call
    /// (`pairs_scored − class_pairs_scored`; `0` on the reference path).
    pub pairs_memoized: usize,
    /// Effective scoring throughput: `pairs_scored / score_time` (0 when
    /// nothing was scored). With memoization this exceeds the model's raw
    /// per-call throughput.
    pub pairs_per_sec: f64,
    /// The inference backend that actually scored the pairs — the
    /// *resolved* choice ([`rebert_nn::Backend::effective`] plus int8
    /// availability), not necessarily what the caller requested.
    pub backend: Backend,
    /// Time spent tokenizing bit fan-in cones into sequences.
    pub tokenize_time: Duration,
    /// Time spent classifying cones, Jaccard-filtering, and assembling
    /// the surviving pair sequences.
    pub filter_time: Duration,
    /// Time spent scoring surviving pairs with the model.
    pub score_time: Duration,
    /// Time spent broadcasting scores into the matrix and grouping bits
    /// into words.
    pub group_time: Duration,
    /// Wall-clock time of the full recovery.
    pub elapsed: Duration,
    /// Human-readable warnings about conditions that silently degrade
    /// recovery quality: netlist invariant violations, a Jaccard filter
    /// that removed every pair, or a degenerate `max(score)/3` grouping
    /// threshold. Purely observational — the presence of warnings never
    /// changes scores or the assignment. The full structural battery
    /// lives in the `rebert-analyze` crate (`rebert lint`).
    pub warnings: Vec<String>,
}

/// The result of word recovery on a netlist.
#[derive(Debug, Clone)]
pub struct RecoveredWords {
    /// Word assignment: `assignment[i]` is the word id of bit `i`
    /// (flip-flop order), with dense ids.
    pub assignment: Vec<usize>,
    /// The full pairwise score matrix (filtered pairs hold −1).
    pub score_matrix: ScoreMatrix,
    /// Run telemetry.
    pub stats: PipelineStats,
}

impl RecoveredWords {
    /// The recovered words as lists of bit indices, re-numbered densely
    /// in first-seen bit order — word ids in `assignment` may be sparse
    /// (e.g. when an assignment was constructed externally), and no empty
    /// words are materialized for unused ids.
    pub fn words(&self) -> Vec<Vec<usize>> {
        let mut index: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut words: Vec<Vec<usize>> = Vec::new();
        for (bit, &w) in self.assignment.iter().enumerate() {
            let next = words.len();
            let slot = *index.entry(w).or_insert(next);
            if slot == next {
                words.push(Vec::new());
            }
            words[slot].push(bit);
        }
        words
    }
}

/// Per-run plumbing for [`ReBertModel::run_recovery`]: the thread-count
/// knob plus the session-supplied extras (cancellation, warm scratches).
/// One-shot entry points pass `None` for both.
pub(crate) struct RunCtx<'a> {
    /// OS threads for the sweep and the scorer (`0` = all cores).
    pub threads: usize,
    /// Cooperative abort checked at every phase boundary and batch claim.
    pub cancel: Option<&'a CancelToken>,
    /// Warm scratch buffers from a resident session.
    pub scratches: Option<&'a ScratchPool>,
    /// Requested inference backend for the scorer (resolved per host).
    pub backend: Backend,
    /// Shared cross-request score cache, consulted before the model in
    /// the quadratic phase. `None` disables lookup and insert entirely.
    pub cache: Option<&'a ScoreCache>,
}

/// Outcome of one unordered class pair in the parallel filter/assembly
/// sweep: either filtered, or up to two representative sequences (one per
/// orientation in which member bit pairs occur).
struct SweptClassPair {
    filtered: bool,
    /// `[CLS] repr(a) [SEP] repr(b)` — the lower class id first.
    lo_hi: Option<PairSequence>,
    /// `[CLS] repr(b) [SEP] repr(a)` — for bit pairs `(i, j)`, `i < j`,
    /// whose lower bit belongs to the *higher* class id. `None` for
    /// diagonal pairs or when no such bit pair exists.
    hi_lo: Option<PairSequence>,
}

impl ReBertModel {
    /// Recovers word-level groupings from a gate-level netlist:
    /// tokenizes every bit, Jaccard-filters the pairs, scores survivors
    /// with the model, and groups with the adaptive `max/3` threshold.
    ///
    /// Uses all available cores; see [`ReBertModel::recover_words_with`]
    /// for an explicit thread count.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use rebert::{ReBertConfig, ReBertModel};
    /// use rebert_circuits::{generate, Profile};
    ///
    /// let model = ReBertModel::new(ReBertConfig::small(), 0);
    /// let c = generate(&Profile::new("demo", 100, 16, 4), 1);
    /// let recovered = model.recover_words(&c.netlist);
    /// assert_eq!(recovered.assignment.len(), 16);
    /// ```
    pub fn recover_words(&self, nl: &Netlist) -> RecoveredWords {
        self.recover_words_with(nl, 0)
    }

    /// [`ReBertModel::recover_words`] with an explicit thread count
    /// (`0` = all available cores) for both the class-pair sweep and the
    /// scorer.
    ///
    /// The quadratic phase works on **cone classes** ([`ConeClasses`]):
    /// Jaccard runs once per class pair over precomputed histograms
    /// ([`crate::jaccard_counts`]), one representative [`PairSequence`]
    /// per surviving (ordered) class pair is scored on the tape-free
    /// batched engine ([`ReBertModel::score_pairs`]), and the memoized
    /// score is broadcast to all member bit pairs. Because the tape-free
    /// forward is deterministic on identical inputs, the assignment and
    /// score matrix are **bitwise-identical** to the per-bit-pair
    /// reference path for every thread count.
    pub fn recover_words_with(&self, nl: &Netlist, threads: usize) -> RecoveredWords {
        self.recover_words_backend(nl, threads, Backend::F32Scalar)
    }

    /// [`ReBertModel::recover_words_with`] on an explicit inference
    /// backend. The scalar backend (the default everywhere else) keeps
    /// the bitwise-reproducibility guarantees; `F32Simd` and `Int8`
    /// produce tolerance-equivalent scores several times faster. The
    /// backend that actually ran is reported in
    /// [`PipelineStats::backend`].
    pub fn recover_words_backend(
        &self,
        nl: &Netlist,
        threads: usize,
        backend: Backend,
    ) -> RecoveredWords {
        self.run_recovery(
            nl,
            RunCtx {
                threads,
                cancel: None,
                scratches: None,
                backend,
                cache: None,
            },
        )
        .expect("recovery without a cancel token always completes")
    }

    /// The class-deduplicated pipeline with per-run plumbing: called by
    /// [`ReBertModel::recover_words_with`] (no extras) and by
    /// [`crate::RecoverySession`] (warm scratches + cancellation).
    /// Returns `None` only if `ctx.cancel` tripped mid-run; no partial
    /// result ever escapes.
    pub(crate) fn run_recovery(&self, nl: &Netlist, ctx: RunCtx<'_>) -> Option<RecoveredWords> {
        // Spans open *before* their phase stopwatch starts and close via
        // `end_at(elapsed)`, so the span durations on the trace are the
        // exact values reported in `PipelineStats` and end timestamps
        // never outrun the clock (per-track monotonicity).
        let mut root = obs::span(obs::Level::Info, "pipeline", "recover");
        let sp_tokenize = obs::span(obs::Level::Info, "pipeline", "tokenize");
        let start = Instant::now();
        let cfg = self.config();
        let threads = ctx.threads;
        // Resolve the backend once up front: this also warms the int8
        // view (outside the timed score phase) and fixes the label that
        // stats and metrics will report.
        let backend = self.engine(ctx.backend).backend();
        let warnings = netlist_warnings(nl);

        let seqs = bit_sequences(nl, cfg.k_levels, cfg.code_width);
        let n = seqs.len();
        let tokenize_time = start.elapsed();
        sp_tokenize.end_at(tokenize_time);
        progress("tokenize", 10, vec![("bits", n.into())]);

        let mut sp_filter = obs::span(obs::Level::Info, "pipeline", "filter");
        let filter_start = Instant::now();
        let classes = ConeClasses::build(&seqs);
        let k = classes.len();

        // Linearized unordered class pairs (a ≤ b); diagonal pairs only
        // exist when the class holds at least one bit pair.
        let mut class_pairs: Vec<(u32, u32)> = Vec::with_capacity(k * (k + 1) / 2);
        for a in 0..k as u32 {
            if classes.members(a).len() >= 2 {
                class_pairs.push((a, a));
            }
            for b in a + 1..k as u32 {
                class_pairs.push((a, b));
            }
        }

        // Parallel sweep: Jaccard once per class pair, then assemble the
        // representative sequence(s) for survivors. Deterministic because
        // results are collected in class-pair order.
        let swept = try_par_map_batched(
            &class_pairs,
            threads,
            SWEEP_BATCH,
            ctx.cancel,
            || (),
            |_, &(a, b)| {
                if jaccard_counts(classes.histogram(a), classes.histogram(b))
                    < cfg.jaccard_threshold
                {
                    return SweptClassPair {
                        filtered: true,
                        lo_hi: None,
                        hi_lo: None,
                    };
                }
                let (ma, mb) = (classes.members(a), classes.members(b));
                let (ta, ca) = &seqs[classes.representative(a)];
                let (tb, cb) = &seqs[classes.representative(b)];
                let build = |xt: &[crate::token::Token],
                             xc: &[Vec<f32>],
                             yt: &[crate::token::Token],
                             yc: &[Vec<f32>]| {
                    PairSequence::build(xt, xc, yt, yc, cfg.code_width, cfg.max_seq)
                };
                // Orientation (a-first) serves bit pairs (i, j), i < j,
                // with i ∈ a and j ∈ b — it exists iff min(a) < max(b).
                let last = |m: &[usize]| *m.last().expect("classes are non-empty");
                let lo_hi = (a == b || ma[0] < last(mb)).then(|| build(ta, ca, tb, cb));
                let hi_lo = (a != b && mb[0] < last(ma)).then(|| build(tb, cb, ta, ca));
                SweptClassPair {
                    filtered: false,
                    lo_hi,
                    hi_lo,
                }
            },
        );
        let swept = match swept {
            Some(s) => s,
            None => {
                obs::event_with(
                    obs::Level::Info,
                    "pipeline",
                    "cancelled",
                    vec![("phase", "filter".into())],
                );
                return None;
            }
        };

        // Deterministic survivor indexing: walk class pairs in linear
        // order, assigning each needed orientation one slot in `pairs`.
        // `memo[ci * k + cj]` maps the *ordered* class pair of a bit pair
        // (class of the lower bit index first) to its score slot. With a
        // cache attached, `keys` carries the slot's content-addressed
        // cache key (fingerprint + backend + ordered cone hashes).
        const NO_SCORE: u32 = u32::MAX;
        let fingerprint = ctx.cache.map(|_| self.fingerprint());
        let mut memo = vec![NO_SCORE; k * k];
        let mut pairs: Vec<PairSequence> = Vec::new();
        let mut keys: Vec<u128> = Vec::new();
        let mut filtered = 0usize;
        for (&(a, b), swept_pair) in class_pairs.iter().zip(swept) {
            let (ai, bi) = (a as usize, b as usize);
            let count = if a == b {
                let m = classes.members(a).len();
                m * (m - 1) / 2
            } else {
                classes.members(a).len() * classes.members(b).len()
            };
            if swept_pair.filtered {
                filtered += count;
                continue;
            }
            if let Some(seq) = swept_pair.lo_hi {
                memo[ai * k + bi] = pairs.len() as u32;
                pairs.push(seq);
                if let Some(fp) = fingerprint {
                    keys.push(ScoreCache::pair_key(
                        fp,
                        backend,
                        classes.hash(a),
                        classes.hash(b),
                    ));
                }
            }
            if let Some(seq) = swept_pair.hi_lo {
                memo[bi * k + ai] = pairs.len() as u32;
                pairs.push(seq);
                if let Some(fp) = fingerprint {
                    keys.push(ScoreCache::pair_key(
                        fp,
                        backend,
                        classes.hash(b),
                        classes.hash(a),
                    ));
                }
            }
        }
        let filter_time = filter_start.elapsed();
        sp_filter.add_field("classes", k);
        sp_filter.add_field("class_pairs", class_pairs.len());
        sp_filter.end_at(filter_time);
        progress(
            "filter",
            30,
            vec![
                ("classes", k.into()),
                ("class_pairs", class_pairs.len().into()),
                ("survivors", pairs.len().into()),
            ],
        );

        let mut sp_score = obs::span(obs::Level::Info, "pipeline", "score");
        let score_start = Instant::now();
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let scores = match ctx.cache {
            None => {
                let pair_refs: Vec<&PairSequence> = pairs.iter().collect();
                progress("score", 40, vec![("to_score", pair_refs.len().into())]);
                self.score_refs_ctx(&pair_refs, threads, ctx.cancel, ctx.scratches, backend)
            }
            Some(cache) => {
                // Consult the cache first; only misses reach the model.
                // Hit scores flow through the same memo-indexed slots, so
                // the broadcast below is bitwise-identical to a cold run.
                let mut sp_lookup = obs::span(obs::Level::Debug, "cache", "lookup");
                let mut scores = vec![0.0f32; pairs.len()];
                let mut miss_refs: Vec<&PairSequence> = Vec::new();
                let mut miss_slots: Vec<usize> = Vec::new();
                for (slot, (seq, &key)) in pairs.iter().zip(&keys).enumerate() {
                    match cache.get(key) {
                        Some(score) => scores[slot] = score,
                        None => {
                            miss_refs.push(seq);
                            miss_slots.push(slot);
                        }
                    }
                }
                cache_misses = miss_slots.len();
                cache_hits = pairs.len() - cache_misses;
                sp_lookup.add_field("hits", cache_hits);
                sp_lookup.add_field("misses", cache_misses);
                sp_lookup.end();
                progress(
                    "score",
                    40,
                    vec![
                        ("to_score", miss_refs.len().into()),
                        ("cache_hits", cache_hits.into()),
                        ("cache_misses", cache_misses.into()),
                    ],
                );
                self.score_refs_ctx(&miss_refs, threads, ctx.cancel, ctx.scratches, backend)
                    .map(|fresh| {
                        for (&slot, &score) in miss_slots.iter().zip(&fresh) {
                            scores[slot] = score;
                            cache.insert(keys[slot], score);
                        }
                        scores
                    })
            }
        };
        let scores = match scores {
            Some(s) => s,
            None => {
                obs::event_with(
                    obs::Level::Info,
                    "pipeline",
                    "cancelled",
                    vec![("phase", "score".into())],
                );
                return None;
            }
        };
        let score_time = score_start.elapsed();
        sp_score.add_field("class_pairs_scored", pairs.len());
        sp_score.end_at(score_time);
        progress(
            "score",
            90,
            vec![
                ("class_pairs_scored", pairs.len().into()),
                ("cache_hits", cache_hits.into()),
                ("cache_misses", cache_misses.into()),
            ],
        );

        let sp_group = obs::span(obs::Level::Info, "pipeline", "group");
        let group_start = Instant::now();
        let mut matrix = ScoreMatrix::new(n);
        for i in 0..n {
            let ci = classes.class_of(i) as usize;
            for j in i + 1..n {
                let slot = memo[ci * k + classes.class_of(j) as usize];
                if slot != NO_SCORE {
                    matrix.set(i, j, scores[slot as usize]);
                }
            }
        }
        let assignment = group_bits_adaptive(&matrix);
        let group_time = group_start.elapsed();
        sp_group.end_at(group_time);

        let pairs_total = n * n.saturating_sub(1) / 2;
        let scored = pairs_total - filtered;
        progress(
            "group",
            100,
            vec![("bits", n.into()), ("pairs_scored", scored.into())],
        );
        root.add_field("bits", n);
        root.add_field("classes", k);
        root.add_field("pairs_scored", scored);
        Some(self.finish(
            assignment,
            matrix,
            PipelinePhases {
                pairs_total,
                filtered,
                scored,
                classes: k,
                class_pairs_scored: pairs.len(),
                cache_hits,
                cache_misses,
                backend,
                tokenize_time,
                filter_time,
                score_time,
                group_time,
                elapsed: start.elapsed(),
                warnings,
            },
        ))
    }

    /// The pre-deduplication **reference path**: Jaccard and the model
    /// run once per surviving *bit* pair, with no cone classification or
    /// memoization. Kept for equivalence testing and benchmarking — its
    /// assignment and score matrix are bitwise-identical to
    /// [`ReBertModel::recover_words_with`] at every thread count, it is
    /// just quadratically slower on netlists with duplicated cones.
    pub fn recover_words_reference(&self, nl: &Netlist, threads: usize) -> RecoveredWords {
        let start = Instant::now();
        let cfg = self.config();
        let warnings = netlist_warnings(nl);

        let seqs = bit_sequences(nl, cfg.k_levels, cfg.code_width);
        let n = seqs.len();
        let tokenize_time = start.elapsed();

        let filter_start = Instant::now();
        let mut filtered = 0usize;
        let mut survivors: Vec<(usize, usize)> = Vec::new();
        let mut pairs: Vec<PairSequence> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (ta, ca) = &seqs[i];
                let (tb, cb) = &seqs[j];
                if jaccard(ta, tb) < cfg.jaccard_threshold {
                    filtered += 1;
                    continue; // score stays at the −1 sentinel
                }
                survivors.push((i, j));
                pairs.push(PairSequence::build(
                    ta,
                    ca,
                    tb,
                    cb,
                    cfg.code_width,
                    cfg.max_seq,
                ));
            }
        }
        let filter_time = filter_start.elapsed();

        let score_start = Instant::now();
        let scores = self.score_pairs(&pairs, threads);
        let score_time = score_start.elapsed();

        let group_start = Instant::now();
        let mut matrix = ScoreMatrix::new(n);
        for (&(i, j), &p) in survivors.iter().zip(&scores) {
            matrix.set(i, j, p);
        }
        let assignment = group_bits_adaptive(&matrix);
        let group_time = group_start.elapsed();

        let scored = pairs.len();
        self.finish(
            assignment,
            matrix,
            PipelinePhases {
                pairs_total: n * n.saturating_sub(1) / 2,
                filtered,
                scored,
                classes: 0,
                class_pairs_scored: scored,
                // The reference path never consults a cache.
                cache_hits: 0,
                cache_misses: 0,
                // The reference path exists for bitwise equivalence
                // checks, so it is pinned to the scalar backend.
                backend: Backend::F32Scalar,
                tokenize_time,
                filter_time,
                score_time,
                group_time,
                elapsed: start.elapsed(),
                warnings,
            },
        )
    }

    /// Assembles the result struct and derived stats shared by both
    /// pipeline paths.
    fn finish(
        &self,
        assignment: Vec<usize>,
        matrix: ScoreMatrix,
        p: PipelinePhases,
    ) -> RecoveredWords {
        let pairs_per_sec = if p.scored == 0 {
            0.0
        } else {
            p.scored as f64 / p.score_time.as_secs_f64().max(f64::MIN_POSITIVE)
        };
        let mut warnings = p.warnings;
        if p.pairs_total > 0 && p.scored == 0 {
            warnings.push(format!(
                "jaccard pre-filter removed all {} bit pairs; every bit becomes a \
                 singleton word (degenerate-threshold)",
                p.pairs_total
            ));
        } else if p.scored > 0 && matrix.max_score() <= 0.0 {
            warnings.push(format!(
                "degenerate score threshold: max pairwise score {} is not positive, \
                 so the adaptive max/3 cut cannot separate words (degenerate-threshold)",
                matrix.max_score()
            ));
        }
        RecoveredWords {
            assignment,
            score_matrix: matrix,
            stats: PipelineStats {
                pairs_total: p.pairs_total,
                pairs_filtered: p.filtered,
                pairs_scored: p.scored,
                classes: p.classes,
                class_pairs_scored: p.class_pairs_scored,
                cache_hits: p.cache_hits,
                cache_misses: p.cache_misses,
                pairs_memoized: p.scored - p.class_pairs_scored,
                pairs_per_sec,
                backend: p.backend,
                tokenize_time: p.tokenize_time,
                filter_time: p.filter_time,
                score_time: p.score_time,
                group_time: p.group_time,
                elapsed: p.elapsed,
                warnings,
            },
        }
    }
}

/// Cheap structural pre-flight shared by both pipeline paths: any
/// violated netlist invariant silently degrades the recovery (undriven
/// nets binarize as constants, cycles truncate cones), so surface them
/// as [`PipelineStats::warnings`] while still running to completion.
fn netlist_warnings(nl: &Netlist) -> Vec<String> {
    nl.validate_all()
        .into_iter()
        .map(|e| format!("netlist invariant violated: {e} (see `rebert lint`)"))
        .collect()
}

/// Raw per-phase measurements handed to [`ReBertModel::finish`].
struct PipelinePhases {
    pairs_total: usize,
    filtered: usize,
    scored: usize,
    classes: usize,
    class_pairs_scored: usize,
    cache_hits: usize,
    cache_misses: usize,
    backend: Backend,
    tokenize_time: Duration,
    filter_time: Duration,
    score_time: Duration,
    group_time: Duration,
    elapsed: Duration,
    /// Pre-phase warnings (netlist invariants); threshold degeneracy is
    /// appended by `finish` once the matrix exists.
    warnings: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use rebert_circuits::{generate, Profile};

    #[test]
    fn recovery_covers_every_bit() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let c = generate(&Profile::new("demo", 80, 10, 3), 2);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.assignment.len(), 10);
        assert_eq!(
            rec.stats.pairs_total,
            rec.stats.pairs_filtered + rec.stats.pairs_scored
        );
        // Words partition the bits.
        let total: usize = rec.words().iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        // A valid generated netlist with scored pairs raises no warnings.
        assert!(rec.stats.warnings.is_empty(), "{:?}", rec.stats.warnings);
    }

    #[test]
    fn stats_track_filtering() {
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 1.01; // filter everything
        let model = ReBertModel::new(cfg, 0);
        let c = generate(&Profile::new("demo", 80, 8, 2), 3);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.stats.pairs_scored, 0);
        assert_eq!(rec.stats.pairs_filtered, rec.stats.pairs_total);
        assert_eq!(rec.stats.pairs_per_sec, 0.0);
        assert_eq!(rec.stats.class_pairs_scored, 0);
        assert_eq!(rec.stats.pairs_memoized, 0);
        // Everything filtered => all singleton words, flagged as such.
        assert_eq!(rec.words().len(), 8);
        assert!(
            rec.stats.warnings.iter().any(|w| w.contains("singleton")),
            "{:?}",
            rec.stats.warnings
        );
    }

    #[test]
    fn no_filtering_scores_all_pairs() {
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 0.0;
        let model = ReBertModel::new(cfg, 0);
        let c = generate(&Profile::new("demo", 80, 6, 2), 4);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.stats.pairs_filtered, 0);
        assert_eq!(rec.stats.pairs_scored, 15);
        assert!(rec.stats.pairs_per_sec > 0.0);
        // Dedup bookkeeping is consistent.
        assert!(rec.stats.classes >= 1 && rec.stats.classes <= 6);
        assert_eq!(
            rec.stats.pairs_memoized,
            rec.stats.pairs_scored - rec.stats.class_pairs_scored
        );
    }

    #[test]
    fn assignment_is_thread_count_invariant() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 9);
        let c = generate(&Profile::new("demo", 90, 12, 3), 5);
        let base = model.recover_words_with(&c.netlist, 1);
        for threads in [2usize, 4] {
            let rec = model.recover_words_with(&c.netlist, threads);
            assert_eq!(rec.assignment, base.assignment, "{threads} threads");
            for i in 0..12 {
                for j in (i + 1)..12 {
                    assert_eq!(
                        rec.score_matrix.get(i, j).to_bits(),
                        base.score_matrix.get(i, j).to_bits(),
                        "score ({i},{j}) with {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn dedup_matches_reference_bitwise() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 11);
        let c = generate(&Profile::new("demo", 120, 14, 4), 6);
        let dedup = model.recover_words_with(&c.netlist, 1);
        let reference = model.recover_words_reference(&c.netlist, 1);
        assert_eq!(dedup.assignment, reference.assignment);
        assert_eq!(dedup.stats.pairs_total, reference.stats.pairs_total);
        assert_eq!(dedup.stats.pairs_filtered, reference.stats.pairs_filtered);
        assert_eq!(dedup.stats.pairs_scored, reference.stats.pairs_scored);
        for i in 0..14 {
            for j in (i + 1)..14 {
                assert_eq!(
                    dedup.score_matrix.get(i, j).to_bits(),
                    reference.score_matrix.get(i, j).to_bits(),
                    "score ({i},{j})"
                );
            }
        }
        // The dedup path never calls the model more often than the
        // reference path scores bit pairs.
        assert!(dedup.stats.class_pairs_scored <= reference.stats.pairs_scored);
        assert_eq!(reference.stats.pairs_memoized, 0);
        assert_eq!(reference.stats.classes, 0);
    }

    #[test]
    fn phase_spans_match_pipeline_stats_durations() {
        use rebert_obs::{Kind, Level, RingSink, Value};
        use std::sync::Arc;

        // 13 bits is unique to this test; other tests' records may land
        // in the ring concurrently (the gate is process-global), so our
        // run is identified by the `bits` field on the root span's End.
        const BITS: usize = 13;
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 0.0; // keep every pair
        let model = ReBertModel::new(cfg, 3);
        // 13 near-distinct cones: 74 surviving class pairs, enough to
        // overflow one SCORE_BATCH and force the parallel score path.
        let c = generate(&Profile::new("demo", 120, BITS, 13), 8);

        let ring = Arc::new(RingSink::new(65_536, Level::Debug));
        let sink = rebert_obs::install(ring.clone());
        let rec = model.recover_words_with(&c.netlist, 2);
        let records = ring.drain();
        rebert_obs::uninstall(sink);

        let root_end = records
            .iter()
            .find(|r| {
                r.kind == Kind::End
                    && r.name == "recover"
                    && r.fields.contains(&("bits", Value::U64(BITS as u64)))
            })
            .expect("root recover span closed with a bits field");
        let root = root_end.span;

        let expect = [
            ("tokenize", rec.stats.tokenize_time),
            ("filter", rec.stats.filter_time),
            ("score", rec.stats.score_time),
            ("group", rec.stats.group_time),
        ];
        for (name, stat) in expect {
            let begin = records
                .iter()
                .find(|r| r.kind == Kind::Begin && r.name == name && r.parent == root)
                .unwrap_or_else(|| panic!("phase {name} has a Begin under the root"));
            let end = records
                .iter()
                .find(|r| r.kind == Kind::End && r.span == begin.span)
                .unwrap_or_else(|| panic!("phase {name} closed"));
            assert_eq!(
                (end.ts_micros - begin.ts_micros) as u128,
                stat.as_micros(),
                "span duration for {name} must equal PipelineStats"
            );
        }

        // The score phase fans out: per-batch worker spans adopt the
        // caller's context, so they parent under the score span and run
        // on other threads' tracks.
        let score_begin = records
            .iter()
            .find(|r| r.kind == Kind::Begin && r.name == "score" && r.parent == root)
            .unwrap();
        let batches: Vec<_> = records
            .iter()
            .filter(|r| r.kind == Kind::Begin && r.name == "batch" && r.parent == score_begin.span)
            .collect();
        assert!(
            batches.len() >= 2,
            "expected multiple score batches, got {}",
            batches.len()
        );
        // Batch spans carry each worker's own track id. (No assertion
        // that tracks differ from the caller's: a test environment may
        // run scoped workers inline. Cross-thread context adoption is
        // pinned by rebert-obs's own thread-spawning test.)
        // Every batch span closes (claim/complete pairing).
        for b in &batches {
            assert!(
                records
                    .iter()
                    .any(|r| r.kind == Kind::End && r.span == b.span),
                "batch span at index {:?} never completed",
                b.fields
            );
        }
    }

    #[test]
    fn backend_recovery_reports_and_tracks_scalar() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 9);
        let c = generate(&Profile::new("demo", 90, 12, 3), 5);
        let scalar = model.recover_words_with(&c.netlist, 1);
        assert_eq!(scalar.stats.backend, Backend::F32Scalar);

        for requested in [Backend::F32Simd, Backend::Int8] {
            let rec = model.recover_words_backend(&c.netlist, 2, requested);
            // The reported backend is the resolved one (scalar hosts
            // degrade F32Simd; Int8 always has the scalar q8 kernel).
            assert_eq!(rec.stats.backend, requested.effective());
            assert_eq!(rec.assignment.len(), 12);
            // Scores are tolerance-equivalent to the scalar path.
            for i in 0..12 {
                for j in (i + 1)..12 {
                    let (a, b) = (rec.score_matrix.get(i, j), scalar.score_matrix.get(i, j));
                    assert!(
                        (a - b).abs() <= 0.05,
                        "{requested}: score ({i},{j}) {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn phase_timings_sum_below_elapsed() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let c = generate(&Profile::new("demo", 80, 8, 2), 6);
        let s = model.recover_words(&c.netlist).stats;
        let phases = s.tokenize_time + s.filter_time + s.score_time + s.group_time;
        assert!(phases <= s.elapsed);
    }

    #[test]
    fn words_handle_sparse_assignments() {
        // Word ids straight from an external source need not be dense:
        // `words()` must re-number them without materializing empty words.
        let rec = RecoveredWords {
            assignment: vec![5, 9, 5, 2],
            score_matrix: ScoreMatrix::new(4),
            stats: PipelineStats {
                pairs_total: 6,
                pairs_filtered: 6,
                pairs_scored: 0,
                classes: 0,
                class_pairs_scored: 0,
                cache_hits: 0,
                cache_misses: 0,
                pairs_memoized: 0,
                pairs_per_sec: 0.0,
                backend: Backend::F32Scalar,
                tokenize_time: Duration::ZERO,
                filter_time: Duration::ZERO,
                score_time: Duration::ZERO,
                group_time: Duration::ZERO,
                elapsed: Duration::ZERO,
                warnings: Vec::new(),
            },
        };
        let words = rec.words();
        assert_eq!(words, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn invalid_netlist_warns_but_still_recovers() {
        use rebert_netlist::{GateType, Netlist};
        // Two bits whose cones read an undriven net: recovery completes
        // (the placeholder binarizes as a constant) but the stats call
        // out the violated invariant.
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let floating = nl.add_net("floating");
        for i in 0..2 {
            let x = nl
                .add_gate_new_net(GateType::And, vec![a, floating], format!("x{i}"))
                .unwrap();
            let q = nl.add_net(format!("q{i}"));
            nl.add_dff(x, q).unwrap();
        }
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let rec = model.recover_words(&nl);
        assert_eq!(rec.assignment.len(), 2);
        assert!(
            rec.stats.warnings.iter().any(|w| w.contains("no driver")),
            "{:?}",
            rec.stats.warnings
        );
        // The reference path reports the same pre-phase warnings.
        let reference = model.recover_words_reference(&nl, 1);
        assert_eq!(
            reference
                .stats
                .warnings
                .iter()
                .filter(|w| w.contains("no driver"))
                .count(),
            rec.stats
                .warnings
                .iter()
                .filter(|w| w.contains("no driver"))
                .count()
        );
    }

    #[test]
    fn words_of_single_bit_word_netlist() {
        // Every word a single bit: recovery must yield exactly `ffs`
        // words with no empties, regardless of word-id sparsity.
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 1.01; // keep every bit a singleton
        let model = ReBertModel::new(cfg, 0);
        let c = generate(&Profile::new("demo", 60, 6, 6), 8);
        let rec = model.recover_words(&c.netlist);
        let words = rec.words();
        assert_eq!(words.len(), 6);
        assert!(words.iter().all(|w| w.len() == 1));
    }
}
