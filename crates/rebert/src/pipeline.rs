//! The end-to-end recovery pipeline: netlist → score matrix → words
//! (Fig. 1 of the paper).

use std::time::{Duration, Instant};

use rebert_netlist::Netlist;

use crate::dataset::bit_sequences;
use crate::filter::jaccard;
use crate::group::{group_bits_adaptive, ScoreMatrix};
use crate::model::ReBertModel;
use crate::token::PairSequence;

/// Telemetry from one pipeline run, including a per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Total bit pairs considered.
    pub pairs_total: usize,
    /// Pairs discarded by the Jaccard pre-filter.
    pub pairs_filtered: usize,
    /// Pairs scored by the model.
    pub pairs_scored: usize,
    /// Model-scoring throughput: `pairs_scored / score_time` (0 when
    /// nothing was scored).
    pub pairs_per_sec: f64,
    /// Time spent tokenizing bit fan-in cones into sequences.
    pub tokenize_time: Duration,
    /// Time spent on the Jaccard pre-filter and pair assembly.
    pub filter_time: Duration,
    /// Time spent scoring surviving pairs with the model.
    pub score_time: Duration,
    /// Time spent grouping bits into words from the score matrix.
    pub group_time: Duration,
    /// Wall-clock time of the full recovery.
    pub elapsed: Duration,
}

/// The result of word recovery on a netlist.
#[derive(Debug, Clone)]
pub struct RecoveredWords {
    /// Word assignment: `assignment[i]` is the word id of bit `i`
    /// (flip-flop order), with dense ids.
    pub assignment: Vec<usize>,
    /// The full pairwise score matrix (filtered pairs hold −1).
    pub score_matrix: ScoreMatrix,
    /// Run telemetry.
    pub stats: PipelineStats,
}

impl RecoveredWords {
    /// The recovered words as lists of bit indices.
    pub fn words(&self) -> Vec<Vec<usize>> {
        let n_words = self.assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut words = vec![Vec::new(); n_words];
        for (bit, &w) in self.assignment.iter().enumerate() {
            words[w].push(bit);
        }
        words
    }
}

impl ReBertModel {
    /// Recovers word-level groupings from a gate-level netlist:
    /// tokenizes every bit, Jaccard-filters the pairs, scores survivors
    /// with the model, and groups with the adaptive `max/3` threshold.
    ///
    /// Uses all available cores; see [`ReBertModel::recover_words_with`]
    /// for an explicit thread count.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use rebert::{ReBertConfig, ReBertModel};
    /// use rebert_circuits::{generate, Profile};
    ///
    /// let model = ReBertModel::new(ReBertConfig::small(), 0);
    /// let c = generate(&Profile::new("demo", 100, 16, 4), 1);
    /// let recovered = model.recover_words(&c.netlist);
    /// assert_eq!(recovered.assignment.len(), 16);
    /// ```
    pub fn recover_words(&self, nl: &Netlist) -> RecoveredWords {
        self.recover_words_with(nl, 0)
    }

    /// [`ReBertModel::recover_words`] with an explicit scoring thread
    /// count (`0` = all available cores). Surviving pairs are scored on
    /// the tape-free batched engine ([`ReBertModel::score_pairs`]); the
    /// recovered assignment is identical for every thread count.
    pub fn recover_words_with(&self, nl: &Netlist, threads: usize) -> RecoveredWords {
        let start = Instant::now();
        let cfg = self.config();

        let seqs = bit_sequences(nl, cfg.k_levels, cfg.code_width);
        let n = seqs.len();
        let tokenize_time = start.elapsed();

        let filter_start = Instant::now();
        let mut matrix = ScoreMatrix::new(n);
        let mut filtered = 0usize;
        let mut survivors: Vec<(usize, usize)> = Vec::new();
        let mut pairs: Vec<PairSequence> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (ta, ca) = &seqs[i];
                let (tb, cb) = &seqs[j];
                if jaccard(ta, tb) < cfg.jaccard_threshold {
                    filtered += 1;
                    continue; // score stays at the −1 sentinel
                }
                survivors.push((i, j));
                pairs.push(PairSequence::build(
                    ta,
                    ca,
                    tb,
                    cb,
                    cfg.code_width,
                    cfg.max_seq,
                ));
            }
        }
        let filter_time = filter_start.elapsed();

        let score_start = Instant::now();
        let scores = self.score_pairs(&pairs, threads);
        let score_time = score_start.elapsed();

        let group_start = Instant::now();
        for (&(i, j), &p) in survivors.iter().zip(&scores) {
            matrix.set(i, j, p);
        }
        let assignment = group_bits_adaptive(&matrix);
        let group_time = group_start.elapsed();

        let scored = pairs.len();
        let pairs_total = n * n.saturating_sub(1) / 2;
        let pairs_per_sec = if scored == 0 {
            0.0
        } else {
            scored as f64 / score_time.as_secs_f64().max(f64::MIN_POSITIVE)
        };
        RecoveredWords {
            assignment,
            score_matrix: matrix,
            stats: PipelineStats {
                pairs_total,
                pairs_filtered: filtered,
                pairs_scored: scored,
                pairs_per_sec,
                tokenize_time,
                filter_time,
                score_time,
                group_time,
                elapsed: start.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use rebert_circuits::{generate, Profile};

    #[test]
    fn recovery_covers_every_bit() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let c = generate(&Profile::new("demo", 80, 10, 3), 2);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.assignment.len(), 10);
        assert_eq!(
            rec.stats.pairs_total,
            rec.stats.pairs_filtered + rec.stats.pairs_scored
        );
        // Words partition the bits.
        let total: usize = rec.words().iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn stats_track_filtering() {
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 1.01; // filter everything
        let model = ReBertModel::new(cfg, 0);
        let c = generate(&Profile::new("demo", 80, 8, 2), 3);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.stats.pairs_scored, 0);
        assert_eq!(rec.stats.pairs_filtered, rec.stats.pairs_total);
        assert_eq!(rec.stats.pairs_per_sec, 0.0);
        // Everything filtered => all singleton words.
        assert_eq!(rec.words().len(), 8);
    }

    #[test]
    fn no_filtering_scores_all_pairs() {
        let mut cfg = ReBertConfig::tiny();
        cfg.jaccard_threshold = 0.0;
        let model = ReBertModel::new(cfg, 0);
        let c = generate(&Profile::new("demo", 80, 6, 2), 4);
        let rec = model.recover_words(&c.netlist);
        assert_eq!(rec.stats.pairs_filtered, 0);
        assert_eq!(rec.stats.pairs_scored, 15);
        assert!(rec.stats.pairs_per_sec > 0.0);
    }

    #[test]
    fn assignment_is_thread_count_invariant() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 9);
        let c = generate(&Profile::new("demo", 90, 12, 3), 5);
        let base = model.recover_words_with(&c.netlist, 1);
        for threads in [2usize, 4] {
            let rec = model.recover_words_with(&c.netlist, threads);
            assert_eq!(rec.assignment, base.assignment, "{threads} threads");
            for i in 0..12 {
                for j in (i + 1)..12 {
                    assert_eq!(
                        rec.score_matrix.get(i, j).to_bits(),
                        base.score_matrix.get(i, j).to_bits(),
                        "score ({i},{j}) with {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn phase_timings_sum_below_elapsed() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let c = generate(&Profile::new("demo", 80, 8, 2), 6);
        let s = model.recover_words(&c.netlist).stats;
        let phases = s.tokenize_time + s.filter_time + s.score_time + s.group_time;
        assert!(phases <= s.elapsed);
    }
}
