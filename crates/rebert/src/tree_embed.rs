//! Tree-based positional codes (paper §II-B.3, Fig. 3).
//!
//! Each node of a bit's binary tree gets a positional code built from its
//! root-to-node path: the **root is the zero vector**; each child takes
//! its parent's code **right-shifted by two digits** with `10` prepended
//! for a left child and `01` for a right child. Codes are collected in
//! pre-order, aligned with the token sequence.
//!
//! The shift-register formulation means a fixed code width `W` keeps the
//! `W/2` most recent moves — deeper ancestry falls off the end, exactly
//! like the paper's description. The model maps the code into the hidden
//! dimension through a learned linear projection (the standard treatment
//! from Shiv & Quirk's tree transformers, which the paper cites).

use rebert_netlist::{BitTree, TreeNode};

/// Computes per-node tree positional codes for `tree`, **in pre-order**
/// (aligned with [`crate::tokenize_bit`]), each of width `code_width`.
///
/// # Panics
///
/// Panics if `code_width` is odd or zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert::tree_codes;
/// use rebert_netlist::{binarize, parse_bench, BitTree};
///
/// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ns = AND(a, b)\nq = DFF(s)\nOUTPUT(s)\n")?;
/// let (bin, _) = binarize(&nl);
/// let tree = BitTree::extract(&bin, bin.bits()[0], 6);
/// let codes = tree_codes(&tree, 6);
/// assert_eq!(codes[0], vec![0.0; 6]);          // root is the zero vector
/// assert_eq!(&codes[1][..2], &[1.0, 0.0]);      // left child starts with 10
/// assert_eq!(&codes[2][..2], &[0.0, 1.0]);      // right child starts with 01
/// # Ok(())
/// # }
/// ```
pub fn tree_codes(tree: &BitTree, code_width: usize) -> Vec<Vec<f32>> {
    assert!(
        code_width >= 2 && code_width.is_multiple_of(2),
        "code_width must be a positive even number"
    );
    let n = tree.len();
    let mut codes_by_node: Vec<Vec<f32>> = vec![vec![0.0; code_width]; n];
    // Walk the arena from the root; parents are always created before
    // children in BitTree's arena, but traverse explicitly for clarity.
    let mut stack: Vec<u32> = if n > 0 { vec![0] } else { vec![] };
    while let Some(i) = stack.pop() {
        if let TreeNode::Gate { left, right, .. } = &tree.nodes()[i as usize] {
            let parent = codes_by_node[i as usize].clone();
            codes_by_node[*left as usize] = child_code(&parent, true);
            stack.push(*left);
            if let Some(r) = right {
                codes_by_node[*r as usize] = child_code(&parent, false);
                stack.push(*r);
            }
        }
    }
    // Emit in pre-order to align with the token sequence.
    tree.preorder()
        .into_iter()
        .map(|i| codes_by_node[i as usize].clone())
        .collect()
}

/// One shift step of the paper's encoding: right-shift the parent code by
/// two digits and prepend `10` (left child) or `01` (right child).
pub fn child_code(parent: &[f32], is_left: bool) -> Vec<f32> {
    let w = parent.len();
    let mut code = vec![0.0f32; w];
    if is_left {
        code[0] = 1.0;
        code[1] = 0.0;
    } else {
        code[0] = 0.0;
        code[1] = 1.0;
    }
    // Parent digits shift right by two; the last two fall off.
    code[2..w].copy_from_slice(&parent[..w - 2]);
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::{binarize, parse_bench};

    fn tree_for(src: &str, k: usize) -> BitTree {
        let (bin, _) = binarize(&parse_bench("t", src).unwrap());
        BitTree::extract(&bin, bin.bits()[0], k)
    }

    const THREE_NODE: &str = "\
INPUT(a)
INPUT(b)
s = AND(a, b)
q = DFF(s)
OUTPUT(s)
";

    #[test]
    fn fig3_three_node_example() {
        // Fig. 3: root 0…0, left child 10 0…, right child 01 0….
        let codes = tree_codes(&tree_for(THREE_NODE, 6), 6);
        assert_eq!(codes.len(), 3);
        assert_eq!(codes[0], vec![0.0; 6]);
        assert_eq!(codes[1], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(codes[2], vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn grandchild_shifts_parent_marker() {
        // d = AND(OR(a,b), c): pre-order AND OR X X X.
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
w = OR(a, b)
d = AND(w, c)
q = DFF(d)
OUTPUT(d)
";
        let codes = tree_codes(&tree_for(src, 6), 8);
        // node1 = OR (left child of root): 10 000000
        assert_eq!(&codes[1][..4], &[1.0, 0.0, 0.0, 0.0]);
        // node2 = a (left child of OR): 10 then parent's 10 shifted: 1010 0000
        assert_eq!(&codes[2][..4], &[1.0, 0.0, 1.0, 0.0]);
        // node3 = b (right child of OR): 01 10 0000
        assert_eq!(&codes[3][..4], &[0.0, 1.0, 1.0, 0.0]);
        // node4 = c (right child of root): 01 000000
        assert_eq!(&codes[4][..4], &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn deep_paths_truncate_gracefully() {
        // A chain of NOTs deeper than the code can hold.
        let src = "\
INPUT(a)
w1 = NOT(a)
w2 = NOT(w1)
w3 = NOT(w2)
w4 = NOT(w3)
w5 = NOT(w4)
q = DFF(w5)
OUTPUT(w5)
";
        let codes = tree_codes(&tree_for(src, 6), 4);
        // Every non-root node is a left (only) child: marker 10 at front,
        // older moves shifted off. All codes stay width 4 and finite.
        for c in &codes {
            assert_eq!(c.len(), 4);
        }
        // Depth ≥ 2 nodes all look like 1010 (two most recent left moves).
        assert_eq!(codes[2], vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(codes[5], vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn codes_align_with_preorder_tokens() {
        let tree = tree_for(THREE_NODE, 6);
        let codes = tree_codes(&tree, 6);
        let tokens = crate::token::tokenize_bit(&tree);
        assert_eq!(codes.len(), tokens.len());
    }

    #[test]
    fn sibling_codes_differ() {
        let codes = tree_codes(&tree_for(THREE_NODE, 6), 6);
        assert_ne!(codes[1], codes[2]);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_width_rejected() {
        let _ = tree_codes(&tree_for(THREE_NODE, 6), 5);
    }
}
