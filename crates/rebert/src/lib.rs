//! # rebert
//!
//! A from-scratch Rust reproduction of **ReBERT** ("LLM for Gate-Level to
//! Word-Level Reverse Engineering", DATE 2025): recovering multi-bit
//! *word* groupings from flattened gate-level netlists with a BERT-style
//! pairwise classifier over fan-in-cone token sequences.
//!
//! ## Pipeline (paper Fig. 1)
//!
//! 1. **Tokenization** ([`tokenize_bit`], [`PairSequence`]) — each bit's
//!    binary fan-in tree (depth `k`) is flattened by pre-order traversal;
//!    pairs are joined as `[CLS] a… [SEP] b…`.
//! 2. **Embedding** ([`ReBertModel`]) — learned word + sequential
//!    positional + tree positional ([`tree_codes`]) embeddings.
//! 3. **Pair-wise prediction** — a Jaccard pre-filter ([`jaccard`]) then a
//!    BERT encoder/pooler/classifier. The quadratic phase is deduplicated
//!    over cone equivalence classes ([`ConeClasses`], [`jaccard_counts`]):
//!    each unique class pair is filtered and scored once and the memoized
//!    score is broadcast to all member bit pairs, bitwise-identical to
//!    per-bit-pair scoring.
//! 4. **Word generation** ([`ScoreMatrix`], [`group_bits_adaptive`]) —
//!    adaptive `max/3` threshold, connected components.
//!
//! Quality is measured with the Adjusted Rand Index ([`ari`]).
//!
//! ## Quickstart
//!
//! ```
//! use rebert::{ari, ReBertConfig, ReBertModel};
//! use rebert_circuits::{generate, Profile};
//!
//! // A small benchmark circuit with known word structure.
//! let circuit = generate(&Profile::new("demo", 100, 12, 3), 7);
//!
//! // An untrained model still runs the full pipeline end to end.
//! let model = ReBertModel::new(ReBertConfig::tiny(), 0);
//! let recovered = model.recover_words(&circuit.netlist);
//! let score = ari(&circuit.labels.assignment(), &recovered.assignment);
//! assert!((-1.0..=1.0).contains(&score));
//! ```
//!
//! Training uses [`training_samples`] (leave-one-out splits via
//! [`loo_split`]) and [`train`]; trained models persist with
//! [`save_model`] / [`load_model`].

#![warn(missing_docs)]

mod cache;
mod dataset;
mod filter;
mod group;
mod metrics;
mod model;
mod par;
mod persist;
mod pipeline;
mod session;
mod token;
mod train;
mod tree_embed;

/// The workspace JSON module, re-exported from its home in
/// `rebert-obs` so existing `rebert::json::...` paths keep working.
pub use rebert_obs::json;

pub use cache::{CacheFileInfo, ScoreCache};
pub use dataset::{
    all_pairs, bit_sequences, cone_hash, loo_split, training_samples, ClassId, ConeClasses,
    DatasetConfig, PairSample, StableHasher,
};
pub use filter::{jaccard, jaccard_counts, jaccard_set, passes_filter, PAPER_JACCARD_THRESHOLD};
pub use group::{
    group_bits, group_bits_adaptive, group_bits_agglomerative, ScoreMatrix, UnionFind,
    FILTERED_SCORE,
};
pub use metrics::{ari, pair_scores, PairScores};
pub use model::{resolve_threads, EmbeddingFlags, ReBertConfig, ReBertModel, ScoreScratch};
pub use persist::{load_model, save_model, PersistError};
pub use pipeline::{PipelineStats, RecoveredWords};
pub use rebert_nn::Backend;
pub use session::{CancelToken, Cancelled, RecoverySession};
pub use token::{tokenize_bit, PairSequence, Token, Vocab};
pub use train::{accuracy, train, TrainConfig, TrainReport};
pub use tree_embed::{child_code, tree_codes};
