//! Evaluation metrics: Adjusted Rand Index and pairwise scores
//! (paper §III-A.3).

use std::collections::HashMap;

/// Adjusted Rand Index between two clusterings given as assignment
/// vectors (`assign[i]` = cluster id of element `i`). Ranges in `[-1, 1]`:
/// 1 is a perfect match, 0 is chance level.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use rebert::ari;
///
/// assert_eq!(ari(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0); // same partition
/// assert!(ari(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.1);   // unrelated
/// ```
pub fn ari(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "assignment length mismatch");
    let n = truth.len();
    if n <= 1 {
        return 1.0;
    }
    let mut contingency: HashMap<(usize, usize), u64> = HashMap::new();
    let mut rows: HashMap<usize, u64> = HashMap::new();
    let mut cols: HashMap<usize, u64> = HashMap::new();
    for (&t, &p) in truth.iter().zip(pred) {
        *contingency.entry((t, p)).or_insert(0) += 1;
        *rows.entry(t).or_insert(0) += 1;
        *cols.entry(p).or_insert(0) += 1;
    }
    let c2 = |x: u64| (x * x.saturating_sub(1) / 2) as f64;
    let index: f64 = contingency.values().map(|&v| c2(v)).sum();
    let sum_rows: f64 = rows.values().map(|&v| c2(v)).sum();
    let sum_cols: f64 = cols.values().map(|&v| c2(v)).sum();
    let total_pairs = c2(n as u64);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are all-singletons or one big cluster on both
        // sides: define as perfect agreement when identical, else 0.
        return if index == max_index { 1.0 } else { 0.0 };
    }
    (index - expected) / (max_index - expected)
}

/// Pairwise precision/recall/F1 of a predicted grouping against truth:
/// a "positive" is an unordered pair of elements placed in the same group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScores {
    /// Fraction of predicted same-group pairs that are truly same-group.
    pub precision: f64,
    /// Fraction of true same-group pairs that were predicted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes [`PairScores`] for two assignment vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn pair_scores(truth: &[usize], pred: &[usize]) -> PairScores {
    assert_eq!(truth.len(), pred.len(), "assignment length mismatch");
    let n = truth.len();
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fne = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let t = truth[i] == truth[j];
            let p = pred[i] == pred[j];
            match (t, p) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fne += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        0.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_one() {
        assert_eq!(ari(&[0, 0, 1, 1, 2], &[5, 5, 9, 9, 7]), 1.0);
    }

    #[test]
    fn known_sklearn_value() {
        // sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,0,1,2]) = 0.5714285714285715
        let v = ari(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((v - 0.571_428_571_428_571_5).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn another_sklearn_value() {
        // adjusted_rand_score([0,0,1,2],[0,0,1,1]) is symmetric = 0.5714...
        let v = ari(&[0, 0, 1, 2], &[0, 0, 1, 1]);
        assert!((v - 0.571_428_571_428_571_5).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn chance_level_near_zero() {
        // A partition vs a fully crossed partition.
        let truth = [0, 0, 0, 1, 1, 1];
        let pred = [0, 1, 2, 0, 1, 2];
        // sklearn gives −0.3636… for this fully crossed pair; "chance
        // level" means far from 1, not exactly 0.
        let v = ari(&truth, &pred);
        assert!(v.abs() < 0.5, "got {v}");
    }

    #[test]
    fn worse_than_chance_is_negative() {
        // Deliberately anti-correlated grouping.
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 0, 1];
        assert!(ari(&truth, &pred) <= 0.0);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(ari(&[0], &[3]), 1.0);
        assert_eq!(ari(&[], &[]), 1.0);
        // All singletons on both sides: identical partitions.
        assert_eq!(ari(&[0, 1, 2], &[2, 0, 1]), 1.0);
        // One big cluster on both sides.
        assert_eq!(ari(&[0, 0, 0], &[1, 1, 1]), 1.0);
    }

    #[test]
    fn pair_scores_known_values() {
        // truth: {0,1} {2,3}; pred: {0,1,2} {3}
        // true positives: (0,1). predicted pairs: (0,1),(0,2),(1,2) => tp=1 fp=2.
        // true pairs: (0,1),(2,3) => fn=1.
        let s = pair_scores(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!(s.f1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = ari(&[0, 1], &[0]);
    }
}
