//! Deterministic work-stealing parallel map, shared by the model's batch
//! scorer and the pipeline's class-pair sweep.
//!
//! Work items are claimed in fixed-size batches off an atomic cursor —
//! netlist workloads are irregular (Jaccard-filtered survivors, mixed
//! sequence lengths), so fixed per-thread chunks would leave cores idle.
//! Results are scattered back by item index, making the output identical
//! for every thread count.
//!
//! Cancellation is cooperative: when a [`CancelToken`] is supplied,
//! every worker polls it before claiming a batch and stops claiming once
//! it trips, so an aborted map returns within one batch of work per
//! worker and never yields a partial result.
//!
//! This module is atomics-only — the claim cursor is the sole shared
//! state — so there is nothing here to put on `rebert_sync`'s lock-order
//! graph; the workspace's blocking locks all live behind that wrapper.

use std::sync::atomic::{AtomicUsize, Ordering};

use rebert_obs as obs;

use crate::session::CancelToken;

/// Maps `f` over `items` on `threads` OS threads (`0` = all available
/// cores), returning results in item order.
///
/// Each worker owns one `mk_state()` value (e.g. an inference scratch)
/// that is reused across its items; `f` must be a pure function of the
/// item and its state for the output to be thread-count-invariant. Falls
/// back to a plain serial map when one thread suffices or the workload
/// fits in a single batch.
///
/// Production callers thread a [`CancelToken`] and use
/// [`try_par_map_batched`] directly; this wrapper stays as the
/// uncancellable reference entry point for the determinism tests.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn par_map_batched<T, R, S, G, F>(
    items: &[T],
    threads: usize,
    batch: usize,
    mk_state: G,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    try_par_map_batched(items, threads, batch, None, mk_state, f)
        .expect("uncancellable map always completes")
}

/// [`par_map_batched`] with cooperative cancellation: returns `None` if
/// `cancel` tripped before every item was computed. A token that trips
/// only after the last batch was claimed still yields the complete
/// result — cancellation is best-effort, never a partial answer.
pub(crate) fn try_par_map_batched<T, R, S, G, F>(
    items: &[T],
    threads: usize,
    batch: usize,
    cancel: Option<&CancelToken>,
    mk_state: G,
    f: F,
) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let threads = crate::model::resolve_threads(threads);
    let n = items.len();
    if threads == 1 || n <= batch {
        let mut state = mk_state();
        let mut out = Vec::with_capacity(n);
        for chunk in items.chunks(batch.max(1)) {
            if cancelled() {
                obs::event_with(
                    obs::Level::Debug,
                    "par",
                    "batch_cancel",
                    vec![("claimed", out.len().into())],
                );
                return None;
            }
            out.extend(chunk.iter().map(|item| f(&mut state, item)));
        }
        return Some(out);
    }
    let workers = threads.min(n.div_ceil(batch));
    let cursor = AtomicUsize::new(0);
    // Workers adopt the caller's tracing context so their per-batch
    // claim/complete spans parent under the scoring (or sweep) phase —
    // one Chrome-trace duration track per worker thread.
    let trace_ctx = obs::current_ctx();
    let batches: Vec<(usize, Vec<R>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                let mk_state = &mk_state;
                let cancelled = &cancelled;
                let trace_ctx = &trace_ctx;
                scope.spawn(move |_| {
                    let _tracing = obs::enter_ctx(trace_ctx);
                    let mut state = mk_state();
                    let mut done = Vec::new();
                    loop {
                        if cancelled() {
                            obs::event_with(
                                obs::Level::Debug,
                                "par",
                                "batch_cancel",
                                vec![("claimed", done.len().into())],
                            );
                            break;
                        }
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        // One span per claimed batch: Begin = claim,
                        // End = complete, on this worker's track.
                        let sp = obs::span_with(
                            obs::Level::Debug,
                            "par",
                            "batch",
                            vec![("start", start.into()), ("len", (end - start).into())],
                        );
                        let results: Vec<R> = items[start..end]
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect();
                        sp.end();
                        done.push((start, results));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker threads do not panic"))
            .collect()
    })
    .expect("parallel scope does not panic");
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut filled = 0usize;
    for (start, results) in batches {
        for (offset, r) in results.into_iter().enumerate() {
            out[start + offset] = Some(r);
            filled += 1;
        }
    }
    // A cancelled map leaves unclaimed holes; only a complete scatter is
    // returned (a token tripping after the final claim changes nothing).
    if filled < n {
        return None;
    }
    Some(
        out.into_iter()
            .map(|r| r.expect("every index is computed exactly once"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let got = par_map_batched(&items, threads, 16, || (), |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn per_worker_state_is_reused() {
        // State counts items handled by its worker; the total over all
        // workers must equal the item count (serial path: one state).
        let items = vec![0u8; 100];
        let results = par_map_batched(
            &items,
            1,
            8,
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(*results.last().unwrap(), 100, "one serial state");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_batched(&empty, 4, 8, || (), |_, &x| x).is_empty());
        let one = vec![7u32];
        assert_eq!(par_map_batched(&one, 4, 8, || (), |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn pre_cancelled_token_aborts_for_any_thread_count() {
        let items: Vec<usize> = (0..300).collect();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 2, 4] {
            let got = try_par_map_batched(&items, threads, 16, Some(&token), || (), |_, &x| x);
            assert_eq!(got, None, "{threads} threads");
        }
    }

    #[test]
    fn untripped_token_yields_full_result() {
        let items: Vec<usize> = (0..300).collect();
        let token = CancelToken::new();
        for threads in [1usize, 3] {
            let got = try_par_map_batched(&items, threads, 16, Some(&token), || (), |_, &x| x * 2)
                .expect("completes");
            assert_eq!(got.len(), 300, "{threads} threads");
            assert_eq!(got[299], 598);
        }
    }

    #[test]
    fn mid_flight_cancellation_stops_claiming() {
        // Trip the token from inside the map after a few items; the map
        // must return None without touching every item.
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..100_000).collect();
        let token = CancelToken::new();
        let seen = AtomicUsize::new(0);
        let got = try_par_map_batched(
            &items,
            2,
            8,
            Some(&token),
            || (),
            |_, &x| {
                if seen.fetch_add(1, Ordering::Relaxed) == 20 {
                    token.cancel();
                }
                x
            },
        );
        assert_eq!(got, None);
        assert!(
            seen.load(Ordering::Relaxed) < items.len(),
            "cancellation should stop the sweep early"
        );
    }
}

/// Exhaustive interleaving checks of the batched-cursor claim protocol,
/// run with `RUSTFLAGS="--cfg loom" cargo test -p rebert --lib loom`.
///
/// `par_map_batched` itself runs on crossbeam's scoped threads, which
/// loom cannot instrument, so these models restate the protocol —
/// workers `fetch_add` a shared cursor to claim index batches, optionally
/// polling a cancel flag before each claim — on loom primitives and
/// assert the invariants the scatter phase relies on: every index is
/// claimed at most once, a completed sweep claimed every index, and a
/// cancelled sweep is detectable (never mistaken for a full result).
#[cfg(all(test, loom))]
mod loom_models {
    use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    const ITEMS: usize = 3;
    const BATCH: usize = 1;

    fn worker(cursor: &AtomicUsize, claims: &[AtomicUsize], cancel: Option<&AtomicBool>) -> usize {
        let mut claimed = 0;
        loop {
            if let Some(flag) = cancel {
                if flag.load(Ordering::Relaxed) {
                    return claimed;
                }
            }
            let start = cursor.fetch_add(BATCH, Ordering::Relaxed);
            if start >= ITEMS {
                return claimed;
            }
            for i in start..(start + BATCH).min(ITEMS) {
                claims[i].fetch_add(1, Ordering::Relaxed);
                claimed += 1;
            }
        }
    }

    #[test]
    fn loom_every_index_claimed_exactly_once() {
        loom::model(|| {
            let cursor = Arc::new(AtomicUsize::new(0));
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let claims = Arc::clone(&claims);
                    thread::spawn(move || worker(&cursor, &claims, None))
                })
                .collect();
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, ITEMS, "a completed sweep visits everything");
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} claimed once");
            }
        });
    }

    #[test]
    fn loom_cancellation_is_all_or_nothing() {
        loom::model(|| {
            let cursor = Arc::new(AtomicUsize::new(0));
            let cancel = Arc::new(AtomicBool::new(false));
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
            let w = {
                let cursor = Arc::clone(&cursor);
                let cancel = Arc::clone(&cancel);
                let claims = Arc::clone(&claims);
                thread::spawn(move || worker(&cursor, &claims, Some(&cancel)))
            };
            let canceller = {
                let cancel = Arc::clone(&cancel);
                // Pure flag, no payload — rebert-lint: allow(relaxed-publication-store)
                thread::spawn(move || cancel.store(true, Ordering::Relaxed))
            };
            let filled = w.join().unwrap();
            canceller.join().unwrap();
            // Whatever the interleaving: no duplicates, and the scatter
            // phase's `filled < n` check cleanly separates "cancelled"
            // from "complete" — a partial fill is never reported whole.
            for c in claims.iter() {
                assert!(c.load(Ordering::Relaxed) <= 1, "no index claimed twice");
            }
            assert!(filled <= ITEMS);
            let claimed_total: usize = claims.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            assert_eq!(claimed_total, filled, "claim ledger matches fill count");
        });
    }
}
