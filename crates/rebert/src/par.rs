//! Deterministic work-stealing parallel map, shared by the model's batch
//! scorer and the pipeline's class-pair sweep.
//!
//! Work items are claimed in fixed-size batches off an atomic cursor —
//! netlist workloads are irregular (Jaccard-filtered survivors, mixed
//! sequence lengths), so fixed per-thread chunks would leave cores idle.
//! Results are scattered back by item index, making the output identical
//! for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `threads` OS threads (`0` = all available
/// cores), returning results in item order.
///
/// Each worker owns one `mk_state()` value (e.g. an inference scratch)
/// that is reused across its items; `f` must be a pure function of the
/// item and its state for the output to be thread-count-invariant. Falls
/// back to a plain serial map when one thread suffices or the workload
/// fits in a single batch.
pub(crate) fn par_map_batched<T, R, S, G, F>(
    items: &[T],
    threads: usize,
    batch: usize,
    mk_state: G,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = crate::model::resolve_threads(threads);
    let n = items.len();
    if threads == 1 || n <= batch {
        let mut state = mk_state();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = threads.min(n.div_ceil(batch));
    let cursor = AtomicUsize::new(0);
    let batches: Vec<(usize, Vec<R>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                let mk_state = &mk_state;
                scope.spawn(move |_| {
                    let mut state = mk_state();
                    let mut done = Vec::new();
                    loop {
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        let results: Vec<R> = items[start..end]
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect();
                        done.push((start, results));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker threads do not panic"))
            .collect()
    })
    .expect("parallel scope does not panic");
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (start, results) in batches {
        for (offset, r) in results.into_iter().enumerate() {
            out[start + offset] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index is computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let got = par_map_batched(&items, threads, 16, || (), |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn per_worker_state_is_reused() {
        // State counts items handled by its worker; the total over all
        // workers must equal the item count (serial path: one state).
        let items = vec![0u8; 100];
        let results = par_map_batched(
            &items,
            1,
            8,
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(*results.last().unwrap(), 100, "one serial state");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_batched(&empty, 4, 8, || (), |_, &x| x).is_empty());
        let one = vec![7u32];
        assert_eq!(par_map_batched(&one, 4, 8, || (), |_, &x| x + 1), vec![8]);
    }
}
