//! Training-data generation (paper §III-A.2).
//!
//! From each benchmark circuit, corrupted variants are produced for
//! R-Index ∈ {0, 0.2, …, 1}; bits are tokenized, all bit pairs are
//! considered, positives/negatives are balanced **1 : 1.2**, and at most
//! **5,000 samples per circuit** enter the training set. Leave-one-out
//! cross-validation trains on every benchmark except the one under test.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_circuits::{corrupt, GeneratedCircuit};
use rebert_netlist::{binarize, BitTree, Netlist};
use serde::{Deserialize, Serialize};

use crate::token::{tokenize_bit, PairSequence, Token};
use crate::tree_embed::tree_codes;

/// A labeled training/evaluation sample: one tokenized bit pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSample {
    /// The joint token sequence and tree codes.
    pub seq: PairSequence,
    /// Whether the two bits belong to the same word.
    pub label: bool,
    /// Source benchmark name.
    pub circuit: String,
    /// The pair's flip-flop indices.
    pub bits: (usize, usize),
}

/// Knobs for dataset generation. The defaults are the paper's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Fan-in back-trace depth `k`.
    pub k_levels: usize,
    /// Tree positional code width.
    pub code_width: usize,
    /// Maximum joint sequence length.
    pub max_seq: usize,
    /// Negative : positive ratio (paper: 1.2).
    pub neg_ratio: f64,
    /// Maximum samples contributed by any one circuit (paper: 5,000).
    pub max_per_circuit: usize,
    /// Corruption levels used for augmentation (paper: 0 to 1 step 0.2).
    pub r_indexes: Vec<f64>,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            k_levels: 6,
            code_width: 32,
            max_seq: 288,
            neg_ratio: 1.2,
            max_per_circuit: 5000,
            r_indexes: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

impl DatasetConfig {
    /// Derives the sequence parameters from a model configuration so the
    /// dataset matches what the model expects.
    pub fn for_model(cfg: &crate::model::ReBertConfig) -> Self {
        DatasetConfig {
            k_levels: cfg.k_levels,
            code_width: cfg.code_width,
            max_seq: cfg.max_seq,
            ..Default::default()
        }
    }
}

/// Tokenizes every bit of a netlist: returns, per flip-flop (in flip-flop
/// order), the pre-order token sequence and aligned tree codes.
///
/// The netlist is binarized internally (§II-A.1).
pub fn bit_sequences(
    nl: &Netlist,
    k_levels: usize,
    code_width: usize,
) -> Vec<(Vec<Token>, Vec<Vec<f32>>)> {
    let (bin, _) = binarize(nl);
    bin.bits()
        .iter()
        .map(|&bit| {
            let tree = BitTree::extract(&bin, bit, k_levels);
            let toks = tokenize_bit(&tree);
            let codes = tree_codes(&tree, code_width);
            (toks, codes)
        })
        .collect()
}

/// Dense identifier of a cone equivalence class (see [`ConeClasses`]).
pub type ClassId = u32;

/// A hand-rolled streaming **FNV-1a** 64-bit hasher.
///
/// Unlike `std::collections::hash_map::DefaultHasher`, whose output is
/// randomized per process, this hash is a pure function of the bytes
/// fed to it — identical across runs, platforms, and builds — so its
/// digests are usable as *persistent* content-addressed keys (the
/// cross-request score cache, checkpoint fingerprints).
///
/// # Examples
///
/// ```
/// use rebert::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write(b"rebert");
/// let a = h.finish();
/// let mut h2 = StableHasher::new();
/// h2.write(b"rebert");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// FNV-1a 64-bit offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher(Self::OFFSET)
    }

    /// A hasher starting from an arbitrary state — a cheap way to derive
    /// independent hash lanes over the same bytes.
    pub fn with_seed(seed: u64) -> Self {
        StableHasher(seed)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable 64-bit content hash of one bit's cone — the `(tokens, codes)`
/// pair produced by [`bit_sequences`], with tokens hashed by their fixed
/// vocabulary id and codes by their `f32` bit patterns.
///
/// Two cones hash equal exactly when the model would see byte-identical
/// input for them (modulo the negligible 64-bit collision probability,
/// which [`ConeClasses::build`] guards with a full equality check). The
/// digest is identical across runs and platforms, which is what lets
/// cone hashes key the persistent cross-request score cache.
pub fn cone_hash(tokens: &[Token], codes: &[Vec<f32>]) -> u64 {
    let vocab = crate::token::Vocab::new();
    let mut h = StableHasher::new();
    h.write_u64(tokens.len() as u64);
    for &t in tokens {
        h.write_u32(vocab.id(t) as u32);
    }
    h.write_u64(codes.len() as u64);
    for code in codes {
        h.write_u64(code.len() as u64);
        for &c in code {
            h.write_u32(c.to_bits());
        }
    }
    h.finish()
}

/// Equality view of one bit's cone as the pair `(tokens, codes)`, with
/// the `f32` codes compared **bitwise** — two bits land in the same
/// class exactly when the model would see byte-identical input for them.
struct ConeKey<'a> {
    tokens: &'a [Token],
    codes: &'a [Vec<f32>],
}

impl PartialEq for ConeKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens
            && self.codes.len() == other.codes.len()
            && self.codes.iter().zip(other.codes).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }
}

/// Equivalence classes of bits whose tokenized cones — the `(tokens,
/// codes)` pair produced by [`bit_sequences`] — are bit-identical.
///
/// On ITC'99-style netlists many register bits are replicated datapath
/// slices, so whole groups of bits share one cone. Classifying them once
/// turns the pipeline's quadratic phase from per-*bit*-pair work into
/// per-*class*-pair work: the Jaccard filter and the model each run once
/// per class pair and the result is broadcast to every member bit pair
/// (see `ReBertModel::recover_words_with`).
///
/// Class ids are dense (`0..len()`) in first-seen bit order, so
/// `members(c)` lists are sorted ascending and
/// `representative(c) == members(c)[0]`.
///
/// # Examples
///
/// ```
/// use rebert::{bit_sequences, ConeClasses};
/// use rebert_circuits::{generate, Profile};
///
/// let c = generate(&Profile::new("demo", 100, 12, 3), 7);
/// let seqs = bit_sequences(&c.netlist, 3, 8);
/// let classes = ConeClasses::build(&seqs);
/// assert!(!classes.is_empty() && classes.len() <= seqs.len());
/// let c0 = classes.class_of(0);
/// assert!(classes.members(c0).contains(&0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeClasses {
    class_of: Vec<ClassId>,
    members: Vec<Vec<usize>>,
    histograms: Vec<Vec<u32>>,
    hashes: Vec<u64>,
}

impl ConeClasses {
    /// Groups the tokenized bits of [`bit_sequences`] into cone classes
    /// and precomputes one token histogram and one stable content hash
    /// ([`cone_hash`]) per class.
    ///
    /// Grouping is keyed on the stable hash so class identity is a pure
    /// function of cone content (no process-random hashing involved); a
    /// hash collision falls back to full bitwise equality, so grouping
    /// stays exact regardless.
    pub fn build(seqs: &[(Vec<Token>, Vec<Vec<f32>>)]) -> Self {
        let vocab = crate::token::Vocab::new();
        let mut index: std::collections::HashMap<u64, Vec<ClassId>> =
            std::collections::HashMap::with_capacity(seqs.len());
        let mut class_of = Vec::with_capacity(seqs.len());
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut histograms: Vec<Vec<u32>> = Vec::new();
        let mut hashes: Vec<u64> = Vec::new();
        for (bit, (tokens, codes)) in seqs.iter().enumerate() {
            let h = cone_hash(tokens, codes);
            let key = ConeKey { tokens, codes };
            let bucket = index.entry(h).or_default();
            let id = bucket
                .iter()
                .copied()
                .find(|&c| {
                    let rep = members[c as usize][0];
                    let (rt, rc) = &seqs[rep];
                    ConeKey {
                        tokens: rt,
                        codes: rc,
                    } == key
                })
                .unwrap_or_else(|| {
                    let id = members.len() as ClassId;
                    bucket.push(id);
                    members.push(Vec::new());
                    histograms.push(vocab.histogram(tokens));
                    hashes.push(h);
                    id
                });
            members[id as usize].push(bit);
            class_of.push(id);
        }
        ConeClasses {
            class_of,
            members,
            histograms,
            hashes,
        }
    }

    /// Number of distinct classes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no bits (and hence no classes).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of classified bits.
    pub fn bits(&self) -> usize {
        self.class_of.len()
    }

    /// The class of bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn class_of(&self, bit: usize) -> ClassId {
        self.class_of[bit]
    }

    /// Per-bit class assignment, in flip-flop order.
    pub fn assignments(&self) -> &[ClassId] {
        &self.class_of
    }

    /// The bits of class `c`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn members(&self, c: ClassId) -> &[usize] {
        &self.members[c as usize]
    }

    /// The representative bit of class `c` — its lowest member index.
    /// Every member's cone is bit-identical to the representative's.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn representative(&self, c: ClassId) -> usize {
        self.members[c as usize][0]
    }

    /// Token histogram of class `c` over the fixed vocabulary
    /// ([`crate::Vocab::histogram`] of the representative's tokens).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn histogram(&self, c: ClassId) -> &[u32] {
        &self.histograms[c as usize]
    }

    /// Stable content hash ([`cone_hash`]) of class `c`'s cone —
    /// identical across runs and platforms, shared by every member bit.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn hash(&self, c: ClassId) -> u64 {
        self.hashes[c as usize]
    }

    /// Mean bits per class (`1.0` = no cone duplication at all).
    pub fn duplication_rate(&self) -> f64 {
        if self.members.is_empty() {
            return 1.0;
        }
        self.class_of.len() as f64 / self.members.len() as f64
    }
}

/// Generates **all** labeled pair samples of one netlist variant (no
/// balancing, no caps) — the evaluation-side view of a circuit.
pub fn all_pairs(
    nl: &Netlist,
    labels: &rebert_circuits::WordLabels,
    cfg: &DatasetConfig,
) -> Vec<PairSample> {
    let seqs = bit_sequences(nl, cfg.k_levels, cfg.code_width);
    let assign = labels.assignment();
    let n = seqs.len();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let (ta, ca) = &seqs[i];
            let (tb, cb) = &seqs[j];
            let seq = PairSequence::build(ta, ca, tb, cb, cfg.code_width, cfg.max_seq);
            out.push(PairSample {
                seq,
                label: assign[i] == assign[j],
                circuit: nl.name().to_owned(),
                bits: (i, j),
            });
        }
    }
    out
}

/// Builds the balanced training set from several benchmark circuits,
/// applying R-Index augmentation, the 1 : `neg_ratio` class balance, and
/// the per-circuit cap. Deterministic for a fixed seed.
pub fn training_samples(
    circuits: &[&GeneratedCircuit],
    cfg: &DatasetConfig,
    seed: u64,
) -> Vec<PairSample> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (ci, c) in circuits.iter().enumerate() {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (ri, &r) in cfg.r_indexes.iter().enumerate() {
            let variant = if r == 0.0 {
                c.netlist.clone()
            } else {
                let (v, _) = corrupt(&c.netlist, r, seed ^ ((ci as u64) << 32) ^ (ri as u64));
                v
            };
            for s in all_pairs(&variant, &c.labels, cfg) {
                if s.label {
                    pos.push(s);
                } else {
                    neg.push(s);
                }
            }
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        // Balance 1 : neg_ratio, then cap the circuit's contribution.
        let cap = cfg.max_per_circuit;
        // Solve n_pos + n_neg <= cap with n_neg = ratio * n_pos.
        let max_pos_by_cap = (cap as f64 / (1.0 + cfg.neg_ratio)).floor() as usize;
        let n_pos = pos
            .len()
            .min(max_pos_by_cap)
            .min((neg.len() as f64 / cfg.neg_ratio).floor() as usize)
            .max(usize::from(!pos.is_empty() && !neg.is_empty()));
        let n_neg = ((n_pos as f64 * cfg.neg_ratio).round() as usize).min(neg.len());
        out.extend(pos.into_iter().take(n_pos));
        out.extend(neg.into_iter().take(n_neg));
    }
    out.shuffle(&mut rng);
    out
}

/// Splits `circuits` into the leave-one-out fold for `test_idx`:
/// `(training circuits, test circuit)`.
///
/// # Panics
///
/// Panics if `test_idx` is out of range.
pub fn loo_split(
    circuits: &[GeneratedCircuit],
    test_idx: usize,
) -> (Vec<&GeneratedCircuit>, &GeneratedCircuit) {
    assert!(test_idx < circuits.len(), "test index out of range");
    let train = circuits
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    (train, &circuits[test_idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_circuits::{generate, Profile};

    fn small_circuit(seed: u64) -> GeneratedCircuit {
        named_circuit("tst", seed)
    }

    fn named_circuit(name: &str, seed: u64) -> GeneratedCircuit {
        generate(&Profile::new(name, 80, 12, 3), seed)
    }

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            k_levels: 3,
            code_width: 8,
            max_seq: 64,
            r_indexes: vec![0.0, 0.5],
            ..Default::default()
        }
    }

    #[test]
    fn bit_sequences_cover_all_ffs() {
        let c = small_circuit(1);
        let seqs = bit_sequences(&c.netlist, 3, 8);
        assert_eq!(seqs.len(), c.netlist.dff_count());
        for (toks, codes) in &seqs {
            assert_eq!(toks.len(), codes.len());
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn cone_classes_partition_bits() {
        let c = small_circuit(1);
        let seqs = bit_sequences(&c.netlist, 3, 8);
        let classes = ConeClasses::build(&seqs);
        assert_eq!(classes.bits(), seqs.len());
        assert!(!classes.is_empty() && classes.len() <= seqs.len());
        // Members partition 0..n and agree with class_of.
        let mut seen = vec![false; seqs.len()];
        for cid in 0..classes.len() as ClassId {
            let m = classes.members(cid);
            assert!(!m.is_empty());
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members sorted");
            assert_eq!(classes.representative(cid), m[0]);
            for &bit in m {
                assert_eq!(classes.class_of(bit), cid);
                assert!(!seen[bit]);
                seen[bit] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Dense first-seen ids: the first bit is always class 0.
        assert_eq!(classes.class_of(0), 0);
        assert!(classes.duplication_rate() >= 1.0);
    }

    #[test]
    fn cone_classes_group_identical_cones_only() {
        let c = small_circuit(2);
        let seqs = bit_sequences(&c.netlist, 3, 8);
        let classes = ConeClasses::build(&seqs);
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                let same = classes.class_of(i) == classes.class_of(j);
                let identical = seqs[i].0 == seqs[j].0
                    && seqs[i].1.iter().zip(&seqs[j].1).all(|(a, b)| {
                        a.iter()
                            .zip(b.iter())
                            .all(|(x, y)| x.to_bits() == y.to_bits())
                    })
                    && seqs[i].1.len() == seqs[j].1.len();
                assert_eq!(same, identical, "bits {i},{j}");
            }
        }
        // Class histograms match the representative's token counts.
        let vocab = crate::token::Vocab::new();
        for cid in 0..classes.len() as ClassId {
            let rep = classes.representative(cid);
            assert_eq!(classes.histogram(cid), vocab.histogram(&seqs[rep].0));
        }
    }

    #[test]
    fn cone_hash_matches_pinned_vectors() {
        // Pinned digests: the hash is a pure function of cone content,
        // so these constants must never change across runs, platforms,
        // or refactors — persisted cache keys depend on it. If this test
        // fails, the on-disk cache format fingerprint must be bumped.
        use rebert_netlist::GateType;
        assert_eq!(cone_hash(&[], &[]), 0x8820_1fb9_60ff_6465);
        let toks = vec![Token::Cls, Token::Gate(GateType::And), Token::X];
        assert_eq!(cone_hash(&toks, &[]), 0x3d5e_eb33_bfdf_e511);
        let codes = vec![vec![0.0f32, 1.0], vec![-0.5, 0.25]];
        assert_eq!(cone_hash(&toks, &codes), 0xe534_af31_497a_d161);
        // -0.0 and 0.0 differ bitwise, so they hash differently.
        let neg = vec![vec![-0.0f32, 1.0], vec![-0.5, 0.25]];
        assert_ne!(cone_hash(&toks, &codes), cone_hash(&toks, &neg));
    }

    #[test]
    fn stable_hasher_matches_fnv1a_reference() {
        // FNV-1a test vectors (64-bit) from the reference description.
        let digest = |bytes: &[u8]| {
            let mut h = StableHasher::new();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x8594_4171_f739_67e8);
        // Length prefixes keep concatenation ambiguity out of cone
        // hashes: ("ab", "c") and ("a", "bc") digests must differ.
        let with_parts = |parts: &[&[u8]]| {
            let mut h = StableHasher::new();
            for p in parts {
                h.write_u64(p.len() as u64);
                h.write(p);
            }
            h.finish()
        };
        assert_ne!(with_parts(&[b"ab", b"c"]), with_parts(&[b"a", b"bc"]));
    }

    #[test]
    fn class_hashes_agree_with_membership() {
        let c = small_circuit(3);
        let seqs = bit_sequences(&c.netlist, 3, 8);
        let classes = ConeClasses::build(&seqs);
        // Every bit's cone hash equals its class hash, and distinct
        // classes carry distinct hashes on real circuits.
        for (bit, (toks, codes)) in seqs.iter().enumerate() {
            assert_eq!(cone_hash(toks, codes), classes.hash(classes.class_of(bit)));
        }
        let mut hashes: Vec<u64> = (0..classes.len() as ClassId)
            .map(|c| classes.hash(c))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), classes.len(), "class hashes are distinct");
    }

    #[test]
    fn cone_classes_empty_input() {
        let classes = ConeClasses::build(&[]);
        assert!(classes.is_empty());
        assert_eq!(classes.len(), 0);
        assert_eq!(classes.bits(), 0);
        assert_eq!(classes.duplication_rate(), 1.0);
    }

    #[test]
    fn all_pairs_is_complete_and_labeled() {
        let c = small_circuit(2);
        let cfg = small_cfg();
        let pairs = all_pairs(&c.netlist, &c.labels, &cfg);
        let n = c.netlist.dff_count();
        assert_eq!(pairs.len(), n * (n - 1) / 2);
        let positives = pairs.iter().filter(|p| p.label).count();
        let expected: usize = c
            .labels
            .words()
            .iter()
            .map(|w| w.len() * (w.len() - 1) / 2)
            .sum();
        assert_eq!(positives, expected);
    }

    #[test]
    fn training_samples_balanced_and_capped() {
        let circuits = [named_circuit("tstA", 3), named_circuit("tstB", 4)];
        let refs: Vec<&GeneratedCircuit> = circuits.iter().collect();
        let mut cfg = small_cfg();
        cfg.max_per_circuit = 50;
        let samples = training_samples(&refs, &cfg, 9);
        assert!(!samples.is_empty());
        // Per-circuit cap respected.
        for c in &circuits {
            let from_c = samples
                .iter()
                .filter(|s| s.circuit == c.netlist.name())
                .count();
            assert!(from_c <= 50, "{} contributed {from_c}", c.netlist.name());
        }
        // Ratio approximately 1 : 1.2 overall.
        let pos = samples.iter().filter(|s| s.label).count();
        let neg = samples.len() - pos;
        assert!(pos > 0 && neg > 0);
        let ratio = neg as f64 / pos as f64;
        assert!((0.9..=1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn training_samples_deterministic() {
        let circuits = [small_circuit(5)];
        let refs: Vec<&GeneratedCircuit> = circuits.iter().collect();
        let cfg = small_cfg();
        let a = training_samples(&refs, &cfg, 11);
        let b = training_samples(&refs, &cfg, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn loo_split_excludes_test() {
        let circuits = vec![small_circuit(6), small_circuit(7), small_circuit(8)];
        let (train, test) = loo_split(&circuits, 1);
        assert_eq!(train.len(), 2);
        assert!(std::ptr::eq(test, &circuits[1]));
        assert!(!train.iter().any(|c| std::ptr::eq(*c, test)));
    }

    #[test]
    fn corruption_augmentation_changes_sequences() {
        let c = small_circuit(9);
        let cfg = small_cfg();
        let clean = all_pairs(&c.netlist, &c.labels, &cfg);
        let (bad, _) = corrupt(&c.netlist, 1.0, 1);
        let noisy = all_pairs(&bad, &c.labels, &cfg);
        assert_eq!(clean.len(), noisy.len());
        // Labels identical, sequences different.
        let same_labels = clean
            .iter()
            .zip(&noisy)
            .all(|(a, b)| a.label == b.label && a.bits == b.bits);
        assert!(same_labels);
        let some_changed = clean
            .iter()
            .zip(&noisy)
            .any(|(a, b)| a.seq.tokens != b.seq.tokens);
        assert!(some_changed, "full corruption should alter token sequences");
    }
}
