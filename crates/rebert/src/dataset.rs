//! Training-data generation (paper §III-A.2).
//!
//! From each benchmark circuit, corrupted variants are produced for
//! R-Index ∈ {0, 0.2, …, 1}; bits are tokenized, all bit pairs are
//! considered, positives/negatives are balanced **1 : 1.2**, and at most
//! **5,000 samples per circuit** enter the training set. Leave-one-out
//! cross-validation trains on every benchmark except the one under test.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_circuits::{corrupt, GeneratedCircuit};
use rebert_netlist::{binarize, BitTree, Netlist};
use serde::{Deserialize, Serialize};

use crate::token::{tokenize_bit, PairSequence, Token};
use crate::tree_embed::tree_codes;

/// A labeled training/evaluation sample: one tokenized bit pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSample {
    /// The joint token sequence and tree codes.
    pub seq: PairSequence,
    /// Whether the two bits belong to the same word.
    pub label: bool,
    /// Source benchmark name.
    pub circuit: String,
    /// The pair's flip-flop indices.
    pub bits: (usize, usize),
}

/// Knobs for dataset generation. The defaults are the paper's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Fan-in back-trace depth `k`.
    pub k_levels: usize,
    /// Tree positional code width.
    pub code_width: usize,
    /// Maximum joint sequence length.
    pub max_seq: usize,
    /// Negative : positive ratio (paper: 1.2).
    pub neg_ratio: f64,
    /// Maximum samples contributed by any one circuit (paper: 5,000).
    pub max_per_circuit: usize,
    /// Corruption levels used for augmentation (paper: 0 to 1 step 0.2).
    pub r_indexes: Vec<f64>,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            k_levels: 6,
            code_width: 32,
            max_seq: 288,
            neg_ratio: 1.2,
            max_per_circuit: 5000,
            r_indexes: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

impl DatasetConfig {
    /// Derives the sequence parameters from a model configuration so the
    /// dataset matches what the model expects.
    pub fn for_model(cfg: &crate::model::ReBertConfig) -> Self {
        DatasetConfig {
            k_levels: cfg.k_levels,
            code_width: cfg.code_width,
            max_seq: cfg.max_seq,
            ..Default::default()
        }
    }
}

/// Tokenizes every bit of a netlist: returns, per flip-flop (in flip-flop
/// order), the pre-order token sequence and aligned tree codes.
///
/// The netlist is binarized internally (§II-A.1).
pub fn bit_sequences(
    nl: &Netlist,
    k_levels: usize,
    code_width: usize,
) -> Vec<(Vec<Token>, Vec<Vec<f32>>)> {
    let (bin, _) = binarize(nl);
    bin.bits()
        .iter()
        .map(|&bit| {
            let tree = BitTree::extract(&bin, bit, k_levels);
            let toks = tokenize_bit(&tree);
            let codes = tree_codes(&tree, code_width);
            (toks, codes)
        })
        .collect()
}

/// Generates **all** labeled pair samples of one netlist variant (no
/// balancing, no caps) — the evaluation-side view of a circuit.
pub fn all_pairs(
    nl: &Netlist,
    labels: &rebert_circuits::WordLabels,
    cfg: &DatasetConfig,
) -> Vec<PairSample> {
    let seqs = bit_sequences(nl, cfg.k_levels, cfg.code_width);
    let assign = labels.assignment();
    let n = seqs.len();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let (ta, ca) = &seqs[i];
            let (tb, cb) = &seqs[j];
            let seq = PairSequence::build(ta, ca, tb, cb, cfg.code_width, cfg.max_seq);
            out.push(PairSample {
                seq,
                label: assign[i] == assign[j],
                circuit: nl.name().to_owned(),
                bits: (i, j),
            });
        }
    }
    out
}

/// Builds the balanced training set from several benchmark circuits,
/// applying R-Index augmentation, the 1 : `neg_ratio` class balance, and
/// the per-circuit cap. Deterministic for a fixed seed.
pub fn training_samples(
    circuits: &[&GeneratedCircuit],
    cfg: &DatasetConfig,
    seed: u64,
) -> Vec<PairSample> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (ci, c) in circuits.iter().enumerate() {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (ri, &r) in cfg.r_indexes.iter().enumerate() {
            let variant = if r == 0.0 {
                c.netlist.clone()
            } else {
                let (v, _) = corrupt(&c.netlist, r, seed ^ ((ci as u64) << 32) ^ (ri as u64));
                v
            };
            for s in all_pairs(&variant, &c.labels, cfg) {
                if s.label {
                    pos.push(s);
                } else {
                    neg.push(s);
                }
            }
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        // Balance 1 : neg_ratio, then cap the circuit's contribution.
        let cap = cfg.max_per_circuit;
        // Solve n_pos + n_neg <= cap with n_neg = ratio * n_pos.
        let max_pos_by_cap = (cap as f64 / (1.0 + cfg.neg_ratio)).floor() as usize;
        let n_pos = pos
            .len()
            .min(max_pos_by_cap)
            .min((neg.len() as f64 / cfg.neg_ratio).floor() as usize)
            .max(usize::from(!pos.is_empty() && !neg.is_empty()));
        let n_neg = ((n_pos as f64 * cfg.neg_ratio).round() as usize).min(neg.len());
        out.extend(pos.into_iter().take(n_pos));
        out.extend(neg.into_iter().take(n_neg));
    }
    out.shuffle(&mut rng);
    out
}

/// Splits `circuits` into the leave-one-out fold for `test_idx`:
/// `(training circuits, test circuit)`.
///
/// # Panics
///
/// Panics if `test_idx` is out of range.
pub fn loo_split(
    circuits: &[GeneratedCircuit],
    test_idx: usize,
) -> (Vec<&GeneratedCircuit>, &GeneratedCircuit) {
    assert!(test_idx < circuits.len(), "test index out of range");
    let train = circuits
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    (train, &circuits[test_idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_circuits::{generate, Profile};

    fn small_circuit(seed: u64) -> GeneratedCircuit {
        named_circuit("tst", seed)
    }

    fn named_circuit(name: &str, seed: u64) -> GeneratedCircuit {
        generate(&Profile::new(name, 80, 12, 3), seed)
    }

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            k_levels: 3,
            code_width: 8,
            max_seq: 64,
            r_indexes: vec![0.0, 0.5],
            ..Default::default()
        }
    }

    #[test]
    fn bit_sequences_cover_all_ffs() {
        let c = small_circuit(1);
        let seqs = bit_sequences(&c.netlist, 3, 8);
        assert_eq!(seqs.len(), c.netlist.dff_count());
        for (toks, codes) in &seqs {
            assert_eq!(toks.len(), codes.len());
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn all_pairs_is_complete_and_labeled() {
        let c = small_circuit(2);
        let cfg = small_cfg();
        let pairs = all_pairs(&c.netlist, &c.labels, &cfg);
        let n = c.netlist.dff_count();
        assert_eq!(pairs.len(), n * (n - 1) / 2);
        let positives = pairs.iter().filter(|p| p.label).count();
        let expected: usize = c
            .labels
            .words()
            .iter()
            .map(|w| w.len() * (w.len() - 1) / 2)
            .sum();
        assert_eq!(positives, expected);
    }

    #[test]
    fn training_samples_balanced_and_capped() {
        let circuits = [named_circuit("tstA", 3), named_circuit("tstB", 4)];
        let refs: Vec<&GeneratedCircuit> = circuits.iter().collect();
        let mut cfg = small_cfg();
        cfg.max_per_circuit = 50;
        let samples = training_samples(&refs, &cfg, 9);
        assert!(!samples.is_empty());
        // Per-circuit cap respected.
        for c in &circuits {
            let from_c = samples
                .iter()
                .filter(|s| s.circuit == c.netlist.name())
                .count();
            assert!(from_c <= 50, "{} contributed {from_c}", c.netlist.name());
        }
        // Ratio approximately 1 : 1.2 overall.
        let pos = samples.iter().filter(|s| s.label).count();
        let neg = samples.len() - pos;
        assert!(pos > 0 && neg > 0);
        let ratio = neg as f64 / pos as f64;
        assert!((0.9..=1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn training_samples_deterministic() {
        let circuits = [small_circuit(5)];
        let refs: Vec<&GeneratedCircuit> = circuits.iter().collect();
        let cfg = small_cfg();
        let a = training_samples(&refs, &cfg, 11);
        let b = training_samples(&refs, &cfg, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn loo_split_excludes_test() {
        let circuits = vec![small_circuit(6), small_circuit(7), small_circuit(8)];
        let (train, test) = loo_split(&circuits, 1);
        assert_eq!(train.len(), 2);
        assert!(std::ptr::eq(test, &circuits[1]));
        assert!(!train.iter().any(|c| std::ptr::eq(*c, test)));
    }

    #[test]
    fn corruption_augmentation_changes_sequences() {
        let c = small_circuit(9);
        let cfg = small_cfg();
        let clean = all_pairs(&c.netlist, &c.labels, &cfg);
        let (bad, _) = corrupt(&c.netlist, 1.0, 1);
        let noisy = all_pairs(&bad, &c.labels, &cfg);
        assert_eq!(clean.len(), noisy.len());
        // Labels identical, sequences different.
        let same_labels = clean
            .iter()
            .zip(&noisy)
            .all(|(a, b)| a.label == b.label && a.bits == b.bits);
        assert!(same_labels);
        let some_changed = clean
            .iter()
            .zip(&noisy)
            .any(|(a, b)| a.seq.tokens != b.seq.tokens);
        assert!(some_changed, "full corruption should alter token sequences");
    }
}
