//! Cross-request cone-score cache: a content-addressed, byte-budgeted
//! sharded LRU shared by every request of a daemon (or a CLI run), with
//! warm-restart persistence beside the checkpoint.
//!
//! The pipeline's quadratic phase consults the cache *before* the model:
//! each surviving ordered class pair is keyed by
//! `(checkpoint fingerprint, backend, cone hash of the first-presented
//! cone, cone hash of the second)` — see [`ScoreCache::pair_key`] — and
//! only cache misses reach `ReBertModel::score_pairs`. Because cone
//! hashes ([`crate::cone_hash`]) identify *byte-identical* model input,
//! the fingerprint pins the weights, and the backend tag separates
//! bitwise-exact from tolerance-equivalent engines, a cache hit returns
//! exactly the score a cold run would compute: cached recovery is
//! bitwise-identical to cold recovery.
//!
//! On resubmit of an edited design this is automatic delta recovery —
//! unchanged cone pairs are pure lookups, and only pairs touching edited
//! cones are rescored.
//!
//! Concurrency: entries are spread over `N` mutex-guarded shards
//! selected by the high half of the key (its own independent hash lane),
//! so concurrent requests rarely contend on a lock. Each shard evicts
//! its least-recently-used entries once its share of the byte budget is
//! exceeded. Persistence is a length-prefixed binary file (header:
//! magic, format version, fingerprint) written atomically via
//! tmp+rename; stale or corrupt files are ignored on load, never fatal.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use rebert_nn::Backend;
use rebert_obs as obs;
use rebert_sync::Mutex;

use crate::dataset::StableHasher;

/// On-disk magic of a persisted score cache.
const MAGIC: [u8; 4] = *b"RBSC";
/// On-disk format version; files with any other version are ignored.
const FORMAT_VERSION: u32 = 1;
/// Bytes of one persisted entry: a 16-byte key plus a 4-byte score.
const PERSISTED_ENTRY_BYTES: usize = 20;
/// Header bytes: magic + version + fingerprint + entry count.
const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// Header-only summary of a persisted cache file, as read by
/// [`ScoreCache::peek_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheFileInfo {
    /// Checkpoint fingerprint the file was written for.
    pub fingerprint: u64,
    /// Entries persisted in the file.
    pub entries: u64,
    /// Total file size in bytes (header + entries).
    pub bytes: u64,
}

/// One shard: a plain map plus a monotone recency tick driving LRU
/// eviction. Keys are already uniform 128-bit content hashes, so the
/// shard size in entries is an exact proxy for its resident bytes.
#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    tick: u64,
}

struct Entry {
    score: f32,
    tick: u64,
}

/// A sharded-lock, byte-budgeted LRU cache of class-pair scores, shared
/// across requests via `Arc` (see `RecoverySession::with_cache`).
///
/// # Examples
///
/// ```
/// use rebert::ScoreCache;
///
/// let cache = ScoreCache::new(1 << 20, 0xfeed);
/// let key = ScoreCache::pair_key(0xfeed, rebert::Backend::F32Scalar, 1, 2);
/// assert_eq!(cache.get(key), None);
/// cache.insert(key, 0.75);
/// assert_eq!(cache.get(key), Some(0.75));
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
pub struct ScoreCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget of each shard (total budget / shard count).
    shard_budget: usize,
    budget: usize,
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ScoreCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreCache")
            .field("shards", &self.shards.len())
            .field("budget", &self.budget)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("entries", &self.len())
            .finish()
    }
}

impl ScoreCache {
    /// Approximate resident bytes of one cached entry (16-byte key,
    /// 4-byte score, 8-byte recency tick, plus hash-table overhead).
    /// The byte budget is accounted in these units, so a budget of
    /// exactly `ENTRY_BYTES` is a true 1-entry LRU.
    pub const ENTRY_BYTES: usize = 48;

    /// Shard count for budgets large enough to make lock spreading
    /// worthwhile; tiny budgets collapse to a single shard so the whole
    /// cache is one exact LRU.
    const SHARDS: usize = 16;

    /// Creates an empty cache holding at most `budget_bytes` worth of
    /// entries ([`ScoreCache::ENTRY_BYTES`] each) for the model whose
    /// checkpoint fingerprint is `fingerprint`.
    pub fn new(budget_bytes: usize, fingerprint: u64) -> Self {
        let n_shards = if budget_bytes >= 4 * Self::SHARDS * Self::ENTRY_BYTES {
            Self::SHARDS
        } else {
            1
        };
        ScoreCache {
            // Every shard shares one lock-order site: the order graph
            // treats "some cache shard" as a single node, so nesting two
            // shards on one thread is reported as a same-site cycle.
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::default(), "rebert.cache.shard"))
                .collect(),
            shard_budget: budget_bytes / n_shards,
            budget: budget_bytes,
            fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Creates a cache and pre-fills it from a file previously written
    /// by [`ScoreCache::flush`]. A missing, truncated, corrupt, or
    /// stale-fingerprint file is ignored (the cache starts cold) —
    /// loading never fails and never panics on untrusted bytes.
    pub fn load_or_new(path: &Path, budget_bytes: usize, fingerprint: u64) -> Self {
        let cache = ScoreCache::new(budget_bytes, fingerprint);
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(_) => return cache, // no persisted cache: cold start
        };
        match decode_entries(&bytes, fingerprint) {
            Ok(entries) => {
                for (key, score) in entries {
                    cache.insert(key, score);
                }
                obs::event_with(
                    obs::Level::Info,
                    "cache",
                    "load",
                    vec![("entries", cache.len().into())],
                );
            }
            Err(reason) => {
                obs::event_with(
                    obs::Level::Warn,
                    "cache",
                    "load_ignored",
                    vec![("reason", reason.into())],
                );
            }
        }
        cache
    }

    /// Reads just the header of a persisted cache file: the checkpoint
    /// fingerprint it was written for and how many entries it holds.
    /// Nothing is loaded into memory beyond the 24-byte header, so this
    /// is safe to call on arbitrarily large files (`rebert inspect`
    /// uses it to report on a checkpoint's sibling cache). Returns
    /// `None` for a missing, truncated, or non-RBSC file.
    pub fn peek_file(path: &Path) -> Option<CacheFileInfo> {
        use std::io::Read as _;
        let mut file = std::fs::File::open(path).ok()?;
        let total_bytes = file.metadata().ok()?.len();
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header).ok()?;
        if header[0..4] != MAGIC {
            return None;
        }
        if u32::from_le_bytes(header[4..8].try_into().expect("slice length checked"))
            != FORMAT_VERSION
        {
            return None;
        }
        let fingerprint = u64::from_le_bytes(header[8..16].try_into().expect("slice len"));
        let entries = u64::from_le_bytes(header[16..24].try_into().expect("slice len"));
        let expected = (HEADER_BYTES as u64)
            .checked_add(entries.checked_mul(PERSISTED_ENTRY_BYTES as u64)?)?;
        if total_bytes != expected {
            return None; // truncated or trailing garbage
        }
        Some(CacheFileInfo {
            fingerprint,
            entries,
            bytes: total_bytes,
        })
    }

    /// Derives the content-addressed key of one **ordered** class pair:
    /// `first`/`second` are the [`crate::cone_hash`]es of the two cones
    /// in the orientation the model would see them, so `(a, b)` and
    /// `(b, a)` key distinct entries. The checkpoint fingerprint pins
    /// the weights and the backend tag keeps bitwise-exact scores from
    /// ever being served to a tolerance-equivalent engine (or across
    /// hosts that resolve SIMD differently) — soundness never depends on
    /// cross-backend score agreement.
    ///
    /// The 128-bit key is two independently seeded FNV-1a lanes over the
    /// same fields; the high lane doubles as the shard selector.
    pub fn pair_key(fingerprint: u64, backend: Backend, first: u64, second: u64) -> u128 {
        let mut lo = StableHasher::new();
        lo.write_u64(fingerprint);
        lo.write(backend.label().as_bytes());
        lo.write_u64(first);
        lo.write_u64(second);
        let lo = lo.finish();
        let mut hi = StableHasher::with_seed(0x9e37_79b9_7f4a_7c15);
        hi.write_u64(second);
        hi.write_u64(fingerprint);
        hi.write(backend.label().as_bytes());
        hi.write_u64(first);
        let hi = hi.finish();
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        let prefix = (key >> 64) as u64;
        &self.shards[(prefix % self.shards.len() as u64) as usize]
    }

    /// Looks up a score, bumping the entry's recency and the hit/miss
    /// counters.
    pub fn get(&self, key: u128) -> Option<f32> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.score)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a score, then evicts the shard's
    /// least-recently-used entries until it is back under its share of
    /// the byte budget. A budget too small for even one entry turns the
    /// cache into a no-op.
    pub fn insert(&self, key: u128, score: f32) {
        if self.shard_budget < Self::ENTRY_BYTES {
            return;
        }
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(key, Entry { score, tick });
        while shard.map.len() * Self::ENTRY_BYTES > self.shard_budget {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("an over-budget shard is non-empty");
            shard.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Atomically persists the cache next to the checkpoint: the
    /// snapshot is written to `<path>.tmp` and renamed over `path`, so a
    /// crash mid-flush leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if writing or renaming fails.
    pub fn flush(&self, path: &Path) -> std::io::Result<()> {
        let mut sp = obs::span(obs::Level::Info, "cache", "flush");
        let mut entries: Vec<(u128, f32)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock();
            entries.extend(shard.map.iter().map(|(&k, e)| (k, e.score)));
        }
        let mut buf = Vec::with_capacity(HEADER_BYTES + entries.len() * PERSISTED_ENTRY_BYTES);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (k, s) in &entries {
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&s.to_le_bytes());
        }
        sp.add_field("entries", entries.len());
        sp.add_field("bytes", buf.len());
        let tmp = path.with_extension("bin.tmp");
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, path)?;
        sp.end();
        Ok(())
    }

    /// The checkpoint fingerprint this cache was created for (written
    /// into the persistence header).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (`len() * ENTRY_BYTES`).
    pub fn bytes(&self) -> usize {
        self.len() * Self::ENTRY_BYTES
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Parses a persisted cache body, validating magic, version,
/// fingerprint, and exact length before trusting any entry.
fn decode_entries(bytes: &[u8], fingerprint: u64) -> Result<Vec<(u128, f32)>, &'static str> {
    if bytes.len() < HEADER_BYTES {
        return Err("truncated header");
    }
    if bytes[0..4] != MAGIC {
        return Err("bad magic");
    }
    let le8 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("slice length checked"));
    if u32::from_le_bytes(bytes[4..8].try_into().expect("slice length checked")) != FORMAT_VERSION {
        return Err("unknown format version");
    }
    if le8(&bytes[8..16]) != fingerprint {
        return Err("stale fingerprint");
    }
    let count = le8(&bytes[16..24]) as usize;
    let body = &bytes[HEADER_BYTES..];
    if count
        .checked_mul(PERSISTED_ENTRY_BYTES)
        .is_none_or(|len| len != body.len())
    {
        return Err("truncated body");
    }
    Ok(body
        .chunks_exact(PERSISTED_ENTRY_BYTES)
        .map(|chunk| {
            let key = u128::from_le_bytes(chunk[0..16].try_into().expect("slice length checked"));
            let score = f32::from_le_bytes(chunk[16..20].try_into().expect("slice length checked"));
            (key, score)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rebert_cache_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = ScoreCache::new(1 << 16, 7);
        let k = ScoreCache::pair_key(7, Backend::F32Scalar, 10, 20);
        assert_eq!(cache.get(k), None);
        cache.insert(k, 0.5);
        assert_eq!(cache.get(k), Some(0.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), ScoreCache::ENTRY_BYTES);
        // Re-insert refreshes, never duplicates.
        cache.insert(k, 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_separate_orientation_backend_and_fingerprint() {
        let base = ScoreCache::pair_key(1, Backend::F32Scalar, 10, 20);
        assert_ne!(base, ScoreCache::pair_key(1, Backend::F32Scalar, 20, 10));
        assert_ne!(base, ScoreCache::pair_key(1, Backend::Int8, 10, 20));
        assert_ne!(base, ScoreCache::pair_key(2, Backend::F32Scalar, 10, 20));
        // Deterministic across calls (and, being FNV over fixed bytes,
        // across processes — the property persistence relies on).
        assert_eq!(base, ScoreCache::pair_key(1, Backend::F32Scalar, 10, 20));
    }

    #[test]
    fn single_entry_budget_thrashes_but_works() {
        let cache = ScoreCache::new(ScoreCache::ENTRY_BYTES, 3);
        let k1 = ScoreCache::pair_key(3, Backend::F32Scalar, 1, 2);
        let k2 = ScoreCache::pair_key(3, Backend::F32Scalar, 3, 4);
        cache.insert(k1, 0.1);
        assert_eq!(cache.get(k1), Some(0.1));
        cache.insert(k2, 0.2);
        // k1 was evicted to stay within the 1-entry budget.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(k1), None);
        assert_eq!(cache.get(k2), Some(0.2));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn panicked_holder_does_not_wedge_the_shard() {
        // A request thread that dies while holding a shard lock must
        // not poison it for everyone else: the `rebert_sync` wrapper
        // recovers the poisoned guard, so the daemon's other request
        // threads keep hitting the cache instead of unwinding on a
        // `PoisonError` forever after.
        let cache = ScoreCache::new(ScoreCache::ENTRY_BYTES, 21);
        assert_eq!(cache.shards.len(), 1, "tiny budgets stay single-shard");
        let k = ScoreCache::pair_key(21, Backend::F32Scalar, 1, 2);
        cache.insert(k, 0.25);
        let holder = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.shards[0].lock();
                panic!("simulated request-thread crash while holding the shard");
            })
            .join()
        });
        assert!(holder.is_err(), "the holder must have panicked");
        // The shard is usable again: reads and writes both succeed.
        assert_eq!(cache.get(k), Some(0.25));
        cache.insert(k, 0.75);
        assert_eq!(cache.get(k), Some(0.75));
    }

    #[test]
    fn zero_budget_is_a_noop_cache() {
        let cache = ScoreCache::new(0, 3);
        let k = ScoreCache::pair_key(3, Backend::F32Scalar, 1, 2);
        cache.insert(k, 0.9);
        assert_eq!(cache.get(k), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Budget for exactly two entries in one shard.
        let cache = ScoreCache::new(2 * ScoreCache::ENTRY_BYTES, 5);
        assert_eq!(cache.shards.len(), 1, "tiny budgets stay single-shard");
        let ks: Vec<u128> = (0..3)
            .map(|i| ScoreCache::pair_key(5, Backend::F32Scalar, i, i + 1))
            .collect();
        cache.insert(ks[0], 0.0);
        cache.insert(ks[1], 0.1);
        // Touch ks[0] so ks[1] becomes the LRU victim.
        assert_eq!(cache.get(ks[0]), Some(0.0));
        cache.insert(ks[2], 0.2);
        assert_eq!(cache.get(ks[1]), None, "LRU entry evicted");
        assert_eq!(cache.get(ks[0]), Some(0.0));
        assert_eq!(cache.get(ks[2]), Some(0.2));
    }

    #[test]
    fn large_budgets_shard_and_respect_total_budget() {
        let budget = 64 * ScoreCache::ENTRY_BYTES * ScoreCache::SHARDS;
        let cache = ScoreCache::new(budget, 9);
        assert_eq!(cache.shards.len(), ScoreCache::SHARDS);
        for i in 0..10_000u64 {
            cache.insert(ScoreCache::pair_key(9, Backend::F32Scalar, i, i), 0.5);
        }
        assert!(cache.bytes() <= budget, "never exceeds the byte budget");
        assert!(cache.evictions() > 0);
        assert_eq!(
            cache.evictions() + cache.len() as u64,
            10_000,
            "every insert is either resident or was evicted"
        );
    }

    #[test]
    fn flush_and_load_round_trip() {
        let path = tmp("roundtrip.bin");
        let cache = ScoreCache::new(1 << 16, 11);
        let keys: Vec<u128> = (0..100u64)
            .map(|i| ScoreCache::pair_key(11, Backend::F32Scalar, i, i + 1))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, i as f32 / 100.0);
        }
        cache.flush(&path).unwrap();

        let loaded = ScoreCache::load_or_new(&path, 1 << 16, 11);
        assert_eq!(loaded.len(), 100);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                loaded.get(k).map(f32::to_bits),
                Some((i as f32 / 100.0).to_bits()),
                "entry {i} survives bitwise"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_ignores_poisoned_truncated_and_stale_files() {
        let assert_cold = |name: &str, bytes: &[u8]| {
            let path = tmp(name);
            std::fs::write(&path, bytes).unwrap();
            let cache = ScoreCache::load_or_new(&path, 1 << 16, 11);
            assert!(cache.is_empty(), "{name} must load as a cold cache");
            std::fs::remove_file(path).ok();
        };
        // Garbage bytes, empty file, bad magic.
        assert_cold("poisoned.bin", b"not a cache file at all............");
        assert_cold("empty.bin", b"");
        assert_cold("badmagic.bin", &[0u8; 64]);

        // A real file, truncated mid-entry.
        let path = tmp("source.bin");
        let cache = ScoreCache::new(1 << 16, 11);
        for i in 0..10u64 {
            cache.insert(ScoreCache::pair_key(11, Backend::F32Scalar, i, i), 0.5);
        }
        cache.flush(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        assert_cold("truncated.bin", &full[..full.len() - 7]);

        // Wrong format version.
        let mut wrong_version = full.clone();
        wrong_version[4] = 0xFF;
        assert_cold("wrongversion.bin", &wrong_version);

        // Stale fingerprint: valid file for a *different* model.
        let other = tmp("otherfp.bin");
        std::fs::write(&other, &full).unwrap();
        let stale = ScoreCache::load_or_new(&other, 1 << 16, 12);
        assert!(stale.is_empty(), "stale fingerprint ignored");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(other).ok();
    }

    #[test]
    fn peek_reports_header_without_loading() {
        let path = tmp("peek.bin");
        let cache = ScoreCache::new(1 << 16, 0xABCD);
        for i in 0..7u64 {
            cache.insert(ScoreCache::pair_key(0xABCD, Backend::F32Scalar, i, i), 0.5);
        }
        cache.flush(&path).unwrap();
        let info = ScoreCache::peek_file(&path).expect("valid file peeks");
        assert_eq!(info.fingerprint, 0xABCD);
        assert_eq!(info.entries, 7);
        assert_eq!(info.bytes, std::fs::metadata(&path).unwrap().len());

        // Missing, garbage, and truncated files peek as None.
        assert!(ScoreCache::peek_file(&tmp("peek-missing.bin")).is_none());
        let garbage = tmp("peek-garbage.bin");
        std::fs::write(&garbage, b"not a cache").unwrap();
        assert!(ScoreCache::peek_file(&garbage).is_none());
        let truncated = tmp("peek-truncated.bin");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&truncated, &full[..full.len() - 3]).unwrap();
        assert!(ScoreCache::peek_file(&truncated).is_none());
        for p in [path, garbage, truncated] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn load_respects_budget() {
        let path = tmp("overbudget.bin");
        let cache = ScoreCache::new(1 << 16, 13);
        for i in 0..50u64 {
            cache.insert(ScoreCache::pair_key(13, Backend::F32Scalar, i, i), 0.5);
        }
        cache.flush(&path).unwrap();
        // Reload into a cache that only holds 4 entries.
        let small = ScoreCache::load_or_new(&path, 4 * ScoreCache::ENTRY_BYTES, 13);
        assert!(small.len() <= 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_use_is_consistent() {
        use std::sync::Arc;
        let cache = Arc::new(ScoreCache::new(1 << 20, 21));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = ScoreCache::pair_key(21, Backend::F32Scalar, i, t);
                        cache.insert(k, (t * 1000 + i) as f32);
                        assert_eq!(cache.get(k), Some((t * 1000 + i) as f32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 2000);
        assert_eq!(cache.hits(), 2000);
    }
}

/// Exhaustive interleaving checks of the sharded-LRU insert/lookup/evict
/// protocol, run with `RUSTFLAGS="--cfg loom" cargo test -p rebert --lib
/// loom` alongside the batched-cursor models in `par.rs`.
///
/// The real `ScoreCache` uses `std` mutexes and atomics, which loom
/// cannot instrument, so these models restate the per-shard protocol —
/// lock, tick, insert, evict-while-over-budget, unlock — on loom
/// primitives and assert the invariants callers rely on: a shard never
/// exceeds its entry budget, a lookup only ever observes a value that
/// was inserted under that key (scores are never torn or mixed between
/// keys), and the eviction counter exactly accounts for entries that
/// left the map.
#[cfg(all(test, loom))]
mod loom_models {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::{Arc, Mutex};
    use loom::thread;

    /// Restated shard: (key, score, tick) triples behind one lock.
    type Shard = Mutex<Vec<(u64, f32, u64)>>;

    const CAP: usize = 1;

    fn insert(shard: &Shard, evictions: &AtomicU64, key: u64, score: f32) {
        let mut s = shard.lock().unwrap();
        let tick = s.iter().map(|&(_, _, t)| t).max().unwrap_or(0) + 1;
        s.retain(|&(k, _, _)| k != key);
        s.push((key, score, tick));
        while s.len() > CAP {
            let oldest = s
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, _, t))| t)
                .map(|(i, _)| i)
                .expect("over-budget shard is non-empty");
            s.remove(oldest);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn get(shard: &Shard, key: u64) -> Option<f32> {
        let s = shard.lock().unwrap();
        s.iter().find(|&&(k, _, _)| k == key).map(|&(_, v, _)| v)
    }

    #[test]
    fn loom_shard_never_exceeds_budget_and_accounts_evictions() {
        loom::model(|| {
            let shard: Arc<Shard> = Arc::new(Mutex::new(Vec::new()));
            let evictions = Arc::new(AtomicU64::new(0));
            let writers: Vec<_> = (0..2u64)
                .map(|t| {
                    let shard = Arc::clone(&shard);
                    let evictions = Arc::clone(&evictions);
                    thread::spawn(move || insert(&shard, &evictions, t, t as f32))
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            let len = shard.lock().unwrap().len();
            assert!(len <= CAP, "budget respected under every interleaving");
            assert_eq!(
                evictions.load(Ordering::Relaxed) + len as u64,
                2,
                "every insert is resident or evicted, never both or neither"
            );
        });
    }

    #[test]
    fn loom_lookup_only_observes_inserted_scores() {
        loom::model(|| {
            let shard: Arc<Shard> = Arc::new(Mutex::new(Vec::new()));
            let evictions = Arc::new(AtomicU64::new(0));
            let writer = {
                let shard = Arc::clone(&shard);
                let evictions = Arc::clone(&evictions);
                thread::spawn(move || insert(&shard, &evictions, 7, 0.75))
            };
            let reader = {
                let shard = Arc::clone(&shard);
                thread::spawn(move || get(&shard, 7))
            };
            let seen = reader.join().unwrap();
            writer.join().unwrap();
            // Concurrent lookup: either a clean miss or exactly the
            // inserted value — never a torn or foreign score.
            assert!(seen.is_none() || seen == Some(0.75));
            assert_eq!(get(&shard, 7), Some(0.75), "insert is durable");
        });
    }
}
