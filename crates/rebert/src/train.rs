//! Training loop for the pairwise classifier.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_nn::{Adam, Forward, GradAccumulator};
use rebert_obs as obs;
use rebert_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::dataset::PairSample;
use crate::model::ReBertModel;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per optimizer step (gradients are averaged).
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Linear learning-rate warmup over this fraction of total steps
    /// (post-norm BERT is unstable without it); `0.0` disables warmup.
    pub warmup_frac: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            lr: 3e-4,
            batch_size: 16,
            seed: 0,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean BCE loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Number of training samples used.
    pub samples: usize,
}

/// Trains `model` in place on `samples`.
///
/// Runs one forward/backward per sample (sequences have heterogeneous
/// lengths), accumulating gradients over `batch_size` samples per Adam
/// step. Returns per-epoch telemetry.
///
/// # Examples
///
/// ```no_run
/// use rebert::{train, ReBertConfig, ReBertModel, TrainConfig};
///
/// let mut model = ReBertModel::new(ReBertConfig::small(), 0);
/// let samples = Vec::new(); // see rebert::training_samples
/// let report = train(&mut model, &samples, &TrainConfig::default());
/// println!("final accuracy {:.3}", report.final_accuracy);
/// ```
pub fn train(model: &mut ReBertModel, samples: &[PairSample], cfg: &TrainConfig) -> TrainReport {
    let mut root = obs::span_with(
        obs::Level::Info,
        "train",
        "train",
        vec![
            ("samples", samples.len().into()),
            ("epochs", cfg.epochs.into()),
        ],
    );
    let mut rng = ChaCha20Rng::seed_from_u64(cfg.seed);
    let mut adam = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    let steps_per_epoch = samples.len().div_ceil(cfg.batch_size.max(1));
    let total_steps = (steps_per_epoch * cfg.epochs).max(1);
    let warmup_steps = ((total_steps as f32) * cfg.warmup_frac).ceil() as usize;
    let mut step = 0usize;

    for epoch in 0..cfg.epochs {
        let mut sp_epoch = obs::span_with(
            obs::Level::Info,
            "train",
            "epoch",
            vec![("epoch", epoch.into())],
        );
        let epoch_start = std::time::Instant::now();
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            step += 1;
            adam.lr = if warmup_steps > 0 && step <= warmup_steps {
                cfg.lr * step as f32 / warmup_steps as f32
            } else {
                cfg.lr
            };
            let mut acc = GradAccumulator::new();
            let mut step_loss = 0.0f64;
            for &si in chunk {
                let sample = &samples[si];
                let target = if sample.label { 1.0 } else { 0.0 };
                let mut fwd = Forward::new(model.store());
                let z = model.logit_on(&mut fwd, &sample.seq);
                let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[target]]));
                step_loss += fwd.tape.value(loss).data()[0] as f64;
                let grads = fwd.tape.backward(loss);
                acc.add(fwd.param_grads(&grads));
            }
            total_loss += step_loss;
            let mean = acc.mean();
            adam.step(model.store_mut(), &mean);
            obs::event_with(
                obs::Level::Trace,
                "train",
                "step",
                vec![
                    ("step", step.into()),
                    ("loss", (step_loss / chunk.len().max(1) as f64).into()),
                    ("lr", f64::from(adam.lr).into()),
                ],
            );
        }
        let epoch_loss = if samples.is_empty() {
            0.0
        } else {
            (total_loss / samples.len() as f64) as f32
        };
        epoch_losses.push(epoch_loss);
        let secs = epoch_start.elapsed().as_secs_f64();
        sp_epoch.add_field("loss", epoch_loss);
        sp_epoch.add_field(
            "samples_per_sec",
            samples.len() as f64 / secs.max(f64::MIN_POSITIVE),
        );
        sp_epoch.end();
    }

    let final_accuracy = accuracy(model, samples);
    root.add_field("final_accuracy", final_accuracy);
    root.end();
    TrainReport {
        epoch_losses,
        final_accuracy,
        samples: samples.len(),
    }
}

/// Fraction of samples classified correctly at threshold 0.5.
///
/// Evaluates on the tape-free batched engine
/// ([`ReBertModel::score_pair_refs`]) across all available cores; the
/// scores are bit-identical to serial [`ReBertModel::predict`].
pub fn accuracy(model: &ReBertModel, samples: &[PairSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let seqs: Vec<&crate::token::PairSequence> = samples.iter().map(|s| &s.seq).collect();
    let scores = model.score_pair_refs(&seqs, 0);
    let correct = samples
        .iter()
        .zip(&scores)
        .filter(|(s, &p)| (p >= 0.5) == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use crate::token::{PairSequence, Token};
    use rebert_netlist::GateType;

    /// A synthetic, trivially separable task: positives are AND-dominated
    /// pairs, negatives are OR-dominated pairs.
    fn toy_samples(cfg: &ReBertConfig, n_each: usize) -> Vec<PairSample> {
        let mk = |g: GateType, label: bool, idx: usize| {
            let toks = vec![Token::Gate(g), Token::X, Token::X];
            let codes = vec![vec![0.0; cfg.code_width]; 3];
            PairSample {
                seq: PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq),
                label,
                circuit: "toy".into(),
                bits: (idx, idx + 1),
            }
        };
        let mut v = Vec::new();
        for i in 0..n_each {
            v.push(mk(GateType::And, true, i));
            v.push(mk(GateType::Or, false, i));
        }
        v
    }

    #[test]
    fn learns_separable_toy_task() {
        let cfg = ReBertConfig::tiny();
        let mut model = ReBertModel::new(cfg.clone(), 1);
        let samples = toy_samples(&cfg, 8);
        let tcfg = TrainConfig {
            epochs: 12,
            lr: 2e-3,
            batch_size: 4,
            seed: 0,
            weight_decay: 0.0,
            warmup_frac: 0.1,
        };
        let report = train(&mut model, &samples, &tcfg);
        assert_eq!(report.epoch_losses.len(), 12);
        assert!(
            report.final_accuracy > 0.9,
            "accuracy {} too low (losses {:?})",
            report.final_accuracy,
            report.epoch_losses
        );
        // Loss should broadly decrease.
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn training_emits_epoch_spans_with_losses() {
        use rebert_obs::{Kind, Level, RingSink, Value};
        use std::sync::Arc;

        let cfg = ReBertConfig::tiny();
        let mut model = ReBertModel::new(cfg.clone(), 2);
        // 10 samples is unique to this test (the gate is process-global,
        // so records from concurrently running tests share the ring).
        let samples = toy_samples(&cfg, 5);
        let tcfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };

        let ring = Arc::new(RingSink::new(16_384, Level::Trace));
        let sink = rebert_obs::install(ring.clone());
        let report = train(&mut model, &samples, &tcfg);
        let records = ring.drain();
        rebert_obs::uninstall(sink);

        let root = records
            .iter()
            .find(|r| {
                r.kind == Kind::Begin
                    && r.name == "train"
                    && r.fields.contains(&("samples", Value::U64(10)))
            })
            .expect("root train span");
        let epochs: Vec<_> = records
            .iter()
            .filter(|r| r.kind == Kind::Begin && r.name == "epoch" && r.parent == root.span)
            .collect();
        assert_eq!(epochs.len(), 2, "one span per epoch");
        for (i, e) in epochs.iter().enumerate() {
            let end = records
                .iter()
                .find(|r| r.kind == Kind::End && r.span == e.span)
                .expect("epoch span closes");
            assert!(
                end.fields
                    .contains(&("loss", Value::F64(f64::from(report.epoch_losses[i])))),
                "epoch {i} End must carry the reported loss; got {:?}",
                end.fields
            );
            assert!(
                end.fields.iter().any(|(k, _)| *k == "samples_per_sec"),
                "epoch {i} End must carry throughput"
            );
        }
        // Per-step loss events flow at trace level under the epochs.
        let steps = records
            .iter()
            .filter(|r| r.name == "step" && epochs.iter().any(|e| e.span == r.span))
            .count();
        assert_eq!(
            steps,
            2 * 10usize.div_ceil(tcfg.batch_size),
            "one step event per optimizer step"
        );
    }

    #[test]
    fn empty_training_set_is_safe() {
        let cfg = ReBertConfig::tiny();
        let mut model = ReBertModel::new(cfg, 1);
        let report = train(&mut model, &[], &TrainConfig::default());
        assert_eq!(report.samples, 0);
        assert_eq!(report.final_accuracy, 0.0);
    }

    #[test]
    fn accuracy_bounds() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 1);
        let samples = toy_samples(&cfg, 3);
        let acc = accuracy(&model, &samples);
        assert!((0.0..=1.0).contains(&acc));
    }
}
