//! Score matrix and word generation (paper §II-D).
//!
//! Pairwise predictions fill a symmetric [`ScoreMatrix`] (filtered pairs
//! hold −1). The grouping threshold is **⅓ · max(score matrix)** — the
//! paper's adaptive rule — and all bits connected by above-threshold edges
//! form one word (graph connected components).

use serde::{Deserialize, Serialize};

/// Sentinel score for pairs discarded by the Jaccard filter.
pub const FILTERED_SCORE: f32 = -1.0;

/// A symmetric matrix of pairwise same-word scores over `n` bits.
///
/// # Examples
///
/// ```
/// use rebert::ScoreMatrix;
///
/// let mut m = ScoreMatrix::new(3);
/// m.set(0, 1, 0.9);
/// assert_eq!(m.get(1, 0), 0.9);                    // symmetric
/// assert_eq!(m.get(0, 2), -1.0);                    // default: filtered
/// assert!((m.threshold() - 0.3).abs() < 1e-6);      // max/3 rule
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreMatrix {
    n: usize,
    // Upper triangle, row-major, excluding the diagonal.
    scores: Vec<f32>,
}

impl ScoreMatrix {
    /// Creates an `n × n` matrix with every pair marked filtered.
    pub fn new(n: usize) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        ScoreMatrix {
            n,
            scores: vec![FILTERED_SCORE; len],
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Offset of row a in the packed upper triangle.
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Sets the score of pair `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, score: f32) {
        assert!(i != j, "diagonal has no score");
        assert!(i < self.n && j < self.n, "index out of bounds");
        let idx = self.idx(i, j);
        self.scores[idx] = score;
    }

    /// Reads the score of pair `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i != j, "diagonal has no score");
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.scores[self.idx(i, j)]
    }

    /// The maximum score in the matrix (−1 if everything is filtered).
    pub fn max_score(&self) -> f32 {
        self.scores.iter().copied().fold(FILTERED_SCORE, f32::max)
    }

    /// The paper's adaptive threshold: `max(score matrix) / 3`.
    pub fn threshold(&self) -> f32 {
        (self.max_score() / 3.0).max(0.0)
    }

    /// Fraction of pairs that were filtered.
    pub fn filtered_fraction(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        let filtered = self.scores.iter().filter(|&&s| s == FILTERED_SCORE).count();
        filtered as f64 / self.scores.len() as f64
    }
}

/// Groups bits into words: every pair scoring strictly above `threshold`
/// gets an edge, and connected components become words (singletons stay
/// single-bit words).
///
/// Returns the word assignment as a vector `out[i] = word id`, with dense
/// ids `0..#words`.
pub fn group_bits(matrix: &ScoreMatrix, threshold: f32) -> Vec<usize> {
    let n = matrix.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if matrix.get(i, j) > threshold {
                uf.union(i, j);
            }
        }
    }
    uf.dense_assignment()
}

/// Groups with the paper's adaptive `max/3` threshold.
pub fn group_bits_adaptive(matrix: &ScoreMatrix) -> Vec<usize> {
    group_bits(matrix, matrix.threshold())
}

/// A minimal union-find (disjoint set) over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }

    /// Flattens to dense component ids `0..#components` in first-seen
    /// order.
    pub fn dense_assignment(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = map.len();
            let id = *map.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_storage() {
        let mut m = ScoreMatrix::new(4);
        m.set(2, 0, 0.75);
        assert_eq!(m.get(0, 2), 0.75);
        assert_eq!(m.get(2, 0), 0.75);
        assert_eq!(m.get(1, 3), FILTERED_SCORE);
    }

    #[test]
    fn threshold_is_third_of_max() {
        let mut m = ScoreMatrix::new(3);
        m.set(0, 1, 0.9);
        m.set(1, 2, 0.3);
        assert!((m.threshold() - 0.3).abs() < 1e-6);
        // All-filtered matrix: threshold clamps to 0 (no negative edges).
        let empty = ScoreMatrix::new(3);
        assert_eq!(empty.threshold(), 0.0);
    }

    #[test]
    fn grouping_by_connected_components() {
        let mut m = ScoreMatrix::new(5);
        m.set(0, 1, 0.9); // above
        m.set(1, 2, 0.8); // above — transitively joins 0-1-2
        m.set(3, 4, 0.1); // below
        let assign = group_bits(&m, 0.5);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[1], assign[2]);
        assert_ne!(assign[0], assign[3]);
        assert_ne!(assign[3], assign[4], "3 and 4 stay singletons");
    }

    #[test]
    fn adaptive_grouping_uses_max_over_three() {
        let mut m = ScoreMatrix::new(3);
        m.set(0, 1, 0.9); // threshold becomes 0.3
        m.set(1, 2, 0.31);
        m.set(0, 2, 0.29);
        let assign = group_bits_adaptive(&m);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[1], assign[2], "0.31 > 0.3 joins transitively");
    }

    #[test]
    fn filtered_pairs_never_join() {
        let m = ScoreMatrix::new(4);
        let assign = group_bits_adaptive(&m);
        // Everything filtered: all singletons.
        let distinct: std::collections::HashSet<_> = assign.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn filtered_fraction_counts() {
        let mut m = ScoreMatrix::new(3);
        m.set(0, 1, 0.5);
        assert!((m.filtered_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        let dense = uf.dense_assignment();
        assert_eq!(dense, vec![0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_access_panics() {
        let m = ScoreMatrix::new(3);
        let _ = m.get(1, 1);
    }
}

/// Average-linkage agglomerative grouping — an alternative word generator
/// to the paper's connected-components rule.
///
/// Connected components merge transitively: one spurious above-threshold
/// edge fuses two words. Average linkage instead merges the two clusters
/// with the highest *mean* pairwise score, stopping when no pair of
/// clusters averages above `threshold` — trading the paper's simplicity
/// for robustness to isolated false positives. Filtered pairs (−1) count
/// against the average, so clusters with little evidence do not merge.
///
/// Returns a dense assignment like [`group_bits`].
///
/// # Examples
///
/// ```
/// use rebert::{group_bits_agglomerative, ScoreMatrix};
///
/// let mut m = ScoreMatrix::new(4);
/// m.set(0, 1, 0.9);
/// m.set(2, 3, 0.9);
/// m.set(1, 2, 0.5); // one spurious link
/// let assign = group_bits_agglomerative(&m, 0.45);
/// // 0-1 and 2-3 merge; the cross link alone cannot pull the two
/// // clusters together because the *average* cross score is low.
/// assert_eq!(assign[0], assign[1]);
/// assert_eq!(assign[2], assign[3]);
/// assert_ne!(assign[0], assign[2]);
/// ```
pub fn group_bits_agglomerative(matrix: &ScoreMatrix, threshold: f32) -> Vec<usize> {
    let n = matrix.len();
    if n == 0 {
        return Vec::new();
    }
    // Cluster membership lists; None = merged away.
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();

    let avg_link = |a: &[usize], b: &[usize]| -> f32 {
        let mut total = 0.0f32;
        for &i in a {
            for &j in b {
                total += matrix.get(i, j);
            }
        }
        total / (a.len() * b.len()) as f32
    };

    loop {
        // Find the best pair of live clusters.
        let mut best: Option<(usize, usize, f32)> = None;
        let live: Vec<usize> = (0..clusters.len())
            .filter(|&c| clusters[c].is_some())
            .collect();
        for (ai, &a) in live.iter().enumerate() {
            for &b in &live[ai + 1..] {
                let score = avg_link(
                    clusters[a].as_ref().expect("live"),
                    clusters[b].as_ref().expect("live"),
                );
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((a, b, score));
                }
            }
        }
        match best {
            Some((a, b, score)) if score > threshold => {
                let merged = clusters[b].take().expect("live");
                clusters[a].as_mut().expect("live").extend(merged);
            }
            _ => break,
        }
    }

    let mut assign = vec![0usize; n];
    for (next, c) in clusters.into_iter().flatten().enumerate() {
        for i in c {
            assign[i] = next;
        }
    }
    // Dense re-id in first-seen order for stability.
    let mut map = std::collections::HashMap::new();
    assign
        .iter()
        .map(|&w| {
            let next = map.len();
            *map.entry(w).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod agglomerative_tests {
    use super::*;

    #[test]
    fn resists_single_spurious_edge() {
        // Two clean 3-bit words bridged by one false positive: connected
        // components fuse them, average linkage does not.
        let mut m = ScoreMatrix::new(6);
        for w in [[0usize, 1, 2], [3, 4, 5]] {
            for i in 0..3 {
                for j in i + 1..3 {
                    m.set(w[i], w[j], 0.95);
                }
            }
        }
        m.set(2, 3, 0.6); // spurious cross edge
        let cc = group_bits(&m, 0.5);
        assert_eq!(cc[0], cc[5], "connected components over-merge");
        let agg = group_bits_agglomerative(&m, 0.5);
        assert_eq!(agg[0], agg[2]);
        assert_eq!(agg[3], agg[5]);
        assert_ne!(agg[0], agg[3], "average linkage resists the bridge");
    }

    #[test]
    fn all_filtered_stays_singletons() {
        let m = ScoreMatrix::new(5);
        let assign = group_bits_agglomerative(&m, 0.0);
        let distinct: std::collections::HashSet<_> = assign.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn empty_matrix_ok() {
        let m = ScoreMatrix::new(0);
        assert!(group_bits_agglomerative(&m, 0.3).is_empty());
    }

    #[test]
    fn agrees_with_cc_on_clean_separation() {
        let mut m = ScoreMatrix::new(4);
        m.set(0, 1, 0.9);
        m.set(2, 3, 0.9);
        let cc = group_bits(&m, 0.5);
        let agg = group_bits_agglomerative(&m, 0.5);
        assert_eq!(cc, agg);
    }
}
