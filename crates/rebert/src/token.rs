//! Tokenization of bits and bit pairs (paper §II-A, Fig. 2).
//!
//! A bit's binary fan-in tree is flattened by **pre-order traversal** into
//! a sequence of tokens: interior nodes contribute their gate type, leaves
//! contribute the generalized input token `X` (the paper drops concrete
//! signal names — "the specific names contribute minimally to prediction
//! accuracy but introduce unnecessary complexity into the vocabulary").
//!
//! A **pair sequence** for two bits is `[CLS] a… [SEP] b…`, optionally
//! padded with `[PAD]` to a uniform length.

use std::fmt;

use rebert_netlist::{BitTree, GateType, TreeNode, ALL_GATE_TYPES};
use serde::{Deserialize, Serialize};

/// One token of a netlist sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// Sequence-start classification token (BERT `[CLS]`).
    Cls,
    /// Separator between the two bits' sequences (BERT `[SEP]`).
    Sep,
    /// Padding token (BERT `[PAD]`).
    Pad,
    /// Generalized sub-circuit input (any leaf signal).
    X,
    /// An interior gate node.
    Gate(GateType),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Cls => f.write_str("[CLS]"),
            Token::Sep => f.write_str("[SEP]"),
            Token::Pad => f.write_str("[PAD]"),
            Token::X => f.write_str("X"),
            Token::Gate(g) => write!(f, "{g}"),
        }
    }
}

/// The fixed token vocabulary: 4 specials + one id per gate type.
///
/// # Examples
///
/// ```
/// use rebert::{Token, Vocab};
///
/// let vocab = Vocab::new();
/// assert_eq!(vocab.id(Token::Cls), 0);
/// assert!(vocab.len() > 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {}

impl Vocab {
    /// Creates the vocabulary (stateless; the mapping is fixed).
    pub fn new() -> Self {
        Vocab {}
    }

    /// The integer id of a token.
    pub fn id(&self, t: Token) -> usize {
        match t {
            Token::Cls => 0,
            Token::Sep => 1,
            Token::Pad => 2,
            Token::X => 3,
            Token::Gate(g) => {
                4 + ALL_GATE_TYPES
                    .iter()
                    .position(|&x| x == g)
                    .expect("every gate type is in ALL_GATE_TYPES")
            }
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        4 + ALL_GATE_TYPES.len()
    }

    /// Vocabularies are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Converts a token slice into ids.
    pub fn encode(&self, tokens: &[Token]) -> Vec<usize> {
        tokens.iter().map(|&t| self.id(t)).collect()
    }

    /// Counts token occurrences into a dense histogram over the fixed
    /// vocabulary: `histogram(ts)[id(t)]` is the multiplicity of `t`.
    ///
    /// The vocabulary is tiny, so a count array beats a hash map for the
    /// multiset operations of the Jaccard pre-filter (see
    /// [`crate::jaccard_counts`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rebert::{Token, Vocab};
    ///
    /// let vocab = Vocab::new();
    /// let h = vocab.histogram(&[Token::X, Token::X, Token::Cls]);
    /// assert_eq!(h[vocab.id(Token::X)], 2);
    /// assert_eq!(h[vocab.id(Token::Cls)], 1);
    /// assert_eq!(h.len(), vocab.len());
    /// ```
    pub fn histogram(&self, tokens: &[Token]) -> Vec<u32> {
        let mut h = vec![0u32; self.len()];
        for &t in tokens {
            h[self.id(t)] += 1;
        }
        h
    }
}

/// Flattens a bit's fan-in tree into its pre-order token sequence.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert::{tokenize_bit, Token};
/// use rebert_netlist::{binarize, parse_bench, BitTree, GateType};
///
/// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ns = AND(a, b)\nq = DFF(s)\nOUTPUT(s)\n")?;
/// let (bin, _) = binarize(&nl);
/// let tree = BitTree::extract(&bin, bin.bits()[0], 6);
/// let toks = tokenize_bit(&tree);
/// assert_eq!(toks, vec![Token::Gate(GateType::And), Token::X, Token::X]);
/// # Ok(())
/// # }
/// ```
pub fn tokenize_bit(tree: &BitTree) -> Vec<Token> {
    tree.preorder()
        .into_iter()
        .map(|i| match &tree.nodes()[i as usize] {
            TreeNode::Gate { gtype, .. } => Token::Gate(*gtype),
            TreeNode::Leaf { .. } => Token::X,
        })
        .collect()
}

/// A tokenized pair of bits ready for embedding: the joint token sequence
/// and, aligned with it, each token's tree positional code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSequence {
    /// `[CLS] a… [SEP] b…` tokens (plus optional `[PAD]`s).
    pub tokens: Vec<Token>,
    /// Per-token tree positional code (see `tree_embed` (see [`crate::tree_codes`]));
    /// all-zero for special tokens.
    pub codes: Vec<Vec<f32>>,
}

impl PairSequence {
    /// Builds the joint sequence for two tokenized bits with their
    /// pre-computed tree codes.
    ///
    /// `max_len` truncates the result (keeping `[CLS]`, the separator, and
    /// a balanced share of each bit's tokens) so attention cost stays
    /// bounded; pass `usize::MAX` for no truncation.
    ///
    /// # Panics
    ///
    /// Panics if token and code lengths disagree.
    pub fn build(
        a_tokens: &[Token],
        a_codes: &[Vec<f32>],
        b_tokens: &[Token],
        b_codes: &[Vec<f32>],
        code_width: usize,
        max_len: usize,
    ) -> Self {
        assert_eq!(a_tokens.len(), a_codes.len(), "bit A token/code mismatch");
        assert_eq!(b_tokens.len(), b_codes.len(), "bit B token/code mismatch");
        // Budget: [CLS] + a + [SEP] + b <= max_len.
        let budget = max_len.saturating_sub(2);
        let (take_a, take_b) = if a_tokens.len() + b_tokens.len() <= budget {
            (a_tokens.len(), b_tokens.len())
        } else {
            let half = budget / 2;
            let ta = a_tokens
                .len()
                .min(half.max(budget.saturating_sub(b_tokens.len())));
            let tb = b_tokens.len().min(budget - ta);
            (ta, tb)
        };
        let zero = vec![0.0f32; code_width];
        let mut tokens = Vec::with_capacity(take_a + take_b + 2);
        let mut codes = Vec::with_capacity(take_a + take_b + 2);
        tokens.push(Token::Cls);
        codes.push(zero.clone());
        tokens.extend_from_slice(&a_tokens[..take_a]);
        codes.extend(a_codes[..take_a].iter().cloned());
        tokens.push(Token::Sep);
        codes.push(zero.clone());
        tokens.extend_from_slice(&b_tokens[..take_b]);
        codes.extend(b_codes[..take_b].iter().cloned());
        PairSequence { tokens, codes }
    }

    /// Sequence length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence is empty (never true for built pairs).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Pads with `[PAD]` (zero codes) to exactly `len`, mirroring the
    /// paper's uniform-length formatting. No-op if already longer.
    pub fn pad_to(&mut self, len: usize) {
        let width = self.codes.first().map(Vec::len).unwrap_or(0);
        while self.tokens.len() < len {
            self.tokens.push(Token::Pad);
            self.codes.push(vec![0.0; width]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::{binarize, parse_bench};

    fn tree_for(src: &str) -> BitTree {
        let (bin, _) = binarize(&parse_bench("t", src).unwrap());
        BitTree::extract(&bin, bin.bits()[0], 6)
    }

    #[test]
    fn preorder_token_order_matches_fig2() {
        // Fig. 2-like: d = OR(AND(a,b), NOT(c)) => OR AND X X NOT X.
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
w1 = AND(a, b)
w2 = NOT(c)
d = OR(w1, w2)
q = DFF(d)
OUTPUT(d)
";
        let toks = tokenize_bit(&tree_for(src));
        let s: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        assert_eq!(s, vec!["OR", "AND", "X", "X", "NOT", "X"]);
    }

    #[test]
    fn vocab_ids_are_dense_and_unique() {
        let v = Vocab::new();
        let mut seen = std::collections::HashSet::new();
        let mut all = vec![Token::Cls, Token::Sep, Token::Pad, Token::X];
        all.extend(ALL_GATE_TYPES.iter().map(|&g| Token::Gate(g)));
        for t in all {
            let id = v.id(t);
            assert!(id < v.len(), "{t} id {id} out of range");
            assert!(seen.insert(id), "duplicate id {id} for {t}");
        }
        assert_eq!(seen.len(), v.len());
    }

    #[test]
    fn histogram_counts_multiplicities() {
        let v = Vocab::new();
        let toks = vec![
            Token::Gate(GateType::And),
            Token::X,
            Token::Gate(GateType::And),
            Token::X,
            Token::X,
        ];
        let h = v.histogram(&toks);
        assert_eq!(h.len(), v.len());
        assert_eq!(h[v.id(Token::Gate(GateType::And))], 2);
        assert_eq!(h[v.id(Token::X)], 3);
        assert_eq!(h.iter().sum::<u32>() as usize, toks.len());
        // Empty sequence: all-zero histogram.
        assert!(v.histogram(&[]).iter().all(|&c| c == 0));
    }

    #[test]
    fn pair_sequence_layout() {
        let a = vec![Token::Gate(GateType::And), Token::X, Token::X];
        let b = vec![Token::Gate(GateType::Or), Token::X, Token::X];
        let ac = vec![vec![0.0; 4]; 3];
        let bc = vec![vec![1.0; 4]; 3];
        let pair = PairSequence::build(&a, &ac, &b, &bc, 4, usize::MAX);
        assert_eq!(pair.len(), 8);
        assert_eq!(pair.tokens[0], Token::Cls);
        assert_eq!(pair.tokens[4], Token::Sep);
        assert_eq!(pair.codes[0], vec![0.0; 4]);
        assert_eq!(pair.codes[5], vec![1.0; 4]);
    }

    #[test]
    fn truncation_respects_budget() {
        let a = vec![Token::X; 100];
        let b = vec![Token::X; 100];
        let ac = vec![vec![0.0; 2]; 100];
        let bc = vec![vec![0.0; 2]; 100];
        let pair = PairSequence::build(&a, &ac, &b, &bc, 2, 64);
        assert!(pair.len() <= 64);
        assert_eq!(pair.tokens[0], Token::Cls);
        assert!(pair.tokens.contains(&Token::Sep));
    }

    #[test]
    fn asymmetric_truncation_fills_budget() {
        // Short A, long B: B gets the leftover budget.
        let a = vec![Token::X; 5];
        let b = vec![Token::X; 100];
        let ac = vec![vec![0.0; 2]; 5];
        let bc = vec![vec![0.0; 2]; 100];
        let pair = PairSequence::build(&a, &ac, &b, &bc, 2, 64);
        assert_eq!(pair.len(), 64);
    }

    #[test]
    fn pad_to_extends_with_pad_tokens() {
        let a = vec![Token::X];
        let ac = vec![vec![0.0; 2]];
        let mut pair = PairSequence::build(&a, &ac, &a, &ac, 2, usize::MAX);
        let before = pair.len();
        pair.pad_to(before + 3);
        assert_eq!(pair.len(), before + 3);
        assert_eq!(pair.tokens[before], Token::Pad);
        assert_eq!(pair.codes[before], vec![0.0; 2]);
        // Padding to a smaller length is a no-op.
        pair.pad_to(1);
        assert_eq!(pair.len(), before + 3);
    }
}
