//! Model checkpointing: config + parameters as one JSON file.
//!
//! Serialization is hand-rolled on [`crate::json`] (same field layout as
//! the previous serde-derived schema, so old checkpoints stay loadable)
//! and loading **validates** the stored parameter tensors against the
//! architecture the stored config implies: every tensor must exist, in
//! registration order, with the registered name and shape. A truncated
//! or mismatched checkpoint fails with a descriptive
//! [`PersistError::Shape`] instead of panicking mid-forward.

use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use rebert_nn::ParamStore;
use rebert_tensor::Tensor;

use crate::json::Json;
use crate::model::{EmbeddingFlags, ReBertConfig, ReBertModel};

/// Error raised when saving or loading a model checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a well-formed checkpoint document.
    Format(String),
    /// The stored parameters do not match the architecture the stored
    /// config implies (wrong count, name, or tensor shape).
    Shape(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model checkpoint i/o error: {e}"),
            PersistError::Format(e) => write!(f, "model checkpoint format error: {e}"),
            PersistError::Shape(e) => write!(f, "model checkpoint shape error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn format_err(context: &str) -> PersistError {
    PersistError::Format(format!("missing or invalid `{context}`"))
}

/// Saves the model (configuration and all parameters) to `path`.
///
/// # Errors
///
/// Returns a [`PersistError`] on I/O failure.
pub fn save_model(model: &ReBertModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, encode_checkpoint(model.config(), model.store()))?;
    // Warm the content fingerprint while the encoded form is hot in
    // cache — saving is exactly the moment callers want it reported.
    model.fingerprint();
    Ok(())
}

/// Renders a checkpoint document; streamed into one string rather than
/// building a [`Json`] tree (stores hold hundreds of thousands of
/// scalars).
pub(crate) fn encode_checkpoint(config: &ReBertConfig, store: &ParamStore) -> String {
    let mut out = String::with_capacity(64 + store.scalar_count() * 10);
    out.push_str("{\"config\":");
    out.push_str(&encode_config(config).to_string());
    out.push_str(",\"store\":{\"names\":[");
    for (i, (_, name, _)) in store.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::write_json_string(&mut out, name).expect("writing to String");
    }
    out.push_str("],\"tensors\":[");
    for (i, (_, _, t)) in store.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (rows, cols) = t.shape();
        write!(out, "{{\"rows\":{rows},\"cols\":{cols},\"data\":[").expect("writing to String");
        for (j, v) in t.data().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            if v.is_finite() {
                write!(out, "{v}").expect("writing to String");
            } else {
                out.push_str("null");
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}}");
    out
}

fn encode_config(cfg: &ReBertConfig) -> Json {
    Json::Obj(vec![
        (
            "bert".to_owned(),
            Json::Obj(vec![
                ("d_model".to_owned(), Json::uint(cfg.bert.d_model as u64)),
                ("n_heads".to_owned(), Json::uint(cfg.bert.n_heads as u64)),
                ("n_layers".to_owned(), Json::uint(cfg.bert.n_layers as u64)),
                ("d_ff".to_owned(), Json::uint(cfg.bert.d_ff as u64)),
            ]),
        ),
        ("max_seq".to_owned(), Json::uint(cfg.max_seq as u64)),
        ("code_width".to_owned(), Json::uint(cfg.code_width as u64)),
        ("k_levels".to_owned(), Json::uint(cfg.k_levels as u64)),
        (
            "jaccard_threshold".to_owned(),
            Json::num(cfg.jaccard_threshold),
        ),
        (
            "embeddings".to_owned(),
            Json::Obj(vec![
                ("word".to_owned(), Json::Bool(cfg.embeddings.word)),
                ("position".to_owned(), Json::Bool(cfg.embeddings.position)),
                ("tree".to_owned(), Json::Bool(cfg.embeddings.tree)),
            ]),
        ),
    ])
}

fn decode_usize(doc: &Json, ctx: &str) -> Result<usize, PersistError> {
    doc.as_usize().ok_or_else(|| format_err(ctx))
}

fn decode_config(doc: &Json) -> Result<ReBertConfig, PersistError> {
    let bert = doc.get("bert").ok_or_else(|| format_err("config.bert"))?;
    let emb = doc
        .get("embeddings")
        .ok_or_else(|| format_err("config.embeddings"))?;
    let field = |obj: &Json, name: &str, ctx: &str| -> Result<usize, PersistError> {
        decode_usize(obj.get(name).ok_or_else(|| format_err(ctx))?, ctx)
    };
    let flag = |name: &str| -> Result<bool, PersistError> {
        emb.get(name)
            .and_then(Json::as_bool)
            .ok_or_else(|| format_err(&format!("config.embeddings.{name}")))
    };
    let mut cfg = ReBertConfig::tiny();
    cfg.bert.d_model = field(bert, "d_model", "config.bert.d_model")?;
    cfg.bert.n_heads = field(bert, "n_heads", "config.bert.n_heads")?;
    cfg.bert.n_layers = field(bert, "n_layers", "config.bert.n_layers")?;
    cfg.bert.d_ff = field(bert, "d_ff", "config.bert.d_ff")?;
    cfg.max_seq = field(doc, "max_seq", "config.max_seq")?;
    cfg.code_width = field(doc, "code_width", "config.code_width")?;
    cfg.k_levels = field(doc, "k_levels", "config.k_levels")?;
    cfg.jaccard_threshold = doc
        .get("jaccard_threshold")
        .and_then(Json::as_f64)
        .ok_or_else(|| format_err("config.jaccard_threshold"))?;
    cfg.embeddings = EmbeddingFlags {
        word: flag("word")?,
        position: flag("position")?,
        tree: flag("tree")?,
    };
    // Mirror the constructor's invariants as errors instead of panics,
    // so a tampered config cannot abort the loading process.
    if !(cfg.embeddings.word || cfg.embeddings.position || cfg.embeddings.tree) {
        return Err(PersistError::Format(
            "config enables no embedding scheme".to_owned(),
        ));
    }
    if cfg.code_width < 2 || !cfg.code_width.is_multiple_of(2) {
        return Err(PersistError::Format(format!(
            "config code_width {} is not a positive even number",
            cfg.code_width
        )));
    }
    if cfg.bert.n_heads == 0
        || cfg.bert.d_model == 0
        || !cfg.bert.d_model.is_multiple_of(cfg.bert.n_heads)
        || cfg.max_seq == 0
    {
        return Err(PersistError::Format(format!(
            "config dimensions are inconsistent (d_model {}, n_heads {}, max_seq {})",
            cfg.bert.d_model, cfg.bert.n_heads, cfg.max_seq
        )));
    }
    Ok(cfg)
}

fn decode_store(doc: &Json) -> Result<ParamStore, PersistError> {
    let names = doc
        .get("names")
        .and_then(Json::as_array)
        .ok_or_else(|| format_err("store.names"))?;
    let tensors = doc
        .get("tensors")
        .and_then(Json::as_array)
        .ok_or_else(|| format_err("store.tensors"))?;
    if names.len() != tensors.len() {
        return Err(PersistError::Format(format!(
            "store has {} names but {} tensors",
            names.len(),
            tensors.len()
        )));
    }
    let mut store = ParamStore::new();
    for (i, (name, tensor)) in names.iter().zip(tensors).enumerate() {
        let name = name
            .as_str()
            .ok_or_else(|| format_err(&format!("store.names[{i}]")))?;
        let rows = decode_usize(
            tensor
                .get("rows")
                .ok_or_else(|| format_err(&format!("store.tensors[{i}].rows")))?,
            "rows",
        )?;
        let cols = decode_usize(
            tensor
                .get("cols")
                .ok_or_else(|| format_err(&format!("store.tensors[{i}].cols")))?,
            "cols",
        )?;
        let data = tensor
            .get("data")
            .and_then(Json::as_array)
            .ok_or_else(|| format_err(&format!("store.tensors[{i}].data")))?;
        if data.len() != rows * cols {
            return Err(PersistError::Format(format!(
                "tensor `{name}` declares {rows}x{cols} but holds {} scalars",
                data.len()
            )));
        }
        let mut flat = Vec::with_capacity(data.len());
        for v in data {
            flat.push(
                v.as_f32()
                    .ok_or_else(|| format_err(&format!("tensor `{name}` data")))?,
            );
        }
        store.add(name, Tensor::from_vec(rows, cols, flat));
    }
    Ok(store)
}

/// Verifies that `store` matches the parameter layout a fresh model
/// built from `fresh` would register: same count, and for every slot the
/// same name and tensor shape.
pub(crate) fn validate_store(fresh: &ReBertModel, store: &ParamStore) -> Result<(), PersistError> {
    let expected = fresh.store();
    if store.len() != expected.len() {
        return Err(PersistError::Shape(format!(
            "checkpoint holds {} parameter tensors but the stored config \
             (vocab {}, hidden {}, {} heads, {} layers) requires {}",
            store.len(),
            fresh.vocab().len(),
            fresh.config().bert.d_model,
            fresh.config().bert.n_heads,
            fresh.config().bert.n_layers,
            expected.len()
        )));
    }
    for (id, name, want) in expected.iter() {
        let got = store.get(id);
        if store.name(id) != name {
            return Err(PersistError::Shape(format!(
                "parameter {} is named `{}` in the checkpoint but the \
                 config registers `{name}` at that slot",
                id.index(),
                store.name(id)
            )));
        }
        if got.shape() != want.shape() {
            return Err(PersistError::Shape(format!(
                "parameter `{name}` has shape {:?} in the checkpoint but \
                 the config requires {:?}",
                got.shape(),
                want.shape()
            )));
        }
    }
    Ok(())
}

/// Rebuilds a model from an already-decoded config + store, validating
/// shapes first (shared by [`load_model`] and tests).
pub(crate) fn install_checkpoint(
    config: ReBertConfig,
    store: ParamStore,
) -> Result<ReBertModel, PersistError> {
    // Parameter registration order is deterministic for a given config,
    // so a fresh model's ParamIds line up with the stored tensors.
    let mut model = ReBertModel::new(config, 0);
    validate_store(&model, &store)?;
    model.set_store(store);
    Ok(model)
}

/// Loads a model saved by [`save_model`]: reconstructs the architecture
/// from the stored configuration, validates that every stored tensor
/// matches the shape that architecture registers, and installs the
/// parameters.
///
/// # Errors
///
/// Returns a [`PersistError`] on I/O failure, malformed JSON
/// ([`PersistError::Format`]), or a config/parameter mismatch
/// ([`PersistError::Shape`]).
pub fn load_model(path: impl AsRef<Path>) -> Result<ReBertModel, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let doc = Json::parse(&text).map_err(|e| PersistError::Format(e.to_string()))?;
    let config = decode_config(doc.get("config").ok_or_else(|| format_err("config"))?)?;
    let store = decode_store(doc.get("store").ok_or_else(|| format_err("store"))?)?;
    let model = install_checkpoint(config, store)?;
    // Warm the fingerprint at load so serving layers can report it
    // without paying the re-encode on the first request.
    model.fingerprint();
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use crate::token::{PairSequence, Token};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rebert_persist_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn demo_pair(cfg: &ReBertConfig) -> PairSequence {
        let toks = vec![Token::X, Token::X, Token::X];
        let codes = vec![vec![0.0; cfg.code_width]; 3];
        PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, 64)
    }

    #[test]
    fn save_load_preserves_predictions() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 99);
        let pair = demo_pair(&cfg);
        let before = model.predict(&pair);

        let path = tmp("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.predict(&pair), before);
        assert_eq!(loaded.config(), model.config());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fingerprint_survives_save_load_and_tracks_weights() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 17);
        let fp = model.fingerprint();
        assert_eq!(model.fingerprint(), fp, "fingerprint is cached, stable");
        assert_eq!(model.fingerprint_hex(), format!("{fp:016x}"));

        // Round-tripping through a checkpoint preserves the fingerprint
        // (it hashes exactly the bytes save_model writes).
        let path = tmp("fingerprint.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.fingerprint(), fp);
        std::fs::remove_file(path).ok();

        // Different seeds → different weights → different fingerprints.
        let other = ReBertModel::new(ReBertConfig::tiny(), 18);
        assert_ne!(other.fingerprint(), fp);

        // A weight update invalidates the cached fingerprint.
        let mut model = model;
        let id = model.store().iter().next().expect("non-empty store").0;
        model.store_mut().get_mut(id).data_mut()[0] += 1.0;
        assert_ne!(model.fingerprint(), fp, "stale fingerprint dropped");
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_model("/nonexistent/rebert/model.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn garbage_file_reports_format_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{\"config\": nonsense").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_tensor_reports_format_error() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 4);
        let path = tmp("truncated.json");
        save_model(&model, &path).unwrap();
        // Drop one scalar from the first tensor's data array.
        let text = std::fs::read_to_string(&path).unwrap();
        let data = text.find("\"data\":[").expect("tensor data") + "\"data\":[".len();
        let comma = text[data..].find(',').expect("more than one scalar") + data;
        let tampered = format!("{}{}", &text[..data], &text[comma + 1..]);
        std::fs::write(&path, tampered).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
        assert!(err.to_string().contains("scalars"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn config_store_mismatch_reports_shape_error() {
        // Regression: a checkpoint whose config says `d_ff: 32` but whose
        // tensors were trained at `d_ff: 64` must fail at load with a
        // descriptive shape error, not panic mid-forward.
        let mut big = ReBertConfig::tiny();
        big.bert.d_ff *= 2;
        let model = ReBertModel::new(big, 7);
        let path = tmp("mismatch.json");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let wrong = text.replacen(
            &format!("\"d_ff\":{}", model.config().bert.d_ff),
            &format!("\"d_ff\":{}", model.config().bert.d_ff / 2),
            1,
        );
        assert_ne!(wrong, text, "tamper must hit the config");
        std::fs::write(&path, wrong).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Shape(_)), "{err}");
        assert!(err.to_string().contains("shape"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn layer_count_mismatch_reports_tensor_count() {
        let mut deep = ReBertConfig::tiny();
        deep.bert.n_layers += 1;
        let donor = ReBertModel::new(ReBertConfig::tiny(), 1);
        // Claim the deeper config over the shallow model's tensors.
        let err = install_checkpoint(deep, donor.store().clone()).unwrap_err();
        assert!(matches!(err, PersistError::Shape(_)), "{err}");
        assert!(err.to_string().contains("requires"), "{err}");
    }

    #[test]
    fn renamed_parameter_rejected() {
        let model = ReBertModel::new(ReBertConfig::tiny(), 2);
        let mut store = ParamStore::new();
        for (i, (_, name, t)) in model.store().iter().enumerate() {
            let name = if i == 0 { "emb.bogus" } else { name };
            store.add(name, t.clone());
        }
        let err = install_checkpoint(ReBertConfig::tiny(), store).unwrap_err();
        assert!(matches!(err, PersistError::Shape(_)), "{err}");
        assert!(err.to_string().contains("emb.bogus"), "{err}");
    }
}
