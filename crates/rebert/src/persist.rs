//! Model checkpointing: config + parameters as one JSON file.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use rebert_nn::ParamStore;
use serde::{Deserialize, Serialize};

use crate::model::{ReBertConfig, ReBertModel};

#[derive(Serialize, Deserialize)]
struct Checkpoint {
    config: ReBertConfig,
    store: ParamStore,
}

/// Error raised when saving or loading a model checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model checkpoint i/o error: {e}"),
            PersistError::Json(e) => write!(f, "model checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Saves the model (configuration and all parameters) to `path`.
///
/// # Errors
///
/// Returns a [`PersistError`] on I/O or serialization failure.
pub fn save_model(model: &ReBertModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let ckpt = Checkpoint {
        config: model.config().clone(),
        store: model.store().clone(),
    };
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), &ckpt)?;
    Ok(())
}

/// Loads a model saved by [`save_model`]: reconstructs the architecture
/// from the stored configuration and installs the stored parameters.
///
/// # Errors
///
/// Returns a [`PersistError`] on I/O or deserialization failure.
pub fn load_model(path: impl AsRef<Path>) -> Result<ReBertModel, PersistError> {
    let file = File::open(path)?;
    let ckpt: Checkpoint = serde_json::from_reader(BufReader::new(file))?;
    // Parameter registration order is deterministic for a given config,
    // so a fresh model's ParamIds line up with the stored tensors.
    let mut model = ReBertModel::new(ckpt.config, 0);
    model.set_store(ckpt.store);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReBertConfig;
    use crate::token::{PairSequence, Token};

    #[test]
    fn save_load_preserves_predictions() {
        let cfg = ReBertConfig::tiny();
        let model = ReBertModel::new(cfg.clone(), 99);
        let toks = vec![Token::X, Token::X, Token::X];
        let codes = vec![vec![0.0; cfg.code_width]; 3];
        let pair = PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, 64);
        let before = model.predict(&pair);

        let dir = std::env::temp_dir().join("rebert_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.predict(&pair), before);
        assert_eq!(loaded.config(), model.config());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_model("/nonexistent/rebert/model.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
