//! The Jaccard pre-filter (paper §II-C).
//!
//! Before a pair reaches the model, ReBERT computes the Jaccard similarity
//! `J(A,B) = |A ∩ B| / |A ∪ B|` of the two bits' token sets; pairs below
//! the threshold (0.7 in the paper) are assigned score −1 and skipped,
//! "effectively reducing computational efforts by early discarding of less
//! relevant pairs".

use std::collections::HashMap;

use crate::token::Token;

/// The paper's filtering threshold.
pub const PAPER_JACCARD_THRESHOLD: f64 = 0.7;

/// Jaccard similarity of the two sequences' token **multisets**
/// (bag-of-tokens): intersection and union count multiplicities.
///
/// Multisets rather than sets keep the filter discriminative on netlist
/// sequences, whose alphabet is tiny (a handful of gate types), so plain
/// set Jaccard would saturate at 1.0 for almost every pair.
///
/// Returns a value in `[0, 1]`; two empty sequences score 1.0.
///
/// # Examples
///
/// ```
/// use rebert::{jaccard, Token};
/// use rebert_netlist::GateType;
///
/// let a = [Token::Gate(GateType::And), Token::X, Token::X];
/// let b = [Token::Gate(GateType::And), Token::X, Token::X];
/// assert_eq!(jaccard(&a, &b), 1.0);
/// let c = [Token::Gate(GateType::Or), Token::X];
/// assert!(jaccard(&a, &c) < 1.0);
/// ```
pub fn jaccard(a: &[Token], b: &[Token]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let count = |ts: &[Token]| {
        let mut m: HashMap<Token, usize> = HashMap::new();
        for &t in ts {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let mut inter = 0usize;
    let mut union = 0usize;
    for (t, &na) in &ca {
        let nb = cb.get(t).copied().unwrap_or(0);
        inter += na.min(nb);
        union += na.max(nb);
    }
    for (t, &nb) in &cb {
        if !ca.contains_key(t) {
            union += nb;
        }
    }
    inter as f64 / union as f64
}

/// Multiset Jaccard over precomputed token **histograms** (see
/// [`crate::Vocab::histogram`]): one pass over two small count arrays
/// instead of rebuilding hash maps per pair.
///
/// Produces exactly the same value as [`jaccard`] on the token slices the
/// histograms were counted from — intersection and union are the same
/// integer sums, so the final division is bit-identical. The slice-based
/// [`jaccard`] remains the reference API; this variant is what the
/// class-deduplicated pipeline calls once per *cone-class* pair.
///
/// Histograms of different lengths are zero-extended (a shorter histogram
/// simply lacks trailing vocabulary entries). Two all-zero histograms —
/// two empty sequences — score 1.0, matching [`jaccard`].
///
/// # Examples
///
/// ```
/// use rebert::{jaccard, jaccard_counts, Token, Vocab};
/// use rebert_netlist::GateType;
///
/// let v = Vocab::new();
/// let a = [Token::Gate(GateType::And), Token::X, Token::X];
/// let b = [Token::Gate(GateType::And), Token::X];
/// let exact = jaccard(&a, &b);
/// let fast = jaccard_counts(&v.histogram(&a), &v.histogram(&b));
/// assert_eq!(exact.to_bits(), fast.to_bits());
/// ```
pub fn jaccard_counts(a: &[u32], b: &[u32]) -> f64 {
    let mut inter = 0usize;
    let mut union = 0usize;
    let common = a.len().min(b.len());
    for i in 0..common {
        inter += a[i].min(b[i]) as usize;
        union += a[i].max(b[i]) as usize;
    }
    for &x in &a[common..] {
        union += x as usize;
    }
    for &x in &b[common..] {
        union += x as usize;
    }
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Set-based Jaccard over distinct tokens (provided for comparison and
/// used by the filter ablation).
pub fn jaccard_set(a: &[Token], b: &[Token]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<Token> = a.iter().copied().collect();
    let sb: HashSet<Token> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Decides whether a pair passes the filter (similarity ≥ `threshold`).
pub fn passes_filter(a: &[Token], b: &[Token], threshold: f64) -> bool {
    jaccard(a, b) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::GateType;

    fn seq(spec: &[(GateType, usize)], xs: usize) -> Vec<Token> {
        let mut v = Vec::new();
        for &(g, n) in spec {
            v.extend(std::iter::repeat_n(Token::Gate(g), n));
        }
        v.extend(std::iter::repeat_n(Token::X, xs));
        v
    }

    #[test]
    fn identical_sequences_score_one() {
        let a = seq(&[(GateType::And, 2), (GateType::Xor, 1)], 3);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert!(passes_filter(&a, &a, PAPER_JACCARD_THRESHOLD));
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let a = vec![Token::Gate(GateType::And)];
        let b = vec![Token::Gate(GateType::Or)];
        assert_eq!(jaccard(&a, &b), 0.0);
        assert!(!passes_filter(&a, &b, PAPER_JACCARD_THRESHOLD));
    }

    #[test]
    fn multiset_jaccard_sees_count_differences() {
        // Same token *set* but different counts.
        let a = seq(&[(GateType::And, 4)], 4);
        let b = seq(&[(GateType::And, 1)], 7);
        assert_eq!(jaccard_set(&a, &b), 1.0, "set variant saturates");
        assert!(jaccard(&a, &b) < 1.0, "multiset variant discriminates");
    }

    #[test]
    fn known_value() {
        // a = {AND×2, X}, b = {AND×1, X×2}: inter = 1+1 = 2, union = 2+2 = 4.
        let a = seq(&[(GateType::And, 2)], 1);
        let b = seq(&[(GateType::And, 1)], 2);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        let e: Vec<Token> = vec![];
        let a = seq(&[(GateType::And, 1)], 0);
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = seq(&[(GateType::And, 2), (GateType::Not, 3)], 5);
        let b = seq(&[(GateType::And, 1), (GateType::Xor, 2)], 4);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn counts_variant_matches_slice_jaccard_bitwise() {
        use crate::token::Vocab;
        let v = Vocab::new();
        let cases = [
            (
                seq(&[(GateType::And, 2), (GateType::Xor, 1)], 3),
                seq(&[(GateType::And, 1)], 7),
            ),
            (seq(&[(GateType::Or, 5)], 0), seq(&[(GateType::Nand, 2)], 2)),
            (seq(&[], 4), seq(&[], 4)),
            (seq(&[(GateType::Not, 1)], 1), seq(&[(GateType::Not, 1)], 1)),
        ];
        for (a, b) in &cases {
            let exact = jaccard(a, b);
            let fast = jaccard_counts(&v.histogram(a), &v.histogram(b));
            assert_eq!(exact.to_bits(), fast.to_bits(), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn counts_variant_zero_extends_short_histograms() {
        // {2×t0} vs {1×t0, 3×t1}: inter = 1, union = 2 + 3 = 5.
        assert!((jaccard_counts(&[2], &[1, 3]) - 0.2).abs() < 1e-12);
        assert!((jaccard_counts(&[1, 3], &[2]) - 0.2).abs() < 1e-12);
        // Both empty / all-zero: 1.0 like two empty sequences.
        assert_eq!(jaccard_counts(&[], &[]), 1.0);
        assert_eq!(jaccard_counts(&[0, 0], &[]), 1.0);
        // One empty: 0.0.
        assert_eq!(jaccard_counts(&[1], &[]), 0.0);
    }
}
