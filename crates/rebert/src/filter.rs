//! The Jaccard pre-filter (paper §II-C).
//!
//! Before a pair reaches the model, ReBERT computes the Jaccard similarity
//! `J(A,B) = |A ∩ B| / |A ∪ B|` of the two bits' token sets; pairs below
//! the threshold (0.7 in the paper) are assigned score −1 and skipped,
//! "effectively reducing computational efforts by early discarding of less
//! relevant pairs".

use std::collections::HashMap;

use crate::token::Token;

/// The paper's filtering threshold.
pub const PAPER_JACCARD_THRESHOLD: f64 = 0.7;

/// Jaccard similarity of the two sequences' token **multisets**
/// (bag-of-tokens): intersection and union count multiplicities.
///
/// Multisets rather than sets keep the filter discriminative on netlist
/// sequences, whose alphabet is tiny (a handful of gate types), so plain
/// set Jaccard would saturate at 1.0 for almost every pair.
///
/// Returns a value in `[0, 1]`; two empty sequences score 1.0.
///
/// # Examples
///
/// ```
/// use rebert::{jaccard, Token};
/// use rebert_netlist::GateType;
///
/// let a = [Token::Gate(GateType::And), Token::X, Token::X];
/// let b = [Token::Gate(GateType::And), Token::X, Token::X];
/// assert_eq!(jaccard(&a, &b), 1.0);
/// let c = [Token::Gate(GateType::Or), Token::X];
/// assert!(jaccard(&a, &c) < 1.0);
/// ```
pub fn jaccard(a: &[Token], b: &[Token]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let count = |ts: &[Token]| {
        let mut m: HashMap<Token, usize> = HashMap::new();
        for &t in ts {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let mut inter = 0usize;
    let mut union = 0usize;
    for (t, &na) in &ca {
        let nb = cb.get(t).copied().unwrap_or(0);
        inter += na.min(nb);
        union += na.max(nb);
    }
    for (t, &nb) in &cb {
        if !ca.contains_key(t) {
            union += nb;
        }
    }
    inter as f64 / union as f64
}

/// Set-based Jaccard over distinct tokens (provided for comparison and
/// used by the filter ablation).
pub fn jaccard_set(a: &[Token], b: &[Token]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<Token> = a.iter().copied().collect();
    let sb: HashSet<Token> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Decides whether a pair passes the filter (similarity ≥ `threshold`).
pub fn passes_filter(a: &[Token], b: &[Token], threshold: f64) -> bool {
    jaccard(a, b) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::GateType;

    fn seq(spec: &[(GateType, usize)], xs: usize) -> Vec<Token> {
        let mut v = Vec::new();
        for &(g, n) in spec {
            v.extend(std::iter::repeat_n(Token::Gate(g), n));
        }
        v.extend(std::iter::repeat_n(Token::X, xs));
        v
    }

    #[test]
    fn identical_sequences_score_one() {
        let a = seq(&[(GateType::And, 2), (GateType::Xor, 1)], 3);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert!(passes_filter(&a, &a, PAPER_JACCARD_THRESHOLD));
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let a = vec![Token::Gate(GateType::And)];
        let b = vec![Token::Gate(GateType::Or)];
        assert_eq!(jaccard(&a, &b), 0.0);
        assert!(!passes_filter(&a, &b, PAPER_JACCARD_THRESHOLD));
    }

    #[test]
    fn multiset_jaccard_sees_count_differences() {
        // Same token *set* but different counts.
        let a = seq(&[(GateType::And, 4)], 4);
        let b = seq(&[(GateType::And, 1)], 7);
        assert_eq!(jaccard_set(&a, &b), 1.0, "set variant saturates");
        assert!(jaccard(&a, &b) < 1.0, "multiset variant discriminates");
    }

    #[test]
    fn known_value() {
        // a = {AND×2, X}, b = {AND×1, X×2}: inter = 1+1 = 2, union = 2+2 = 4.
        let a = seq(&[(GateType::And, 2)], 1);
        let b = seq(&[(GateType::And, 1)], 2);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        let e: Vec<Token> = vec![];
        let a = seq(&[(GateType::And, 1)], 0);
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = seq(&[(GateType::And, 2), (GateType::Not, 3)], 5);
        let b = seq(&[(GateType::And, 1), (GateType::Xor, 2)], 4);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }
}
