//! The fixture battery: every lint code has a fixture (or options
//! configuration) that trips it and one that passes it, and the clean
//! fixture is clean under the full default pass.
//!
//! CI runs `rebert lint` over the same files; this test keeps the
//! fixtures honest even when run without the CLI.

use std::fs;
use std::path::PathBuf;

use rebert_analyze::{codes, lint_netlist, lint_source, lint_with, LintOptions, SourceFormat};

/// Locates `examples/fixtures` both under cargo (manifest-relative) and
/// under the standalone harness (cwd-relative).
fn fixture_dir() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest).join("../../examples/fixtures");
        if p.is_dir() {
            return p;
        }
    }
    for candidate in [
        "examples/fixtures",
        "../examples/fixtures",
        "../../examples/fixtures",
        "../../../examples/fixtures",
    ] {
        let p = PathBuf::from(candidate);
        if p.is_dir() {
            return p;
        }
    }
    panic!(
        "examples/fixtures not found from {:?}",
        std::env::current_dir()
    );
}

fn read_fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn clean_fixture_is_clean_under_the_full_pass() {
    let nl = lint_source("clean", &read_fixture("clean.bench"), SourceFormat::Bench)
        .expect("clean fixture parses");
    let r = lint_with(&nl, &LintOptions::default());
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn parse_level_fixtures_trip_their_codes() {
    let cases: &[(&str, &str)] = &[
        ("multi_driven.bench", codes::MULTI_DRIVEN_NET),
        ("duplicate_net.bench", codes::DUPLICATE_NET),
        ("unknown_gate.bench", codes::UNKNOWN_GATE),
        ("arity_mismatch.bench", codes::ARITY_MISMATCH),
        ("parse_error.bench", codes::PARSE_ERROR),
    ];
    for (file, code) in cases {
        let report = lint_source(file, &read_fixture(file), SourceFormat::Bench)
            .expect_err("defect fixture must not parse");
        assert!(report.has_code(code), "{file}: {}", report.render_human());
        assert!(report.has_errors(), "{file}");
    }
}

#[test]
fn structural_error_fixtures_trip_their_codes() {
    let cases: &[(&str, &str)] = &[
        ("undriven_net.bench", codes::UNDRIVEN_NET),
        ("floating_dff.bench", codes::FLOATING_DFF_INPUT),
        ("comb_cycle.bench", codes::COMB_CYCLE),
    ];
    for (file, code) in cases {
        let nl = lint_source(file, &read_fixture(file), SourceFormat::Bench)
            .expect("fixture parses; the defect is structural");
        let report = lint_netlist(&nl);
        assert!(report.has_code(code), "{file}: {}", report.render_human());
        assert!(report.has_errors(), "{file}");
    }
}

#[test]
fn warning_fixtures_trip_their_codes_without_errors() {
    let cases: &[(&str, &str)] = &[
        ("dead_logic.bench", codes::DEAD_LOGIC),
        ("const_fold.bench", codes::CONST_FOLDABLE),
        ("cone_trunc.bench", codes::CONE_TRUNCATED),
    ];
    for (file, code) in cases {
        let nl =
            lint_source(file, &read_fixture(file), SourceFormat::Bench).expect("fixture parses");
        let report = lint_with(&nl, &LintOptions::default());
        assert!(report.has_code(code), "{file}: {}", report.render_human());
        assert!(!report.has_errors(), "{file}: {}", report.render_human());
        assert!(report.fails(true), "{file}: --deny warnings must fail");
        assert!(!report.fails(false), "{file}: plain lint must pass");
    }
}

#[test]
fn option_driven_codes_trip_on_the_clean_fixture() {
    // vocab-oov and degenerate-threshold depend on checkpoint-derived
    // options, so the clean fixture both passes (default options) and
    // trips (adversarial options) each of them.
    let nl = lint_source("clean", &read_fixture("clean.bench"), SourceFormat::Bench).unwrap();

    let oov = lint_with(
        &nl,
        &LintOptions {
            vocab_rows: Some(2),
            ..LintOptions::default()
        },
    );
    assert!(oov.has_code(codes::VOCAB_OOV), "{}", oov.render_human());

    let degenerate = lint_with(
        &nl,
        &LintOptions {
            jaccard_threshold: Some(1.01),
            ..LintOptions::default()
        },
    );
    assert!(
        degenerate.has_code(codes::DEGENERATE_THRESHOLD),
        "{}",
        degenerate.render_human()
    );
}

#[test]
fn every_code_is_exercised_by_the_battery() {
    let covered = [
        codes::MULTI_DRIVEN_NET,
        codes::DUPLICATE_NET,
        codes::UNKNOWN_GATE,
        codes::ARITY_MISMATCH,
        codes::PARSE_ERROR,
        codes::UNDRIVEN_NET,
        codes::FLOATING_DFF_INPUT,
        codes::COMB_CYCLE,
        codes::DEAD_LOGIC,
        codes::CONST_FOLDABLE,
        codes::CONE_TRUNCATED,
        codes::VOCAB_OOV,
        codes::DEGENERATE_THRESHOLD,
    ];
    for code in codes::ALL_CODES {
        assert!(
            covered.contains(code),
            "code `{code}` has no fixture in the battery"
        );
    }
    assert_eq!(covered.len(), codes::ALL_CODES.len());
}
