//! The diagnostic model: severities, single findings, and reports with
//! human-readable and [`rebert::json`] renderers.

use std::fmt;

use rebert::json::Json;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recovery quality degrades but the pipeline runs.
    Warning,
    /// The netlist violates a structural invariant; results on it are
    /// meaningless. Serve refuses such inputs with a 422.
    Error,
}

impl Severity {
    /// The lowercase label used in renderings (`"error"` / `"warning"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a stable code, a severity, the nets and gates involved
/// (by name, since ids are netlist-relative), and a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable kebab-case code (see [`crate::codes`]).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Net names involved, in a lint-defined meaningful order (e.g. a
    /// cycle path in feed order).
    pub nets: Vec<String>,
    /// Output-net names of the gates involved.
    pub gates: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Source file the finding points at (source-level lints only;
    /// netlist lints leave it `None`).
    pub file: Option<String>,
    /// 1-indexed line within [`Diagnostic::file`].
    pub line: Option<usize>,
}

impl Diagnostic {
    /// A new diagnostic with no nets/gates attached.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            nets: Vec::new(),
            gates: Vec::new(),
            message: message.into(),
            file: None,
            line: None,
        }
    }

    /// Attaches a source location (builder style). Used by the
    /// `lint-src` Rust-source lints; netlist lints have no file/line.
    pub fn at(mut self, file: impl Into<String>, line: usize) -> Self {
        self.file = Some(file.into());
        self.line = Some(line);
        self
    }

    /// Attaches involved nets (builder style).
    pub fn with_nets(mut self, nets: Vec<String>) -> Self {
        self.nets = nets;
        self
    }

    /// Attaches involved gates (builder style).
    pub fn with_gates(mut self, gates: Vec<String>) -> Self {
        self.gates = gates;
        self
    }

    /// The single-line human rendering:
    /// `error[undriven-net]: net `x` has no driver (nets: x)`, prefixed
    /// with `file:line: ` when the finding carries a source location.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let (Some(file), Some(line)) = (&self.file, self.line) {
            out.push_str(&format!("{file}:{line}: "));
        }
        out.push_str(&format!(
            "{}[{}]: {}",
            self.severity, self.code, self.message
        ));
        if !self.nets.is_empty() {
            out.push_str(&format!(" (nets: {})", self.nets.join(", ")));
        }
        if !self.gates.is_empty() {
            out.push_str(&format!(" (gates: {})", self.gates.join(", ")));
        }
        out
    }

    /// The JSON object rendering. `file`/`line` keys appear only when
    /// the finding carries a source location, so netlist-lint JSON is
    /// byte-identical to what it was before source lints existed.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code".to_owned(), Json::str(self.code)),
            ("severity".to_owned(), Json::str(self.severity.as_str())),
        ];
        if let (Some(file), Some(line)) = (&self.file, self.line) {
            fields.push(("file".to_owned(), Json::str(file)));
            fields.push(("line".to_owned(), Json::uint(line as u64)));
        }
        fields.extend([
            (
                "nets".to_owned(),
                Json::Arr(self.nets.iter().map(Json::str).collect()),
            ),
            (
                "gates".to_owned(),
                Json::Arr(self.gates.iter().map(Json::str).collect()),
            ),
            ("message".to_owned(), Json::str(&self.message)),
        ]);
        Json::Obj(fields)
    }
}

/// An ordered collection of diagnostics from one lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in emission order (errors are not sorted above
    /// warnings; lints run in a fixed order so output is deterministic).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether this report should fail a lint run: errors always do,
    /// warnings only under `--deny warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.warning_count() > 0)
    }

    /// Whether any diagnostic carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The multi-line human rendering: one line per diagnostic plus a
    /// summary line (`"clean"` when empty).
    pub fn render_human(&self) -> String {
        if self.is_clean() {
            return "clean: no diagnostics".to_owned();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let (e, w) = (self.error_count(), self.warning_count());
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        out.push_str(&format!("{e} error{}, {w} warning{}", plural(e), plural(w)));
        out
    }

    /// The JSON rendering:
    /// `{"errors": E, "warnings": W, "diagnostics": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("errors".to_owned(), Json::uint(self.error_count() as u64)),
            (
                "warnings".to_owned(),
                Json::uint(self.warning_count() as u64),
            ),
            (
                "diagnostics".to_owned(),
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(
                codes::UNDRIVEN_NET,
                Severity::Error,
                "net `x` has no driver",
            )
            .with_nets(vec!["x".into()]),
        );
        r.push(
            Diagnostic::new(codes::DEAD_LOGIC, Severity::Warning, "1 dead gate")
                .with_gates(vec!["g_out".into()]),
        );
        r
    }

    #[test]
    fn counts_and_predicates() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(r.fails(false));
        assert!(r.fails(true));
        assert!(r.has_code(codes::DEAD_LOGIC));
        assert!(!r.has_code(codes::COMB_CYCLE));

        let mut warn_only = Report::new();
        warn_only.push(Diagnostic::new(codes::DEAD_LOGIC, Severity::Warning, "w"));
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
        assert!(Report::new().is_clean());
        assert!(!Report::new().fails(true));
    }

    #[test]
    fn human_rendering_shape() {
        let text = sample().render_human();
        assert!(text.contains("error[undriven-net]: net `x` has no driver (nets: x)"));
        assert!(text.contains("warning[dead-logic]: 1 dead gate (gates: g_out)"));
        assert!(text.ends_with("1 error, 1 warning"), "{text}");
        assert_eq!(Report::new().render_human(), "clean: no diagnostics");
    }

    #[test]
    fn json_rendering_parses_back() {
        let text = sample().to_json().to_string();
        let v = Json::parse(&text).expect("valid json");
        assert_eq!(v.get("errors").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("warnings").and_then(Json::as_usize), Some(1));
        let diags = v.get("diagnostics").and_then(Json::as_array).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(
            diags[0].get("code").and_then(Json::as_str),
            Some("undriven-net")
        );
        assert_eq!(
            diags[0].get("severity").and_then(Json::as_str),
            Some("error")
        );
        assert_eq!(
            diags[0]
                .get("nets")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
