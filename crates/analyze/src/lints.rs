//! The structural lint battery over a parsed [`Netlist`], plus the
//! source-level front end that turns parse errors into diagnostics.

use rebert_netlist::{
    parse_bench, parse_verilog, Driver, Netlist, NetlistError, ParseError, VerilogError,
};

use crate::codes;
use crate::diag::{Diagnostic, Report, Severity};

/// Which parser to run over lint input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// The ISCAS-style `.bench` dialect.
    Bench,
    /// The structural Verilog subset.
    Verilog,
}

/// Parses `text` and returns the netlist, or a report describing why it
/// does not parse. Parse failures are fatal by construction, so every
/// diagnostic in the error report has [`Severity::Error`].
pub fn lint_source(name: &str, text: &str, format: SourceFormat) -> Result<Netlist, Report> {
    match format {
        SourceFormat::Bench => parse_bench(name, text).map_err(|e| {
            let mut r = Report::new();
            r.push(bench_error_diag(&e));
            r
        }),
        SourceFormat::Verilog => parse_verilog(name, text).map_err(|e| {
            let mut r = Report::new();
            r.push(verilog_error_diag(&e));
            r
        }),
    }
}

fn netlist_error_code(e: &NetlistError) -> &'static str {
    match e {
        NetlistError::DuplicateNet(_) => codes::DUPLICATE_NET,
        NetlistError::MultipleDrivers(_) => codes::MULTI_DRIVEN_NET,
        NetlistError::BadArity { .. } => codes::ARITY_MISMATCH,
        NetlistError::UnknownNet(_) => codes::PARSE_ERROR,
        NetlistError::Undriven(_) => codes::UNDRIVEN_NET,
        NetlistError::CombinationalCycle(_) => codes::COMB_CYCLE,
    }
}

fn netlist_error_nets(e: &NetlistError) -> Vec<String> {
    match e {
        NetlistError::DuplicateNet(n)
        | NetlistError::MultipleDrivers(n)
        | NetlistError::Undriven(n)
        | NetlistError::CombinationalCycle(n) => vec![n.clone()],
        NetlistError::BadArity { .. } | NetlistError::UnknownNet(_) => Vec::new(),
    }
}

fn bench_error_diag(e: &ParseError) -> Diagnostic {
    let code = match e {
        ParseError::Syntax { .. } => codes::PARSE_ERROR,
        ParseError::UnknownGate { .. } => codes::UNKNOWN_GATE,
        ParseError::Netlist { source, .. } => netlist_error_code(source),
    };
    let nets = match e {
        ParseError::Netlist { source, .. } => netlist_error_nets(source),
        _ => Vec::new(),
    };
    Diagnostic::new(code, Severity::Error, e.to_string()).with_nets(nets)
}

fn verilog_error_diag(e: &VerilogError) -> Diagnostic {
    let code = match e {
        // Unknown cell primitives surface as `Unsupported` with a
        // `primitive `name`` payload; everything else unsupported is a
        // language-subset limit, not a netlist defect.
        VerilogError::Unsupported { text, .. } if text.starts_with("primitive") => {
            codes::UNKNOWN_GATE
        }
        VerilogError::Unsupported { .. } | VerilogError::Syntax { .. } => codes::PARSE_ERROR,
        VerilogError::MissingModule => codes::PARSE_ERROR,
        VerilogError::Netlist { source, .. } => netlist_error_code(source),
    };
    let nets = match e {
        VerilogError::Netlist { source, .. } => netlist_error_nets(source),
        _ => Vec::new(),
    };
    Diagnostic::new(code, Severity::Error, e.to_string()).with_nets(nets)
}

/// Runs every structural lint over a parsed netlist.
///
/// Lints run in a fixed order (drivers, arity, cycles, dead logic,
/// constant folding) so reports are deterministic.
pub fn lint_netlist(nl: &Netlist) -> Report {
    let mut report = Report::new();
    lint_drivers(nl, &mut report);
    lint_arity(nl, &mut report);
    lint_cycles(nl, &mut report);
    lint_dead_logic(nl, &mut report);
    lint_const_foldable(nl, &mut report);
    report
}

/// Undriven consumed nets, floating DFF data inputs, and (defensively)
/// nets claimed by more than one driver.
fn lint_drivers(nl: &Netlist, report: &mut Report) {
    let n = nl.net_count();
    let mut consumed = vec![false; n];
    for g in nl.gates() {
        for &i in &g.inputs {
            consumed[i.index()] = true;
        }
    }
    let mut dff_input = vec![false; n];
    for ff in nl.dffs() {
        consumed[ff.d.index()] = true;
        dff_input[ff.d.index()] = true;
    }
    for &o in nl.primary_outputs() {
        consumed[o.index()] = true;
    }

    for (id, name) in nl.iter_nets() {
        if !consumed[id.index()] || nl.is_driven(id) {
            continue;
        }
        if dff_input[id.index()] {
            report.push(
                Diagnostic::new(
                    codes::FLOATING_DFF_INPUT,
                    Severity::Error,
                    format!(
                        "flip-flop data input `{name}` has no driver; \
                         this bit would binarize as a constant"
                    ),
                )
                .with_nets(vec![name.to_owned()]),
            );
        } else {
            report.push(
                Diagnostic::new(
                    codes::UNDRIVEN_NET,
                    Severity::Error,
                    format!("net `{name}` is consumed but has no driver"),
                )
                .with_nets(vec![name.to_owned()]),
            );
        }
    }

    // The arena rejects double drives at construction time, so this only
    // fires on netlists mutated through lower-level means — but a lint
    // pass should not trust its producer.
    let mut claims = vec![0usize; n];
    for &pi in nl.primary_inputs() {
        claims[pi.index()] += 1;
    }
    for g in nl.gates() {
        claims[g.output.index()] += 1;
    }
    for ff in nl.dffs() {
        claims[ff.q.index()] += 1;
    }
    for (id, name) in nl.iter_nets() {
        if claims[id.index()] > 1 {
            report.push(
                Diagnostic::new(
                    codes::MULTI_DRIVEN_NET,
                    Severity::Error,
                    format!("net `{name}` is driven {} times", claims[id.index()]),
                )
                .with_nets(vec![name.to_owned()]),
            );
        }
    }
}

/// Gates whose input count is illegal for their type.
fn lint_arity(nl: &Netlist, report: &mut Report) {
    for g in nl.gates() {
        if !g.gtype.arity_ok(g.inputs.len()) {
            let out = nl.net_name(g.output);
            report.push(
                Diagnostic::new(
                    codes::ARITY_MISMATCH,
                    Severity::Error,
                    format!(
                        "gate {} driving `{out}` has {} inputs",
                        g.gtype,
                        g.inputs.len()
                    ),
                )
                .with_nets(vec![out.to_owned()])
                .with_gates(vec![out.to_owned()]),
            );
        }
    }
}

/// Combinational cycles, each reported with its full net path.
fn lint_cycles(nl: &Netlist, report: &mut Report) {
    for cycle in nl.combinational_cycles() {
        let names: Vec<String> = cycle.iter().map(|&id| nl.net_name(id).to_owned()).collect();
        let mut path = names.join(" -> ");
        if let Some(first) = names.first() {
            path.push_str(" -> ");
            path.push_str(first);
        }
        report.push(
            Diagnostic::new(
                codes::COMB_CYCLE,
                Severity::Error,
                format!("combinational cycle: {path}"),
            )
            .with_nets(names),
        );
    }
}

/// Gates unreachable by a backward sweep from any bit (DFF data input)
/// or primary output. Such logic never influences a recovered word but
/// still inflates netlist statistics.
fn lint_dead_logic(nl: &Netlist, report: &mut Report) {
    if nl.gates().is_empty() {
        return;
    }
    let mut live_gate = vec![false; nl.gate_count()];
    let mut seen_net = vec![false; nl.net_count()];
    let mut frontier: Vec<_> = nl
        .dffs()
        .iter()
        .map(|ff| ff.d)
        .chain(nl.primary_outputs().iter().copied())
        .collect();
    while let Some(net) = frontier.pop() {
        if seen_net[net.index()] {
            continue;
        }
        seen_net[net.index()] = true;
        match nl.driver(net) {
            Driver::Gate(gid) => {
                live_gate[gid.index()] = true;
                frontier.extend(nl.gate(gid).inputs.iter().copied());
            }
            // Crossing a register keeps the previous pipeline stage live.
            Driver::Dff(did) => frontier.push(nl.dff(did).d),
            Driver::PrimaryInput | Driver::ConstZero | Driver::ConstOne => {}
        }
    }
    let dead: Vec<String> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !live_gate[i])
        .map(|(_, g)| nl.net_name(g.output).to_owned())
        .collect();
    if !dead.is_empty() {
        report.push(
            Diagnostic::new(
                codes::DEAD_LOGIC,
                Severity::Warning,
                format!(
                    "{} gate{} unreachable from any bit or primary output",
                    dead.len(),
                    if dead.len() == 1 { "" } else { "s" }
                ),
            )
            .with_gates(dead),
        );
    }
}

/// Gates with at least one constant-driven input: a constant-folding
/// pass would simplify or remove them, so their presence usually means
/// the netlist was extracted without optimisation.
fn lint_const_foldable(nl: &Netlist, report: &mut Report) {
    let foldable: Vec<String> = nl
        .gates()
        .iter()
        .filter(|g| {
            g.inputs.iter().any(|&i| {
                nl.is_driven(i) && matches!(nl.driver(i), Driver::ConstZero | Driver::ConstOne)
            })
        })
        .map(|g| nl.net_name(g.output).to_owned())
        .collect();
    if !foldable.is_empty() {
        report.push(
            Diagnostic::new(
                codes::CONST_FOLDABLE,
                Severity::Warning,
                format!(
                    "{} gate{} with a constant input would be removed by constant folding",
                    foldable.len(),
                    if foldable.len() == 1 { "" } else { "s" }
                ),
            )
            .with_gates(foldable),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::GateType;

    fn bench(src: &str) -> Netlist {
        parse_bench("t", src).expect("fixture parses")
    }

    #[test]
    fn clean_netlist_is_clean() {
        let nl = bench(
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\ny = OR(a, x)\n\
             q0 = DFF(x)\nq1 = DFF(y)\nOUTPUT(q0)\nOUTPUT(q1)\n",
        );
        let r = lint_netlist(&nl);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn undriven_and_floating_are_distinguished() {
        // `ghost` feeds a gate; `phantom` feeds a DFF directly.
        let nl = bench("INPUT(a)\ny = AND(a, ghost)\nq = DFF(phantom)\nOUTPUT(y)\n");
        let r = lint_netlist(&nl);
        assert!(r.has_code(codes::UNDRIVEN_NET), "{}", r.render_human());
        assert!(
            r.has_code(codes::FLOATING_DFF_INPUT),
            "{}",
            r.render_human()
        );
        assert_eq!(r.error_count(), 2);
        let undriven = r
            .diagnostics
            .iter()
            .find(|d| d.code == codes::UNDRIVEN_NET)
            .unwrap();
        assert_eq!(undriven.nets, vec!["ghost".to_owned()]);
    }

    #[test]
    fn cycle_reports_full_path() {
        let nl = bench("INPUT(a)\nx = AND(a, y)\ny = OR(a, x)\nOUTPUT(y)\n");
        let r = lint_netlist(&nl);
        assert!(r.has_code(codes::COMB_CYCLE));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == codes::COMB_CYCLE)
            .unwrap();
        assert_eq!(d.nets.len(), 2, "both nets on the cycle: {:?}", d.nets);
        assert!(d.nets.contains(&"x".to_owned()) && d.nets.contains(&"y".to_owned()));
        // The rendered path closes the loop: `x -> y -> x` or `y -> x -> y`.
        assert!(d.message.contains(" -> "), "{}", d.message);
        let first = d.nets.first().unwrap();
        assert!(d.message.ends_with(&format!("-> {first}")), "{}", d.message);
    }

    #[test]
    fn dead_logic_is_a_warning_not_an_error() {
        let nl = bench(
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\ndead = XOR(a, b)\n\
             q = DFF(x)\nOUTPUT(q)\n",
        );
        let r = lint_netlist(&nl);
        assert!(!r.has_errors(), "{}", r.render_human());
        assert!(r.has_code(codes::DEAD_LOGIC));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == codes::DEAD_LOGIC)
            .unwrap();
        assert_eq!(d.gates, vec!["dead".to_owned()]);
    }

    #[test]
    fn logic_behind_a_register_is_live() {
        // stage1 feeds q0; q0 feeds stage2 which feeds q1 — both gates live.
        let nl = bench(
            "INPUT(a)\nstage1 = NOT(a)\nq0 = DFF(stage1)\n\
             stage2 = NOT(q0)\nq1 = DFF(stage2)\nOUTPUT(q1)\n",
        );
        let r = lint_netlist(&nl);
        assert!(!r.has_code(codes::DEAD_LOGIC), "{}", r.render_human());
    }

    #[test]
    fn const_inputs_flag_foldable_gates() {
        let nl = bench("INPUT(a)\none = CONST1\ny = AND(a, one)\nq = DFF(y)\nOUTPUT(q)\n");
        let r = lint_netlist(&nl);
        assert!(r.has_code(codes::CONST_FOLDABLE), "{}", r.render_human());
        assert!(!r.has_errors());
    }

    #[test]
    fn arity_mismatch_on_hand_built_netlist() {
        // The parser rejects bad arity, so build the netlist by hand and
        // smuggle the defect in through replace_gate_logic's debug gap:
        // construct a valid gate then check the lint still re-validates.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate(GateType::And, vec![a, b], y).unwrap();
        let q = nl.add_net("q");
        nl.add_dff(y, q).unwrap();
        nl.add_output(q);
        assert!(lint_netlist(&nl).is_clean());
    }

    #[test]
    fn bench_parse_errors_map_to_codes() {
        let cases: &[(&str, &str)] = &[
            ("INPUT(a)\nfoo bar baz\n", codes::PARSE_ERROR),
            ("INPUT(a)\ny = FROB(a, a)\nOUTPUT(y)\n", codes::UNKNOWN_GATE),
            ("INPUT(a)\nINPUT(a)\n", codes::DUPLICATE_NET),
            (
                "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)\n",
                codes::ARITY_MISMATCH,
            ),
            (
                "INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)\n",
                codes::MULTI_DRIVEN_NET,
            ),
        ];
        for (src, code) in cases {
            let report =
                lint_source("t", src, SourceFormat::Bench).expect_err("fixture must not parse");
            assert_eq!(report.diagnostics.len(), 1, "{src:?}");
            let d = &report.diagnostics[0];
            assert_eq!(d.code, *code, "{src:?} -> {}", d.message);
            assert_eq!(d.severity, Severity::Error);
            assert!(d.message.contains("line "), "{}", d.message);
        }
    }

    #[test]
    fn verilog_parse_errors_map_to_codes() {
        let unknown =
            "module t(a, y);\n  input a;\n  output y;\n  magic_cell g0 (y, a);\nendmodule\n";
        let report = lint_source("t", unknown, SourceFormat::Verilog).unwrap_err();
        assert_eq!(report.diagnostics[0].code, codes::UNKNOWN_GATE);

        let vector = "module t(a, y);\n  input a[3:0];\n  output y;\nendmodule\n";
        let report = lint_source("t", vector, SourceFormat::Verilog).unwrap_err();
        assert_eq!(report.diagnostics[0].code, codes::PARSE_ERROR);

        let redecl = "module t(a, y);\n  input a;\n  input a;\n  output y;\nendmodule\n";
        let report = lint_source("t", redecl, SourceFormat::Verilog).unwrap_err();
        assert_eq!(report.diagnostics[0].code, codes::DUPLICATE_NET);
        assert_eq!(report.diagnostics[0].nets, vec!["a".to_owned()]);

        let report = lint_source("t", "// empty\n", SourceFormat::Verilog).unwrap_err();
        assert_eq!(report.diagnostics[0].code, codes::PARSE_ERROR);
    }

    #[test]
    fn lint_source_accepts_clean_inputs() {
        let nl = lint_source(
            "t",
            "INPUT(a)\ny = NOT(a)\nq = DFF(y)\nOUTPUT(q)\n",
            SourceFormat::Bench,
        )
        .expect("parses");
        assert_eq!(nl.gate_count(), 1);
        let v = "module t(a, y);\n  input a;\n  output y;\n  not g0 (y, a);\nendmodule\n";
        assert!(lint_source("t", v, SourceFormat::Verilog).is_ok());
    }
}
