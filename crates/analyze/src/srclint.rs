//! `rebert lint-src`: concurrency-hygiene lints over the workspace's
//! own Rust sources.
//!
//! The workspace's concurrency story depends on conventions no compiler
//! checks: every blocking lock goes through `rebert_sync` (so it joins
//! the lock-order graph and recovers from poisoning), cross-thread
//! publication never uses `Ordering::Relaxed` stores, and request-path
//! code never `.unwrap()`s a lock result. These lints make the
//! conventions mechanical — a blocking CI gate instead of review lore.
//!
//! The pass is built on a hand-rolled lexer (no `syn`, no proc-macro
//! stack: this workspace is dependency-free and the lints only need
//! identifier/punctuation streams with comments and strings stripped).
//! The lexer understands line comments, nested block comments, string /
//! raw-string / byte-string / char literals, and the char-vs-lifetime
//! ambiguity, so a `"std::sync::Mutex"` inside a doc comment or string
//! never trips a lint.
//!
//! Findings are suppressed by an inline `// rebert-lint: allow(<code>)`
//! comment on the same line or the line directly above — each allow
//! should carry a justification, which is exactly the documentation the
//! convention wants at every intentional exception.

use std::path::Path;

use crate::codes;
use crate::diag::{Diagnostic, Report, Severity};

/// The `std::sync` types that must not be used outside `crates/sync`.
const WRAPPED_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// One token the lints care about, tagged with its 1-indexed line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// The lexed view of one file: significant tokens plus the
/// `rebert-lint: allow(...)` suppressions found in comments.
struct Lexed {
    toks: Vec<(Tok, usize)>,
    /// `(line, code)` pairs allowed by inline comments.
    allows: Vec<(usize, String)>,
}

/// Lexes Rust source into identifier/punctuation tokens, skipping
/// whitespace, comments (collecting `rebert-lint:` suppressions),
/// and every literal form that could contain lint-looking text.
fn lex(text: &str) -> Lexed {
    let b: Vec<char> = text.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let at = |i: usize| if i < n { b[i] } else { '\0' };
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            // Line comment (includes `///` docs): scan to end of line,
            // harvesting suppressions.
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let comment: String = b[start..i].iter().collect();
            collect_allows(&comment, line, &mut allows);
        } else if c == '/' && at(i + 1) == '*' {
            // Block comment; Rust block comments nest.
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if at(i) == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if at(i) == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        } else if (c == 'r' || (c == 'b' && at(i + 1) == 'r'))
            && raw_string_hashes(&b, i + if c == 'b' { 2 } else { 1 }).is_some()
        {
            // Raw (byte) string: `r"…"`, `r#"…"#`, `br##"…"##`, …
            let after_prefix = i + if c == 'b' { 2 } else { 1 };
            let hashes = raw_string_hashes(&b, after_prefix).expect("checked above");
            i = after_prefix + hashes + 1; // past the opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' && (1..=hashes).all(|k| at(i + k) == '#') {
                    i += 1 + hashes;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
        } else if c == '"' || (c == 'b' && at(i + 1) == '"') {
            // String / byte-string literal with escapes.
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
        } else if c == '\'' || (c == 'b' && at(i + 1) == '\'') {
            // Char literal vs lifetime. `'\…'` and `'x'` are chars;
            // `'ident` with no closing quote is a lifetime (consume the
            // identifier so `&'static mut` cannot fake a `static mut`).
            let q = i + if c == 'b' { 1 } else { 0 };
            if at(q + 1) == '\\' {
                i = q + 2;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
            } else if at(q + 2) == '\'' {
                i = q + 3;
            } else {
                i = q + 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push((Tok::Ident(b[start..i].iter().collect()), line));
        } else if c.is_ascii_digit() {
            // Numbers (incl. `1_000`, `0xff`, `1.5e-3`); tokens the
            // lints never inspect, but they must not shed stray idents.
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if at(i) == '.' && at(i + 1).is_ascii_digit() {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
        } else {
            toks.push((Tok::Punct(c), line));
            i += 1;
        }
    }
    Lexed { toks, allows }
}

/// `Some(hash_count)` when position `i` starts a raw-string opener
/// (`#`* then `"`), else `None`.
fn raw_string_hashes(b: &[char], i: usize) -> Option<usize> {
    let mut k = 0usize;
    while i + k < b.len() && b[i + k] == '#' {
        k += 1;
    }
    (i + k < b.len() && b[i + k] == '"').then_some(k)
}

/// Harvests every `allow(code[, code…])` after a `rebert-lint:` marker.
fn collect_allows(comment: &str, line: usize, allows: &mut Vec<(usize, String)>) {
    let Some(rest) = comment.split("rebert-lint:").nth(1) else {
        return;
    };
    let mut rest = rest;
    while let Some(open) = rest.find("allow(") {
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else { return };
        for code in after[..close].split(',') {
            allows.push((line, code.trim().to_owned()));
        }
        rest = &after[close..];
    }
}

/// Whether the finding `(line, code)` is suppressed by an allow comment
/// on the same line or the line directly above.
fn allowed(allows: &[(usize, String)], line: usize, code: &str) -> bool {
    allows
        .iter()
        .any(|(l, c)| c == code && (*l == line || *l + 1 == line))
}

/// Lints one Rust source file. `file` labels the diagnostics;
/// `request_path` turns on the lock-result-unwrap lint (scoped to the
/// serve/registry request path in tree mode, always on for single-file
/// runs so fixtures exercise every code).
pub fn lint_rust_source(file: &str, text: &str, request_path: bool) -> Report {
    let lexed = lex(text);
    let toks = &lexed.toks;
    let mut report = Report::new();
    let mut push = |code: &'static str, severity: Severity, line: usize, message: String| {
        if !allowed(&lexed.allows, line, code) {
            report.push(Diagnostic::new(code, severity, message).at(file, line));
        }
    };

    let ident = |k: usize| match toks.get(k) {
        Some((Tok::Ident(s), _)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |k: usize, c: char| matches!(toks.get(k), Some((Tok::Punct(p), _)) if *p == c);
    let line_of = |k: usize| toks.get(k).map_or(0, |(_, l)| *l);

    for k in 0..toks.len() {
        // raw-sync-primitive: `std::sync::Mutex` (path form) or
        // `use std::sync::{…, Mutex, …}` (group form, any nesting).
        if ident(k) == Some("std")
            && punct(k + 1, ':')
            && punct(k + 2, ':')
            && ident(k + 3) == Some("sync")
            && punct(k + 4, ':')
            && punct(k + 5, ':')
        {
            let head = k + 6;
            if let Some(name) = ident(head).filter(|p| WRAPPED_PRIMITIVES.contains(p)) {
                let name = name.to_owned();
                push(
                    codes::RAW_SYNC_PRIMITIVE,
                    Severity::Warning,
                    line_of(head),
                    format!(
                        "raw `std::sync::{name}` — use the `rebert_sync` wrapper so this \
                         lock joins the workspace lock-order graph"
                    ),
                );
            } else if punct(head, '{') {
                let mut depth = 1usize;
                let mut j = head + 1;
                while j < toks.len() && depth > 0 {
                    match &toks[j].0 {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth -= 1,
                        Tok::Ident(s) if WRAPPED_PRIMITIVES.contains(&s.as_str()) => {
                            push(
                                codes::RAW_SYNC_PRIMITIVE,
                                Severity::Warning,
                                toks[j].1,
                                format!(
                                    "raw `std::sync::{s}` — use the `rebert_sync` wrapper so \
                                     this lock joins the workspace lock-order graph"
                                ),
                            );
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }

        // relaxed-publication-store: `.store(…, Ordering::Relaxed)`.
        // Relaxed is fine for counters and cancellation flags (loads
        // and RMWs stay unflagged) but cannot *publish* data another
        // thread then reads through a pointer; every intentional flag
        // store documents itself with an allow comment.
        if punct(k, '.') && ident(k + 1) == Some("store") && punct(k + 2, '(') {
            let mut depth = 1usize;
            let mut j = k + 3;
            let mut relaxed = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].0 {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::Ident(s) if s == "Relaxed" => relaxed = true,
                    _ => {}
                }
                j += 1;
            }
            if relaxed {
                push(
                    codes::RELAXED_PUBLICATION_STORE,
                    Severity::Warning,
                    line_of(k + 1),
                    "`store(…, Ordering::Relaxed)` — a Relaxed store cannot publish data to \
                     another thread; use Release, or justify the flag/counter with an allow \
                     comment"
                        .to_owned(),
                );
            }
        }

        // lock-result-unwrap: `.lock().unwrap()` / `.read().expect(…)`
        // on the request path. A panicked holder poisons a std lock and
        // turns every later request into a panic; `rebert_sync` locks
        // recover instead.
        if request_path
            && punct(k, '.')
            && matches!(ident(k + 1), Some("lock" | "read" | "write"))
            && punct(k + 2, '(')
            && punct(k + 3, ')')
            && punct(k + 4, '.')
            && matches!(ident(k + 5), Some("unwrap" | "expect"))
        {
            let (m, u) = (
                ident(k + 1).expect("matched above").to_owned(),
                ident(k + 5).expect("matched above").to_owned(),
            );
            push(
                codes::LOCK_RESULT_UNWRAP,
                Severity::Warning,
                line_of(k + 5),
                format!(
                    "`.{m}().{u}(…)` on a lock result in a request path — one panicked \
                     holder poisons the lock and every later request panics with it; use \
                     the poison-recovering `rebert_sync` locks"
                ),
            );
        }

        // static-mut: always a data race waiting to happen under
        // threads (the lexer consumes lifetimes, so `&'static mut` is
        // not a false positive).
        if ident(k) == Some("static") && ident(k + 1) == Some("mut") {
            push(
                codes::STATIC_MUT,
                Severity::Error,
                line_of(k),
                "`static mut` is unsound to touch from two threads — use an atomic, a \
                 `rebert_sync` lock, or `OnceLock`"
                    .to_owned(),
            );
        }
    }
    report
}

/// Lints `root`: a single `.rs` file (all lints on, for fixtures), or a
/// directory tree. Tree mode skips `target/`, `.git/`, `fixtures/`
/// directories and `crates/sync` itself (the wrapper legitimately names
/// the raw primitives it wraps), and scopes the lock-result-unwrap lint
/// to `crates/serve` + `crates/registry` — the request path, where a
/// poisoned lock wedges a daemon rather than one offline run.
///
/// Diagnostics come back sorted by `(file, line)` so output is stable
/// across filesystems.
///
/// # Errors
///
/// A human-readable message when `root` or a source file under it
/// cannot be read.
pub fn lint_rust_tree(root: &Path) -> Result<Report, String> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read `{}`: {e}", p.display()))
    };
    if root.is_file() {
        return Ok(lint_rust_source(
            &root.display().to_string(),
            &read(root)?,
            true,
        ));
    }
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::new();
    for rel in files {
        let label = rel.to_string_lossy().replace('\\', "/");
        let request_path =
            label.starts_with("crates/serve/") || label.starts_with("crates/registry/");
        report.extend(lint_rust_source(
            &label,
            &read(&root.join(&rel))?,
            request_path,
        ));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` as paths relative to
/// `root`, skipping build output, VCS metadata, lint fixtures, and the
/// sync wrapper crate.
fn collect_rust_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir `{}`: {e}", dir.display()))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| format!("cannot read dir entry under `{}`: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            if name == "sync" && dir.file_name().is_some_and(|d| d == "crates") {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Report {
        lint_rust_source("t.rs", text, true)
    }

    #[test]
    fn flags_raw_primitives_in_path_and_group_form() {
        let r = lint("use std::sync::Mutex;\nlet c = std::sync::Condvar::new();\n");
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r
            .diagnostics
            .iter()
            .all(|d| d.code == codes::RAW_SYNC_PRIMITIVE));
        assert_eq!(r.diagnostics[0].line, Some(1));
        assert_eq!(r.diagnostics[1].line, Some(2));

        let r = lint("use std::sync::{atomic::AtomicBool, Arc,\n    RwLock};\n");
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, Some(2), "group member on line 2");
        assert!(r.diagnostics[0].message.contains("RwLock"));

        // Arc, mpsc, and atomics are not wrapped types.
        assert!(lint("use std::sync::{mpsc, Arc};\n").is_clean());
        // loom's primitives are the wrapper's own business.
        assert!(lint("use loom::sync::Mutex;\n").is_clean());
    }

    #[test]
    fn comments_strings_and_lifetimes_do_not_trip_lints() {
        let clean = r##"
// std::sync::Mutex in a line comment
/// docs: std::sync::Mutex
/* block /* nested: std::sync::Condvar */ still comment */
const S: &str = "std::sync::Mutex";
const R: &str = r#"std::sync::RwLock and a " quote"#;
const C: char = '"';
fn f(x: &'static mut u8) {}
"##;
        let r = lint(clean);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn flags_relaxed_stores_but_not_loads_or_rmws() {
        let r = lint("flag.store(true, Ordering::Relaxed);\n");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, codes::RELAXED_PUBLICATION_STORE);
        assert!(lint("let v = flag.load(Ordering::Relaxed);\n").is_clean());
        assert!(lint("n.fetch_add(1, Ordering::Relaxed);\n").is_clean());
        assert!(lint("flag.store(true, Ordering::Release);\n").is_clean());
    }

    #[test]
    fn flags_lock_result_unwraps_only_on_the_request_path() {
        let src = "let g = self.state.lock().unwrap();\nlet h = s.read().expect(\"poisoned\");\n";
        let r = lint_rust_source("t.rs", src, true);
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r
            .diagnostics
            .iter()
            .all(|d| d.code == codes::LOCK_RESULT_UNWRAP));
        assert!(lint_rust_source("t.rs", src, false).is_clean());
        // Calls with arguments are io reads/writes, not lock results.
        assert!(lint_rust_source("t.rs", "f.write(buf).unwrap();\n", true).is_clean());
    }

    #[test]
    fn flags_static_mut_as_an_error() {
        let r = lint("static mut COUNTER: u32 = 0;\n");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, codes::STATIC_MUT);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert!(r.has_errors());
    }

    #[test]
    fn allow_comments_suppress_on_the_same_and_previous_line() {
        let same = "use std::sync::Mutex; // rebert-lint: allow(raw-sync-primitive)\n";
        assert!(lint(same).is_clean());
        let above = "// test-only bootstrap — rebert-lint: allow(raw-sync-primitive)\nuse std::sync::Mutex;\n";
        assert!(lint(above).is_clean());
        let wrong_code = "use std::sync::Mutex; // rebert-lint: allow(static-mut)\n";
        assert_eq!(lint(wrong_code).diagnostics.len(), 1, "code must match");
        let too_far = "// rebert-lint: allow(raw-sync-primitive)\n\nuse std::sync::Mutex;\n";
        assert_eq!(
            lint(too_far).diagnostics.len(),
            1,
            "two lines up is too far"
        );
    }

    #[test]
    fn diagnostics_carry_exact_file_and_line_in_json() {
        let r = lint("\n\nuse std::sync::Mutex;\n");
        let json = r.to_json().to_string();
        let v = rebert::json::Json::parse(&json).expect("valid json");
        let d = &v
            .get("diagnostics")
            .and_then(rebert::json::Json::as_array)
            .unwrap()[0];
        assert_eq!(
            d.get("file").and_then(rebert::json::Json::as_str),
            Some("t.rs")
        );
        assert_eq!(
            d.get("line").and_then(rebert::json::Json::as_usize),
            Some(3)
        );
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The gate CI runs, as a unit test: every lint over every crate
        // in this repository, denying warnings. CARGO_MANIFEST_DIR is
        // `crates/analyze`, so the workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let report = lint_rust_tree(root).expect("workspace sources readable");
        assert!(
            !report.fails(true),
            "workspace must pass `lint-src --deny warnings`:\n{}",
            report.render_human()
        );
    }
}
