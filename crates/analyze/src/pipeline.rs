//! Pipeline-level pre-flight checks: conditions that parse and validate
//! cleanly but degrade recovery quality — truncated cones, out-of-vocab
//! tokens against a checkpoint, and a Jaccard threshold that filters
//! every pair.

use rebert::{bit_sequences, jaccard, Vocab};
use rebert_netlist::{binarize, Cone, Netlist};

use crate::codes;
use crate::diag::{Diagnostic, Report, Severity};
use crate::lints::lint_netlist;

/// The paper's cone depth bound `k`; bits with deeper fan-in truncate.
pub const DEFAULT_K_LEVELS: usize = 6;

/// All-pairs Jaccard is quadratic; skip the degenerate-threshold check
/// past this many bits rather than stall the lint pass.
const JACCARD_PAIR_LIMIT: usize = 256;

/// Knobs for the pipeline-level checks in [`lint_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct LintOptions {
    /// Cone depth bound used to audit truncation.
    pub k_levels: usize,
    /// Tree-embedding code width used when materialising token sequences.
    pub code_width: usize,
    /// When set, warn if *every* bit pair falls below this Jaccard
    /// similarity (the pre-filter would make every bit a singleton word).
    pub jaccard_threshold: Option<f64>,
    /// When set, warn about tokens whose vocabulary id is outside a
    /// checkpoint's embedding table of this many rows.
    pub vocab_rows: Option<usize>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            k_levels: DEFAULT_K_LEVELS,
            code_width: 32,
            jaccard_threshold: None,
            vocab_rows: None,
        }
    }
}

/// Runs the structural battery plus the pipeline-level checks.
///
/// Pipeline checks binarize the netlist and trace cones, which assumes a
/// structurally sound input — so they are skipped when the structural
/// pass reports any error.
pub fn lint_with(nl: &Netlist, opts: &LintOptions) -> Report {
    let mut report = lint_netlist(nl);
    if report.has_errors() {
        return report;
    }
    lint_cone_truncation(nl, opts, &mut report);
    if opts.vocab_rows.is_some() || opts.jaccard_threshold.is_some() {
        lint_sequences(nl, opts, &mut report);
    }
    report
}

/// Bits whose fan-in runs deeper than `k` levels: their token sequences
/// stop at the cut, so the model never sees the logic beyond it.
fn lint_cone_truncation(nl: &Netlist, opts: &LintOptions, report: &mut Report) {
    let (bin, _) = binarize(nl);
    let bits = bin.bits();
    if bits.is_empty() {
        return;
    }
    // Trace with one extra level of budget: a cone that still reaches
    // depth k + 1 was cut short at k.
    let truncated: Vec<String> = bits
        .iter()
        .filter(|&&bit| Cone::trace(&bin, bit, opts.k_levels + 1).depth > opts.k_levels)
        .map(|&bit| bin.net_name(bit).to_owned())
        .collect();
    if !truncated.is_empty() {
        report.push(
            Diagnostic::new(
                codes::CONE_TRUNCATED,
                Severity::Warning,
                format!(
                    "{} of {} bits have fan-in deeper than k = {} levels; \
                     their token sequences are truncated",
                    truncated.len(),
                    bits.len(),
                    opts.k_levels
                ),
            )
            .with_nets(truncated),
        );
    }
}

/// Token-sequence checks that need the materialised per-bit sequences:
/// vocabulary coverage against a checkpoint and the static
/// degenerate-threshold pre-check.
fn lint_sequences(nl: &Netlist, opts: &LintOptions, report: &mut Report) {
    let seqs = bit_sequences(nl, opts.k_levels, opts.code_width);
    if seqs.is_empty() {
        return;
    }

    if let Some(rows) = opts.vocab_rows {
        let vocab = Vocab::new();
        let total: usize = seqs.iter().map(|(toks, _)| toks.len()).sum();
        let oov: usize = seqs
            .iter()
            .flat_map(|(toks, _)| toks.iter())
            .filter(|&&t| vocab.id(t) >= rows)
            .count();
        if oov > 0 {
            report.push(Diagnostic::new(
                codes::VOCAB_OOV,
                Severity::Warning,
                format!(
                    "{oov} of {total} tokens ({:.1}%) fall outside the \
                     checkpoint vocabulary of {rows} rows; their embeddings \
                     are undefined",
                    100.0 * oov as f64 / total.max(1) as f64
                ),
            ));
        }
    }

    if let Some(threshold) = opts.jaccard_threshold {
        let n = seqs.len();
        if (2..=JACCARD_PAIR_LIMIT).contains(&n) {
            let mut best = f64::NEG_INFINITY;
            for i in 0..n {
                for j in (i + 1)..n {
                    best = best.max(jaccard(&seqs[i].0, &seqs[j].0));
                }
            }
            if best < threshold {
                report.push(Diagnostic::new(
                    codes::DEGENERATE_THRESHOLD,
                    Severity::Warning,
                    format!(
                        "best pairwise Jaccard similarity {best:.3} is below \
                         the pre-filter threshold {threshold}; every bit pair \
                         would be filtered and every bit becomes a singleton \
                         word"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::parse_bench;

    fn bench(src: &str) -> Netlist {
        parse_bench("t", src).expect("fixture parses")
    }

    /// A NOT chain of `depth` gates feeding one DFF.
    fn chain(depth: usize) -> Netlist {
        let mut src = String::from("INPUT(a)\n");
        let mut prev = "a".to_owned();
        for i in 0..depth {
            src.push_str(&format!("n{i} = NOT({prev})\n"));
            prev = format!("n{i}");
        }
        src.push_str(&format!("q = DFF({prev})\nOUTPUT(q)\n"));
        bench(&src)
    }

    #[test]
    fn shallow_cones_pass_deep_cones_warn() {
        let opts = LintOptions::default();
        let shallow = lint_with(&chain(3), &opts);
        assert!(shallow.is_clean(), "{}", shallow.render_human());

        let deep = lint_with(&chain(9), &opts);
        assert!(
            deep.has_code(codes::CONE_TRUNCATED),
            "{}",
            deep.render_human()
        );
        assert!(!deep.has_errors());
        let d = deep
            .diagnostics
            .iter()
            .find(|d| d.code == codes::CONE_TRUNCATED)
            .unwrap();
        assert!(d.message.contains("1 of 1 bits"), "{}", d.message);
        assert_eq!(d.nets.len(), 1);
    }

    #[test]
    fn truncation_respects_configured_k() {
        let nl = chain(9);
        let relaxed = LintOptions {
            k_levels: 12,
            ..LintOptions::default()
        };
        assert!(lint_with(&nl, &relaxed).is_clean());
        let strict = LintOptions {
            k_levels: 2,
            ..LintOptions::default()
        };
        assert!(lint_with(&nl, &strict).has_code(codes::CONE_TRUNCATED));
    }

    #[test]
    fn vocab_coverage_against_checkpoint_rows() {
        let nl = chain(2);
        let full = LintOptions {
            vocab_rows: Some(Vocab::new().len()),
            ..LintOptions::default()
        };
        assert!(lint_with(&nl, &full).is_clean());

        // A checkpoint with a 2-row embedding table cannot represent
        // gate tokens at all.
        let tiny = LintOptions {
            vocab_rows: Some(2),
            ..LintOptions::default()
        };
        let r = lint_with(&nl, &tiny);
        assert!(r.has_code(codes::VOCAB_OOV), "{}", r.render_human());
        assert!(!r.has_errors());
    }

    #[test]
    fn degenerate_threshold_pre_check() {
        let nl = bench(
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\ny = OR(a, b)\n\
             q0 = DFF(x)\nq1 = DFF(y)\nOUTPUT(q0)\nOUTPUT(q1)\n",
        );
        // A threshold above 1.0 filters every pair by construction.
        let impossible = LintOptions {
            jaccard_threshold: Some(1.01),
            ..LintOptions::default()
        };
        let r = lint_with(&nl, &impossible);
        assert!(
            r.has_code(codes::DEGENERATE_THRESHOLD),
            "{}",
            r.render_human()
        );

        let permissive = LintOptions {
            jaccard_threshold: Some(0.0),
            ..LintOptions::default()
        };
        assert!(lint_with(&nl, &permissive).is_clean());
    }

    #[test]
    fn pipeline_checks_skip_on_structural_errors() {
        // Deep chain AND an undriven net: the structural error must
        // suppress the cone audit rather than binarize a broken netlist.
        let mut src = String::from("INPUT(a)\nbad = AND(a, ghost)\n");
        let mut prev = "bad".to_owned();
        for i in 0..9 {
            src.push_str(&format!("n{i} = NOT({prev})\n"));
            prev = format!("n{i}");
        }
        src.push_str(&format!("q = DFF({prev})\nOUTPUT(q)\n"));
        let r = lint_with(&bench(&src), &LintOptions::default());
        assert!(r.has_code(codes::UNDRIVEN_NET));
        assert!(!r.has_code(codes::CONE_TRUNCATED));
    }
}
