//! Static analysis for ReBERT inputs: a diagnostic framework plus a
//! battery of netlist lints and pipeline pre-flight checks.
//!
//! ReBERT's accuracy degrades *silently* on malformed or pathological
//! netlists — undriven nets binarize as constants, dead logic skews cone
//! statistics, fan-in deeper than `k` levels truncates token sequences,
//! and a non-positive maximum score degenerates the adaptive `max/3`
//! grouping threshold. This crate diagnoses those conditions up front
//! instead of letting the pipeline produce garbage words with no
//! explanation.
//!
//! Three consumers share the pass:
//!
//! * the `rebert lint` CLI subcommand (human or `--json` output),
//! * the `rebert-serve` daemon's pre-flight (422 + diagnostics JSON for
//!   hard errors instead of recovering words from a broken netlist),
//! * the pipeline warning hook ([`rebert::PipelineStats`] `warnings`),
//!   which points back at `rebert lint` for the full battery.
//!
//! Entry points: [`lint_source`] (parse + convert parse errors into
//! diagnostics), [`lint_netlist`] (structural battery on a parsed
//! netlist), and [`lint_with`] (structural battery plus the
//! [`LintOptions`]-driven pipeline checks).

#![warn(missing_docs)]

mod diag;
mod lints;
mod pipeline;
mod srclint;

pub use diag::{Diagnostic, Report, Severity};
pub use lints::{lint_netlist, lint_source, SourceFormat};
pub use pipeline::{lint_with, LintOptions, DEFAULT_K_LEVELS};
pub use srclint::{lint_rust_source, lint_rust_tree};

/// Stable diagnostic codes emitted by this crate.
///
/// Codes are kebab-case and never reused; `rebert lint --json` consumers
/// and the CI fixture battery key on them.
pub mod codes {
    /// A consumed net with no driver.
    pub const UNDRIVEN_NET: &str = "undriven-net";
    /// A net with more than one driver.
    pub const MULTI_DRIVEN_NET: &str = "multi-driven-net";
    /// A flip-flop whose data input has no driver (an undriven *bit*).
    pub const FLOATING_DFF_INPUT: &str = "floating-dff-input";
    /// A combinational cycle, reported as a full net path.
    pub const COMB_CYCLE: &str = "comb-cycle";
    /// A gate whose input count is illegal for its type.
    pub const ARITY_MISMATCH: &str = "arity-mismatch";
    /// A net name declared twice in the source.
    pub const DUPLICATE_NET: &str = "duplicate-net";
    /// An unknown gate mnemonic or cell primitive in the source.
    pub const UNKNOWN_GATE: &str = "unknown-gate";
    /// Source text that does not parse for any other reason.
    pub const PARSE_ERROR: &str = "parse-error";
    /// Gates unreachable backwards from any bit or primary output.
    pub const DEAD_LOGIC: &str = "dead-logic";
    /// Gates with a constant-driven input that a fold pass would remove.
    pub const CONST_FOLDABLE: &str = "const-foldable";
    /// Bits whose fan-in exceeds `k` levels, truncating their sequences.
    pub const CONE_TRUNCATED: &str = "cone-truncated";
    /// Tokens outside the checkpoint vocabulary.
    pub const VOCAB_OOV: &str = "vocab-oov";
    /// The Jaccard filter / score distribution degenerates grouping.
    pub const DEGENERATE_THRESHOLD: &str = "degenerate-threshold";

    // --- Rust-source concurrency-hygiene codes (`rebert lint-src`) ---

    /// A raw `std::sync::{Mutex, RwLock, Condvar}` outside `crates/sync`
    /// — locks that bypass the wrapper never join the lock-order graph.
    pub const RAW_SYNC_PRIMITIVE: &str = "raw-sync-primitive";
    /// A `store(…, Ordering::Relaxed)` — Relaxed cannot publish data to
    /// another thread; flags and counters must justify themselves with
    /// an allow comment.
    pub const RELAXED_PUBLICATION_STORE: &str = "relaxed-publication-store";
    /// `.lock().unwrap()` / `.expect(…)` on a lock result in the
    /// serve/registry request path, where one poisoned lock wedges the
    /// daemon for every later request.
    pub const LOCK_RESULT_UNWRAP: &str = "lock-result-unwrap";
    /// A `static mut` item — unsynchronized by construction.
    pub const STATIC_MUT: &str = "static-mut";

    /// Every source-lint code `rebert lint-src` can emit.
    pub const SRC_CODES: &[&str] = &[
        RAW_SYNC_PRIMITIVE,
        RELAXED_PUBLICATION_STORE,
        LOCK_RESULT_UNWRAP,
        STATIC_MUT,
    ];

    /// Every netlist code this crate can emit, for exhaustive fixture
    /// batteries.
    pub const ALL_CODES: &[&str] = &[
        UNDRIVEN_NET,
        MULTI_DRIVEN_NET,
        FLOATING_DFF_INPUT,
        COMB_CYCLE,
        ARITY_MISMATCH,
        DUPLICATE_NET,
        UNKNOWN_GATE,
        PARSE_ERROR,
        DEAD_LOGIC,
        CONST_FOLDABLE,
        CONE_TRUNCATED,
        VOCAB_OOV,
        DEGENERATE_THRESHOLD,
    ];
}
