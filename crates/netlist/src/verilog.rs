//! A structural-Verilog subset: the netlist format synthesis tools emit.
//!
//! Reverse-engineering inputs in practice are flattened gate-level
//! Verilog. This module reads and writes the scalar structural subset:
//!
//! ```verilog
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w1;
//!   nand g0 (w1, a, b);      // primitive: output first, then inputs
//!   not  g1 (y, w1);
//!   dff  r0 (q, w1);         // sequential: q output, d input
//!   assign y2 = w1;          // alias (lowered to a BUF)
//! endmodule
//! ```
//!
//! Supported primitives: `and or nand nor xor xnor not buf mux dff`,
//! `assign` aliases, `//` and `/* */` comments, multiple declarations per
//! line. Vectors (`[3:0]`) are out of scope — flattened netlists use
//! scalar bit names (`q_reg_3_` etc.), which parse fine as identifiers.

use std::collections::HashMap;
use std::fmt;

use crate::gate::GateType;
use crate::netlist::{Netlist, NetlistError};

/// Error produced while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerilogError {
    /// A construct outside the supported subset. Carries the 1-based line.
    Unsupported {
        /// 1-based line number.
        line: usize,
        /// Offending text.
        text: String,
    },
    /// Malformed syntax.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Offending text.
        text: String,
    },
    /// No `module` declaration found.
    MissingModule,
    /// A structural invariant was violated while building the netlist.
    Netlist {
        /// 1-based line number.
        line: usize,
        /// The underlying error.
        source: NetlistError,
    },
}

impl VerilogError {
    /// The 1-based source line the error points at, when the error is
    /// anchored to one (`MissingModule` is a whole-file property).
    pub fn line(&self) -> Option<usize> {
        match self {
            VerilogError::Unsupported { line, .. }
            | VerilogError::Syntax { line, .. }
            | VerilogError::Netlist { line, .. } => Some(*line),
            VerilogError::MissingModule => None,
        }
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Unsupported { line, text } => {
                write!(f, "line {line}: unsupported construct `{text}`")
            }
            VerilogError::Syntax { line, text } => {
                write!(f, "line {line}: syntax error `{text}`")
            }
            VerilogError::MissingModule => write!(f, "no module declaration found"),
            VerilogError::Netlist { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for VerilogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerilogError::Netlist { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut in_block = false;
    while let Some(c) = chars.next() {
        if in_block {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_block = false;
            } else if c == '\n' {
                out.push('\n'); // keep line numbers stable
            }
            continue;
        }
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                    continue;
                }
                Some('*') => {
                    chars.next();
                    in_block = true;
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    out
}

/// Parses the structural-Verilog subset into a [`Netlist`].
///
/// The module name becomes the design name (an explicit `name` overrides
/// it when non-empty).
///
/// # Errors
///
/// Returns a [`VerilogError`] locating the first problem.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// module half_adder (a, b, s, c);
///   input a, b;
///   output s, c;
///   xor g0 (s, a, b);
///   and g1 (c, a, b);
/// endmodule
/// ";
/// let nl = rebert_netlist::parse_verilog("", src)?;
/// assert_eq!(nl.name(), "half_adder");
/// assert_eq!(nl.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_verilog(name: &str, src: &str) -> Result<Netlist, VerilogError> {
    let cleaned = strip_comments(src);
    // Split into statements terminated by `;`, tracking line numbers.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut stmt_line = 1usize;
    let mut line = 1usize;
    for c in cleaned.chars() {
        if c == '\n' {
            line += 1;
        }
        if c == ';' {
            statements.push((stmt_line, current.trim().to_owned()));
            current.clear();
            stmt_line = line;
        } else {
            if current.trim().is_empty() {
                stmt_line = line;
            }
            current.push(c);
        }
    }
    // `endmodule` has no semicolon; whatever remains must be it or blank.
    let tail = current.trim();
    if !tail.is_empty() && tail != "endmodule" {
        return Err(VerilogError::Syntax {
            line: stmt_line,
            text: tail.chars().take(40).collect(),
        });
    }

    let mut module_name = String::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // (line, gate kind, output, inputs)
    let mut instances: Vec<(usize, String, String, Vec<String>)> = Vec::new();

    for (lineno, stmt) in &statements {
        let stmt = stmt.replace(['\n', '\r'], " ");
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            continue;
        }
        let (head, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
        match head {
            "module" => {
                let rest = rest.trim();
                let name_end = rest
                    .find(|c: char| c == '(' || c.is_whitespace())
                    .unwrap_or(rest.len());
                module_name = rest[..name_end].to_owned();
                // Port list is re-declared by input/output statements.
            }
            "input" | "output" | "wire" | "reg" => {
                let names = rest
                    .split(',')
                    .map(|n| n.trim().trim_end_matches(';').to_owned())
                    .filter(|n| !n.is_empty());
                for n in names {
                    if n.contains('[') {
                        return Err(VerilogError::Unsupported {
                            line: *lineno,
                            text: format!("vector declaration `{n}`"),
                        });
                    }
                    match head {
                        // A redeclared port would otherwise be silently
                        // uniquified by the netlist arena ("a" -> "a_1"),
                        // disconnecting it from its uses.
                        "input" if inputs.contains(&n) => {
                            return Err(VerilogError::Netlist {
                                line: *lineno,
                                source: NetlistError::DuplicateNet(n),
                            });
                        }
                        "output" if outputs.contains(&n) => {
                            return Err(VerilogError::Netlist {
                                line: *lineno,
                                source: NetlistError::DuplicateNet(n),
                            });
                        }
                        "input" => inputs.push(n),
                        "output" => outputs.push(n),
                        _ => {} // wires/regs are implicit
                    }
                }
            }
            "assign" => {
                let (lhs, rhs) = rest.split_once('=').ok_or_else(|| VerilogError::Syntax {
                    line: *lineno,
                    text: stmt.to_owned(),
                })?;
                let rhs = rhs.trim();
                if !is_identifier(rhs) {
                    return Err(VerilogError::Unsupported {
                        line: *lineno,
                        text: format!("assign expression `{rhs}` (aliases only)"),
                    });
                }
                instances.push((
                    *lineno,
                    "buf".to_owned(),
                    lhs.trim().to_owned(),
                    vec![rhs.to_owned()],
                ));
            }
            prim => {
                // `<prim> <instance_name> ( out, in... )`
                let open = rest.find('(').ok_or_else(|| VerilogError::Syntax {
                    line: *lineno,
                    text: stmt.to_owned(),
                })?;
                let close = rest.rfind(')').ok_or_else(|| VerilogError::Syntax {
                    line: *lineno,
                    text: stmt.to_owned(),
                })?;
                let ports: Vec<String> = rest[open + 1..close]
                    .split(',')
                    .map(|p| p.trim().to_owned())
                    .filter(|p| !p.is_empty())
                    .collect();
                if ports.len() < 2 {
                    return Err(VerilogError::Syntax {
                        line: *lineno,
                        text: stmt.to_owned(),
                    });
                }
                instances.push((
                    *lineno,
                    prim.to_ascii_lowercase(),
                    ports[0].clone(),
                    ports[1..].to_vec(),
                ));
            }
        }
    }

    if module_name.is_empty() {
        return Err(VerilogError::MissingModule);
    }
    let design = if name.is_empty() { &module_name } else { name };
    let mut nl = Netlist::new(design);
    let mut ids: HashMap<String, crate::NetId> = HashMap::new();
    for n in &inputs {
        let id = nl.add_input(n);
        ids.insert(n.clone(), id);
    }
    let intern = |nl: &mut Netlist, ids: &mut HashMap<String, crate::NetId>, n: &str| {
        if let Some(&id) = ids.get(n) {
            id
        } else {
            let id = nl.add_net(n);
            ids.insert(n.to_owned(), id);
            id
        }
    };
    for (lineno, kind, out_name, in_names) in &instances {
        let out = intern(&mut nl, &mut ids, out_name);
        let ins: Vec<_> = in_names
            .iter()
            .map(|n| intern(&mut nl, &mut ids, n))
            .collect();
        if kind == "dff" {
            if ins.len() != 1 {
                return Err(VerilogError::Syntax {
                    line: *lineno,
                    text: format!("dff takes one data input, got {}", ins.len()),
                });
            }
            nl.add_dff(ins[0], out)
                .map_err(|source| VerilogError::Netlist {
                    line: *lineno,
                    source,
                })?;
        } else {
            let gtype: GateType = kind.parse().map_err(|_| VerilogError::Unsupported {
                line: *lineno,
                text: format!("primitive `{kind}`"),
            })?;
            nl.add_gate(gtype, ins, out)
                .map_err(|source| VerilogError::Netlist {
                    line: *lineno,
                    source,
                })?;
        }
    }
    for n in &outputs {
        let id = *ids.entry(n.clone()).or_insert_with(|| nl.add_net(n));
        nl.add_output(id);
    }
    Ok(nl)
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Serializes a netlist as structural Verilog accepted by
/// [`parse_verilog`].
pub fn write_verilog(nl: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = nl
        .primary_inputs()
        .iter()
        .chain(nl.primary_outputs())
        .map(|&n| nl.net_name(n))
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        sanitize(nl.name()),
        ports.join(", ")
    ));
    for &pi in nl.primary_inputs() {
        out.push_str(&format!("  input {};\n", nl.net_name(pi)));
    }
    for &po in nl.primary_outputs() {
        out.push_str(&format!("  output {};\n", nl.net_name(po)));
    }
    for (gi, g) in nl.gates().iter().enumerate() {
        let ins: Vec<&str> = g.inputs.iter().map(|&n| nl.net_name(n)).collect();
        out.push_str(&format!(
            "  {} g{gi} ({}, {});\n",
            g.gtype.mnemonic().to_ascii_lowercase(),
            nl.net_name(g.output),
            ins.join(", ")
        ));
    }
    for (fi, ff) in nl.dffs().iter().enumerate() {
        out.push_str(&format!(
            "  dff r{fi} ({}, {});\n",
            nl.net_name(ff.q),
            nl.net_name(ff.d)
        ));
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "top".to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    const COUNTER: &str = "
/* 2-bit counter with enable */
module counter (en, q1);
  input en;
  output q1;
  wire nq0, t, nq1; // next-state nets
  xor x0 (nq0, q0, en);
  and a0 (t, q0, en);
  xor x1 (nq1, q1, t);
  dff r0 (q0, nq0);
  dff r1 (q1, nq1);
endmodule
";

    #[test]
    fn parses_counter() {
        let nl = parse_verilog("", COUNTER).expect("parse");
        assert_eq!(nl.name(), "counter");
        assert_eq!(nl.gate_count(), 3);
        assert_eq!(nl.dff_count(), 2);
        assert!(nl.validate().is_ok());
        let mut sim = Simulator::new(&nl).expect("sim");
        for _ in 0..3 {
            sim.step(&[true]);
        }
        assert_eq!(sim.state(), &[true, true]);
    }

    #[test]
    fn assign_becomes_buf() {
        let src = "
module alias_demo (a, y);
  input a;
  output y;
  assign y = a;
endmodule
";
        let nl = parse_verilog("", src).expect("parse");
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gates()[0].gtype, GateType::Buf);
    }

    #[test]
    fn comments_do_not_break_line_numbers() {
        let src = "
module m (a, y); // ports
  input a;
  /* block
     comment */
  output y;
  frobnicate g0 (y, a);
endmodule
";
        let err = parse_verilog("", src).unwrap_err();
        match err {
            VerilogError::Unsupported { line, .. } => assert_eq!(line, 7),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn vectors_rejected() {
        let src = "module m (a); input a[3:0]; endmodule";
        assert!(matches!(
            parse_verilog("", src),
            Err(VerilogError::Unsupported { .. })
        ));
    }

    #[test]
    fn missing_module_rejected() {
        assert!(matches!(
            parse_verilog("", "input a;"),
            Err(VerilogError::MissingModule)
        ));
    }

    #[test]
    fn unknown_cell_is_a_clean_error() {
        let src = "
module m (a, y);
  input a;
  output y;
  magic_cell u0 (y, a);
endmodule
";
        let err = parse_verilog("", src).unwrap_err();
        match &err {
            VerilogError::Unsupported { line, text } => {
                assert_eq!(*line, 5);
                assert!(text.contains("magic_cell"), "{text}");
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(err.line(), Some(5));
    }

    #[test]
    fn arity_mismatch_is_a_clean_error() {
        // `not` takes exactly one input; two is a structural error, not
        // a panic.
        let src = "
module m (a, b, y);
  input a, b;
  output y;
  not g0 (y, a, b);
endmodule
";
        let err = parse_verilog("", src).unwrap_err();
        match &err {
            VerilogError::Netlist { line, source } => {
                assert_eq!(*line, 5);
                assert!(matches!(source, NetlistError::BadArity { got: 2, .. }));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn multi_driven_net_is_a_clean_error() {
        let src = "
module m (a, y);
  input a;
  output y;
  not g0 (y, a);
  buf g1 (y, a);
endmodule
";
        let err = parse_verilog("", src).unwrap_err();
        match &err {
            VerilogError::Netlist { line, source } => {
                assert_eq!(*line, 6);
                assert!(matches!(source, NetlistError::MultipleDrivers(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn redeclared_wire_is_a_clean_error() {
        let src = "
module m (a, y);
  input a;
  input a;
  output y;
  not g0 (y, a);
endmodule
";
        let err = parse_verilog("", src).unwrap_err();
        match &err {
            VerilogError::Netlist { line, source } => {
                assert_eq!(*line, 4);
                assert_eq!(*source, NetlistError::DuplicateNet("a".into()));
            }
            other => panic!("unexpected {other}"),
        }
        // Same guard for outputs, including repeats inside one statement.
        let src = "
module m (a, y);
  input a;
  output y, y;
  not g0 (y, a);
endmodule
";
        assert!(matches!(
            parse_verilog("", src),
            Err(VerilogError::Netlist {
                source: NetlistError::DuplicateNet(_),
                ..
            })
        ));
    }

    #[test]
    fn missing_module_has_no_anchor_line() {
        let err = parse_verilog("", "input a;").unwrap_err();
        assert_eq!(err.line(), None);
        assert!(err.to_string().contains("no module declaration"));
    }

    #[test]
    fn round_trip_preserves_function() {
        let nl = parse_verilog("", COUNTER).expect("parse");
        let text = write_verilog(&nl);
        let back = parse_verilog("", &text).expect("reparse");
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.dff_count(), nl.dff_count());
        let mut sa = Simulator::new(&nl).unwrap();
        let mut sb = Simulator::new(&back).unwrap();
        for i in 0..6 {
            let en = i % 2 == 0;
            sa.step(&[en]);
            sb.step(&[en]);
            assert_eq!(sa.state(), sb.state(), "cycle {i}");
        }
    }

    #[test]
    fn bench_and_verilog_agree() {
        // The same design through both formats is the same netlist.
        let nl = parse_verilog("", COUNTER).expect("parse verilog");
        let bench_text = crate::parser::write_bench(&nl);
        let from_bench = crate::parser::parse_bench("counter", &bench_text).expect("parse bench");
        assert_eq!(from_bench.gate_count(), nl.gate_count());
        assert_eq!(from_bench.dff_count(), nl.dff_count());
    }

    #[test]
    fn mux_primitive_supported() {
        let src = "
module m (s, a, b, y);
  input s, a, b;
  output y;
  mux m0 (y, s, a, b);
endmodule
";
        let nl = parse_verilog("", src).expect("parse");
        assert_eq!(nl.gates()[0].gtype, GateType::Mux);
        let sim = Simulator::new(&nl).unwrap();
        let y = nl.find_net("y").unwrap();
        // s=0 -> a
        assert!(sim.eval_net(y, &[false, true, false], &[]));
        // s=1 -> b
        assert!(!sim.eval_net(y, &[true, true, false], &[]));
    }
}
