//! # rebert-netlist
//!
//! Gate-level netlist substrate for the ReBERT (DATE 2025)
//! reproduction: data structures, a `.bench`-style text format, logic
//! simulation, k-input → 2-input decomposition, fan-in cone extraction, and
//! the binary-tree view of a bit's fan-in used by the tokenizer.
//!
//! ## Quick tour
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use rebert_netlist::{binarize, parse_bench, BitTree, NetlistStats, Simulator};
//!
//! // 1. Parse a gate-level netlist.
//! let nl = parse_bench("demo", "\
//! INPUT(a)
//! INPUT(b)
//! INPUT(c)
//! s = XOR(a, b, c)
//! q = DFF(s)
//! OUTPUT(s)
//! ")?;
//!
//! // 2. Simulate it.
//! let sim = Simulator::new(&nl)?;
//! let s = nl.find_net("s").expect("net");
//! assert!(sim.eval_net(s, &[true, false, false], &[false]));
//!
//! // 3. Standardize to 2-input gates and extract the bit's fan-in tree.
//! let (bin, _) = binarize(&nl);
//! let tree = BitTree::extract(&bin, bin.bits()[0], 6);
//! assert!(tree.depth() >= 2);
//!
//! // 4. Summarize.
//! let stats = NetlistStats::of(&nl);
//! assert_eq!(stats.ffs, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod binarize;
mod cone;
mod gate;
mod netlist;
mod opt;
mod parser;
mod sim;
mod stats;
mod tree;
mod verilog;

pub use binarize::{binarize, BinarizeStats};
pub use cone::Cone;
pub use gate::{GateType, ParseGateTypeError, ALL_GATE_TYPES};
pub use netlist::{Dff, DffId, Driver, Gate, GateId, NetId, Netlist, NetlistError};
pub use opt::{optimize, OptStats};
pub use parser::{parse_bench, write_bench, ParseError};
pub use sim::Simulator;
pub use stats::NetlistStats;
pub use tree::{BitTree, TreeNode};
pub use verilog::{parse_verilog, write_verilog, VerilogError};
