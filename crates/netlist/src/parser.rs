//! Text format for netlists: an ISCAS-89 style `.bench` dialect.
//!
//! The grammar, one statement per line (`#` starts a comment):
//!
//! ```text
//! INPUT(a)
//! OUTPUT(y)
//! w1 = AND(a, b)
//! w2 = NOT(w1)
//! q  = DFF(w2)
//! one = CONST1
//! ```
//!
//! `DFF(d)` declares a flip-flop whose `q` output is the left-hand name.
//! Nets may be referenced before they are defined; undefined references are
//! reported at the end of parsing.

use std::collections::HashMap;
use std::fmt;

use crate::gate::GateType;
use crate::netlist::{Driver, Netlist, NetlistError};

/// Error produced while parsing the `.bench` dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be understood. Carries 1-based line number and text.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
    },
    /// An unknown gate mnemonic was used.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The mnemonic.
        name: String,
    },
    /// A structural invariant was violated while building the netlist.
    Netlist {
        /// 1-based line number.
        line: usize,
        /// The underlying netlist error.
        source: NetlistError,
    },
}

impl ParseError {
    /// The 1-based source line the error points at. Every variant
    /// carries one, so diagnostics can always anchor to the input.
    pub fn line(&self) -> usize {
        match self {
            ParseError::Syntax { line, .. }
            | ParseError::UnknownGate { line, .. }
            | ParseError::Netlist { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, text } => write!(f, "line {line}: syntax error: `{text}`"),
            ParseError::UnknownGate { line, name } => {
                write!(f, "line {line}: unknown gate `{name}`")
            }
            ParseError::Netlist { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Netlist { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses a netlist from the `.bench` dialect.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// s = XOR(a, b)
/// q = DFF(s)
/// OUTPUT(s)
/// ";
/// let nl = rebert_netlist::parse_bench("toy", src)?;
/// assert_eq!(nl.gate_count(), 1);
/// assert_eq!(nl.dff_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, src: &str) -> Result<Netlist, ParseError> {
    let mut nl = Netlist::new(name);
    let mut ids: HashMap<String, crate::NetId> = HashMap::new();
    // Deferred statements: (line, lhs, op, args)
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut defs: Vec<(usize, String, String, Vec<String>)> = Vec::new();

    let intern = |nl: &mut Netlist, ids: &mut HashMap<String, crate::NetId>, n: &str| {
        if let Some(&id) = ids.get(n) {
            id
        } else {
            let id = nl.add_net(n);
            ids.insert(n.to_owned(), id);
            id
        }
    };

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("INPUT(") {
            let inner = rest.strip_suffix(')').ok_or_else(|| ParseError::Syntax {
                line,
                text: text.to_owned(),
            })?;
            let n = inner.trim();
            if ids.contains_key(n) {
                return Err(ParseError::Netlist {
                    line,
                    source: NetlistError::DuplicateNet(n.to_owned()),
                });
            }
            let id = nl.add_input(n);
            ids.insert(n.to_owned(), id);
            continue;
        }
        if let Some(rest) = text.strip_prefix("OUTPUT(") {
            let inner = rest.strip_suffix(')').ok_or_else(|| ParseError::Syntax {
                line,
                text: text.to_owned(),
            })?;
            outputs.push((line, inner.trim().to_owned()));
            continue;
        }
        // lhs = OP(arg, ...)  |  lhs = CONST0 / CONST1
        let (lhs, rhs) = text.split_once('=').ok_or_else(|| ParseError::Syntax {
            line,
            text: text.to_owned(),
        })?;
        let lhs = lhs.trim().to_owned();
        let rhs = rhs.trim();
        if rhs == "CONST0" || rhs == "CONST1" {
            defs.push((line, lhs, rhs.to_owned(), Vec::new()));
            continue;
        }
        let (op, args_text) = rhs.split_once('(').ok_or_else(|| ParseError::Syntax {
            line,
            text: text.to_owned(),
        })?;
        let args_text = args_text
            .strip_suffix(')')
            .ok_or_else(|| ParseError::Syntax {
                line,
                text: text.to_owned(),
            })?;
        let args: Vec<String> = args_text
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        defs.push((line, lhs, op.trim().to_owned(), args));
    }

    for (line, lhs, op, args) in defs {
        let out = intern(&mut nl, &mut ids, &lhs);
        match op.as_str() {
            "CONST0" | "CONST1" => {
                // add_const creates a new net; instead set driver on existing.
                // We emulate by adding a BUF from a true const net if the net
                // already exists undriven. Simplest correct approach: create
                // the constant under an internal name and buffer it.
                let c = nl.add_const(format!("__const_{line}"), op == "CONST1");
                nl.add_gate(GateType::Buf, vec![c], out)
                    .map_err(|source| ParseError::Netlist { line, source })?;
            }
            "DFF" => {
                if args.len() != 1 {
                    return Err(ParseError::Syntax {
                        line,
                        text: format!("{lhs} = {op}(...)"),
                    });
                }
                let d = intern(&mut nl, &mut ids, &args[0]);
                nl.add_dff(d, out)
                    .map_err(|source| ParseError::Netlist { line, source })?;
            }
            other => {
                let gtype: GateType = other.parse().map_err(|_| ParseError::UnknownGate {
                    line,
                    name: other.to_owned(),
                })?;
                let inputs: Vec<_> = args.iter().map(|a| intern(&mut nl, &mut ids, a)).collect();
                nl.add_gate(gtype, inputs, out)
                    .map_err(|source| ParseError::Netlist { line, source })?;
            }
        }
    }

    for (line, name) in outputs {
        let id = ids.get(&name).copied().ok_or_else(|| ParseError::Syntax {
            line,
            text: format!("OUTPUT({name}) references undefined net"),
        })?;
        nl.add_output(id);
    }

    Ok(nl)
}

/// Serializes a netlist to the `.bench` dialect accepted by
/// [`parse_bench`]. Round-trips structurally (net names preserved).
pub fn write_bench(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# design: {}\n", nl.name()));
    for &pi in nl.primary_inputs() {
        out.push_str(&format!("INPUT({})\n", nl.net_name(pi)));
    }
    for &po in nl.primary_outputs() {
        out.push_str(&format!("OUTPUT({})\n", nl.net_name(po)));
    }
    // Emit constants first so the reader sees defined names.
    for (id, name) in nl.iter_nets() {
        match nl.driver(id) {
            Driver::ConstZero if name.starts_with("__const") => {
                out.push_str(&format!("{name} = CONST0\n"));
            }
            Driver::ConstOne if name.starts_with("__const") => {
                out.push_str(&format!("{name} = CONST1\n"));
            }
            Driver::ConstOne => out.push_str(&format!("{name} = CONST1\n")),
            Driver::ConstZero => {} // undriven placeholder or const zero: skip
            _ => {}
        }
    }
    for g in nl.gates() {
        let args: Vec<&str> = g.inputs.iter().map(|&i| nl.net_name(i)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            nl.net_name(g.output),
            g.gtype.mnemonic(),
            args.join(", ")
        ));
    }
    for ff in nl.dffs() {
        out.push_str(&format!(
            "{} = DFF({})\n",
            nl.net_name(ff.q),
            nl.net_name(ff.d)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
# a toy circuit
INPUT(a)
INPUT(b)
s = XOR(a, b)   # sum
c = AND(a, b)
q = DFF(s)
r = DFF(c)
OUTPUT(s)
OUTPUT(c)
";

    #[test]
    fn parse_toy() {
        let nl = parse_bench("toy", TOY).expect("parse");
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.dff_count(), 2);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn round_trip() {
        let nl = parse_bench("toy", TOY).expect("parse");
        let text = write_bench(&nl);
        let back = parse_bench("toy", &text).expect("reparse");
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.dff_count(), nl.dff_count());
        assert_eq!(back.primary_inputs().len(), nl.primary_inputs().len());
        assert!(back.validate().is_ok());
        // Gate structure identical up to net ids: compare by names.
        for (g1, g2) in nl.gates().iter().zip(back.gates()) {
            assert_eq!(g1.gtype, g2.gtype);
            assert_eq!(nl.net_name(g1.output), back.net_name(g2.output));
        }
    }

    #[test]
    fn forward_references_allowed() {
        let src = "\
INPUT(a)
y = NOT(x)
x = AND(a, q)
q = DFF(y)
OUTPUT(y)
";
        let nl = parse_bench("fwd", src).expect("parse");
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn syntax_error_reported_with_line() {
        let err = parse_bench("bad", "INPUT(a)\nfoo bar baz\n").unwrap_err();
        match err {
            ParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn unknown_gate_reported() {
        let err = parse_bench("bad", "INPUT(a)\ny = FROB(a, a)\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownGate { .. }));
    }

    #[test]
    fn every_variant_carries_and_displays_its_line() {
        // One input per variant; each error must expose the 1-based line
        // through both `line()` and its `Display` rendering.
        let cases: &[(&str, usize)] = &[
            ("INPUT(a)\nfoo bar baz\n", 2),               // Syntax
            ("INPUT(a)\n\ny = FROB(a, a)\n", 3),          // UnknownGate
            ("INPUT(a)\nINPUT(a)\n", 2),                  // Netlist(DuplicateNet)
            ("INPUT(a)\nINPUT(b)\n\ny = NOT(a, b)\n", 4), // Netlist(BadArity)
            ("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", 3),    // Netlist(MultipleDrivers)
            ("INPUT(a)\nOUTPUT(zz)\n", 2),                // Syntax (undefined OUTPUT)
        ];
        for (src, want) in cases {
            let err = parse_bench("bad", src).unwrap_err();
            assert_eq!(err.line(), *want, "line() for {src:?}: {err}");
            assert!(
                err.to_string().contains(&format!("line {want}")),
                "Display misses line for {src:?}: {err}"
            );
        }
    }

    #[test]
    fn constants_parse() {
        let src = "\
INPUT(a)
one = CONST1
y = AND(a, one)
OUTPUT(y)
";
        let nl = parse_bench("c", src).expect("parse");
        assert!(nl.validate().is_ok());
        let text = write_bench(&nl);
        let back = parse_bench("c", &text).expect("reparse");
        assert!(back.validate().is_ok());
    }

    #[test]
    fn mux_parses() {
        let src = "\
INPUT(s)
INPUT(a)
INPUT(b)
y = MUX(s, a, b)
OUTPUT(y)
";
        let nl = parse_bench("m", src).expect("parse");
        assert_eq!(nl.gates()[0].gtype, GateType::Mux);
    }
}
