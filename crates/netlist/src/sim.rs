//! Logic simulation of netlists.
//!
//! [`Simulator`] evaluates the combinational logic of a [`Netlist`] for
//! given primary-input and flip-flop-state values, and can step the
//! sequential state. It is the workhorse behind the equivalence checks in
//! the corruption engine (`rebert-circuits`).

use crate::netlist::{Driver, GateId, NetId, Netlist, NetlistError};

/// A combinational + sequential evaluator over a fixed netlist.
///
/// The simulator snapshots a topological gate order at construction, so
/// repeated evaluations are linear passes with no graph traversal.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_netlist::{parse_bench, Simulator};
///
/// let nl = parse_bench("toy", "INPUT(a)\nINPUT(b)\ny = XOR(a, b)\nOUTPUT(y)\n")?;
/// let mut sim = Simulator::new(&nl)?;
/// let vals = sim.eval_combinational(&[true, false], &[]);
/// let y = nl.find_net("y").expect("net exists");
/// assert!(vals[y.index()]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
    /// Current flip-flop state (q values), one per DFF.
    state: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `netlist`, with all flip-flops reset to zero.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// logic is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        Ok(Simulator {
            netlist,
            order,
            state: vec![false; netlist.dff_count()],
        })
    }

    /// The current flip-flop state vector (one `q` value per DFF, in
    /// declaration order).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overrides the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the netlist's DFF count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Evaluates all nets combinationally.
    ///
    /// `inputs` supplies primary-input values in declaration order and
    /// `state` supplies flip-flop `q` values in declaration order (pass the
    /// stored state with [`Simulator::state`], or any vector for "what-if"
    /// evaluation). The result is indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if either slice has the wrong length.
    pub fn eval_combinational(&self, inputs: &[bool], state: &[bool]) -> Vec<bool> {
        let nl = self.netlist;
        assert_eq!(inputs.len(), nl.primary_inputs().len(), "PI width mismatch");
        assert_eq!(state.len(), nl.dff_count(), "state width mismatch");
        let mut vals = vec![false; nl.net_count()];
        for (i, &pi) in nl.primary_inputs().iter().enumerate() {
            vals[pi.index()] = inputs[i];
        }
        for (i, ff) in nl.dffs().iter().enumerate() {
            vals[ff.q.index()] = state[i];
        }
        for (id, _) in nl.iter_nets() {
            if let Driver::ConstOne = nl.driver(id) {
                vals[id.index()] = true;
            }
        }
        let mut in_buf: Vec<bool> = Vec::with_capacity(4);
        for &gid in &self.order {
            let g = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(g.inputs.iter().map(|&n| vals[n.index()]));
            vals[g.output.index()] = g.gtype.eval(&in_buf);
        }
        vals
    }

    /// Evaluates one value, given full primary-input and state vectors.
    pub fn eval_net(&self, net: NetId, inputs: &[bool], state: &[bool]) -> bool {
        self.eval_combinational(inputs, state)[net.index()]
    }

    /// Advances the sequential state by one clock: evaluates the
    /// combinational logic with the stored state, then latches every DFF's
    /// `d` into its `q`. Returns the net values *before* the clock edge.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let vals = self.eval_combinational(inputs, &self.state.clone());
        for (i, ff) in self.netlist.dffs().iter().enumerate() {
            self.state[i] = vals[ff.d.index()];
        }
        vals
    }

    /// Resets all flip-flops to zero.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|b| *b = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;

    #[test]
    fn full_adder_truth_table() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(cin)
axb = XOR(a, b)
s = XOR(axb, cin)
t1 = AND(a, b)
t2 = AND(axb, cin)
cout = OR(t1, t2)
OUTPUT(s)
OUTPUT(cout)
";
        let nl = parse_bench("fa", src).expect("parse");
        let sim = Simulator::new(&nl).expect("sim");
        let s = nl.find_net("s").unwrap();
        let cout = nl.find_net("cout").unwrap();
        for row in 0..8u8 {
            let a = row & 1 == 1;
            let b = row >> 1 & 1 == 1;
            let cin = row >> 2 & 1 == 1;
            let vals = sim.eval_combinational(&[a, b, cin], &[]);
            let sum = (a as u8) + (b as u8) + (cin as u8);
            assert_eq!(vals[s.index()], sum & 1 == 1, "sum row {row}");
            assert_eq!(vals[cout.index()], sum >= 2, "carry row {row}");
        }
    }

    #[test]
    fn counter_steps() {
        // 2-bit counter: q0 toggles, q1 toggles when q0 is 1.
        let src = "\
INPUT(en)
nq0 = XOR(q0, en)
t = AND(q0, en)
nq1 = XOR(q1, t)
q0 = DFF(nq0)
q1 = DFF(nq1)
OUTPUT(q1)
";
        let nl = parse_bench("cnt", src).expect("parse");
        let mut sim = Simulator::new(&nl).expect("sim");
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push((sim.state()[0], sim.state()[1]));
            sim.step(&[true]);
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (true, false),
                (false, true),
                (true, true),
                (false, false)
            ]
        );
    }

    #[test]
    fn constants_evaluate() {
        let src = "\
INPUT(a)
one = CONST1
y = AND(a, one)
z = NOR(a, one)
OUTPUT(y)
OUTPUT(z)
";
        let nl = parse_bench("c", src).expect("parse");
        let sim = Simulator::new(&nl).expect("sim");
        let y = nl.find_net("y").unwrap();
        let z = nl.find_net("z").unwrap();
        let vals = sim.eval_combinational(&[true], &[]);
        assert!(vals[y.index()]);
        assert!(!vals[z.index()]);
    }

    #[test]
    fn reset_clears_state() {
        let src = "\
INPUT(d)
q = DFF(d)
OUTPUT(q)
";
        let nl = parse_bench("r", src).expect("parse");
        let mut sim = Simulator::new(&nl).expect("sim");
        sim.step(&[true]);
        assert_eq!(sim.state(), &[true]);
        sim.reset();
        assert_eq!(sim.state(), &[false]);
    }
}
