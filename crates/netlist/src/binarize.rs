//! Decomposition of k-input gates (k > 2) into equivalent 2-input gates.
//!
//! ReBERT standardizes the circuit "into a binary tree format" by converting
//! all k-input gates into 2-input equivalents using predefined templates
//! (paper §II-A.1). The templates used here:
//!
//! * associative gates (`AND`, `OR`, `XOR`): a left-leaning chain of 2-input
//!   gates of the same type;
//! * inverting gates (`NAND`, `NOR`, `XNOR`): the de-inverted reduction over
//!   the first k−1 inputs, then one final 2-input inverting gate, e.g.
//!   `NAND(a,b,c) = NAND(AND(a,b), c)`;
//! * `MUX(sel, a, b)`: `OR(AND(NOT(sel), a), AND(sel, b))` — four 2-input
//!   gates plus an inverter, so downstream tree extraction only ever sees
//!   1- and 2-input nodes.

use crate::gate::GateType;
use crate::netlist::{Gate, NetId, Netlist};

/// Statistics reported by [`binarize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinarizeStats {
    /// Gates that were already unary or binary and copied unchanged.
    pub copied: usize,
    /// k-input (k > 2) variadic gates decomposed.
    pub decomposed: usize,
    /// `MUX` gates expanded.
    pub muxes_expanded: usize,
    /// 2-input gates created by the decomposition.
    pub gates_added: usize,
}

/// Returns a functionally-equivalent netlist in which every combinational
/// gate has at most two inputs (and `MUX` gates are expanded away).
///
/// Net names, primary inputs/outputs, and flip-flops are preserved;
/// decomposition temporaries get `__bin_*` names.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_netlist::{binarize, parse_bench};
///
/// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\nINPUT(c)\ny = AND(a, b, c)\nOUTPUT(y)\n")?;
/// let (bin, stats) = binarize(&nl);
/// assert_eq!(stats.decomposed, 1);
/// assert!(bin.gates().iter().all(|g| g.inputs.len() <= 2));
/// # Ok(())
/// # }
/// ```
pub fn binarize(nl: &Netlist) -> (Netlist, BinarizeStats) {
    let mut out = Netlist::new(nl.name());
    let mut stats = BinarizeStats::default();

    // Recreate every net with the same name, in the same order, so NetIds
    // survive the translation for original nets.
    for (_, name) in nl.iter_nets() {
        out.add_net(name);
    }
    // Attach original drivers for inputs/constants.
    for &pi in nl.primary_inputs() {
        out.promote_to_input(pi);
    }
    for (id, _) in nl.iter_nets() {
        match nl.driver(id) {
            crate::netlist::Driver::ConstOne => out.promote_to_const(id, true),
            crate::netlist::Driver::ConstZero if nl_is_explicit_const_zero(nl, id) => {
                out.promote_to_const(id, false)
            }
            _ => {}
        }
    }
    for &po in nl.primary_outputs() {
        out.add_output(po);
    }

    let mut tmp = 0usize;
    let mut fresh = |out: &mut Netlist, tmp: &mut usize| -> NetId {
        let id = out.add_net(format!("__bin_{tmp}"));
        *tmp += 1;
        id
    };

    for g in nl.gates() {
        emit_binary(&mut out, g, &mut stats, &mut fresh, &mut tmp);
    }
    for ff in nl.dffs() {
        out.add_dff(ff.d, ff.q)
            .expect("flip-flop translation cannot conflict");
    }
    (out, stats)
}

// An explicitly-created constant-zero net is one that is not driven by any
// gate or DFF in the source netlist but is still consumed; heuristically we
// treat driver==ConstZero nets whose name starts with "__const" or that are
// consumed as constants. For safety we only promote named constants.
fn nl_is_explicit_const_zero(nl: &Netlist, id: NetId) -> bool {
    nl.net_name(id).starts_with("__const")
}

fn emit_binary(
    out: &mut Netlist,
    g: &Gate,
    stats: &mut BinarizeStats,
    fresh: &mut impl FnMut(&mut Netlist, &mut usize) -> NetId,
    tmp: &mut usize,
) {
    match g.gtype {
        GateType::Mux => {
            let sel = g.inputs[0];
            let a = g.inputs[1];
            let b = g.inputs[2];
            let nsel = fresh(out, tmp);
            out.add_gate(GateType::Not, vec![sel], nsel).expect("fresh");
            let ta = fresh(out, tmp);
            out.add_gate(GateType::And, vec![nsel, a], ta)
                .expect("fresh");
            let tb = fresh(out, tmp);
            out.add_gate(GateType::And, vec![sel, b], tb)
                .expect("fresh");
            out.add_gate(GateType::Or, vec![ta, tb], g.output)
                .expect("output free");
            stats.muxes_expanded += 1;
            stats.gates_added += 4;
        }
        _ if g.inputs.len() <= 2 => {
            out.add_gate(g.gtype, g.inputs.clone(), g.output)
                .expect("output free");
            stats.copied += 1;
        }
        gt => {
            // Reduce the first k-1 inputs with the non-inverting type, then
            // apply the final (possibly inverting) 2-input gate.
            let reduce_type = gt.deinverted().unwrap_or(gt);
            let mut acc = g.inputs[0];
            for &next in &g.inputs[1..g.inputs.len() - 1] {
                let t = fresh(out, tmp);
                out.add_gate(reduce_type, vec![acc, next], t)
                    .expect("fresh");
                stats.gates_added += 1;
                acc = t;
            }
            let last = *g.inputs.last().expect("arity >= 3");
            out.add_gate(gt, vec![acc, last], g.output)
                .expect("output free");
            stats.gates_added += 1;
            stats.decomposed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;
    use crate::sim::Simulator;

    /// Exhaustively checks that `a` and `b` compute the same function of
    /// their primary inputs on every net name they share, for up to 2^n
    /// input patterns.
    fn assert_equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.primary_inputs().len(), b.primary_inputs().len());
        let n = a.primary_inputs().len();
        assert!(n <= 16, "too many inputs for exhaustive check");
        let sim_a = Simulator::new(a).expect("sim a");
        let sim_b = Simulator::new(b).expect("sim b");
        let zeros_a = vec![false; a.dff_count()];
        let zeros_b = vec![false; b.dff_count()];
        for row in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
            let va = sim_a.eval_combinational(&inputs, &zeros_a);
            let vb = sim_b.eval_combinational(&inputs, &zeros_b);
            for (id_a, name) in a.iter_nets() {
                if name.starts_with("__") {
                    continue;
                }
                if let Some(id_b) = b.find_net(name) {
                    assert_eq!(
                        va[id_a.index()],
                        vb[id_b.index()],
                        "net `{name}` differs for pattern {row:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_and_preserved() {
        let nl = parse_bench(
            "w",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\ny = AND(a, b, c, d)\nOUTPUT(y)\n",
        )
        .unwrap();
        let (bin, stats) = binarize(&nl);
        assert!(bin.validate().is_ok());
        assert!(bin.gates().iter().all(|g| g.inputs.len() <= 2));
        assert_eq!(stats.decomposed, 1);
        assert_equivalent(&nl, &bin);
    }

    #[test]
    fn wide_inverting_gates_preserved() {
        for op in ["NAND", "NOR", "XNOR", "XOR", "OR"] {
            let src = format!("INPUT(a)\nINPUT(b)\nINPUT(c)\ny = {op}(a, b, c)\nOUTPUT(y)\n");
            let nl = parse_bench("w", &src).unwrap();
            let (bin, _) = binarize(&nl);
            assert!(bin.validate().is_ok(), "{op}");
            assert!(bin.gates().iter().all(|g| g.inputs.len() <= 2), "{op}");
            assert_equivalent(&nl, &bin);
        }
    }

    #[test]
    fn mux_expansion_preserved() {
        let nl = parse_bench(
            "m",
            "INPUT(s)\nINPUT(a)\nINPUT(b)\ny = MUX(s, a, b)\nOUTPUT(y)\n",
        )
        .unwrap();
        let (bin, stats) = binarize(&nl);
        assert_eq!(stats.muxes_expanded, 1);
        assert!(bin.gates().iter().all(|g| g.gtype != GateType::Mux));
        assert_equivalent(&nl, &bin);
    }

    #[test]
    fn sequential_structure_preserved() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
d0 = NAND(a, b, c, q0)
q0 = DFF(d0)
OUTPUT(q0)
";
        let nl = parse_bench("s", src).unwrap();
        let (bin, _) = binarize(&nl);
        assert!(bin.validate().is_ok());
        assert_eq!(bin.dff_count(), 1);
        // Step both simulators and compare state trajectories.
        let mut sa = Simulator::new(&nl).unwrap();
        let mut sb = Simulator::new(&bin).unwrap();
        for pat in [[true, true, true], [true, false, true], [false, true, true]] {
            sa.step(&pat);
            sb.step(&pat);
            assert_eq!(sa.state(), sb.state());
        }
    }

    #[test]
    fn already_binary_is_identity_shaped() {
        let nl = parse_bench(
            "i",
            "INPUT(a)\nINPUT(b)\ny = AND(a, b)\nz = NOT(y)\nOUTPUT(z)\n",
        )
        .unwrap();
        let (bin, stats) = binarize(&nl);
        assert_eq!(stats.copied, 2);
        assert_eq!(stats.gates_added, 0);
        assert_eq!(bin.gate_count(), nl.gate_count());
    }
}
