//! Logic gate types and their Boolean semantics.
//!
//! Every combinational element in a [`Netlist`](crate::Netlist) carries a
//! [`GateType`]. Gate types know how to evaluate themselves over `bool`
//! inputs, which powers both the logic simulator and the exhaustive
//! truth-table equivalence checks used to validate corruption templates.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The kind of a combinational gate.
///
/// `And`/`Or`/`Xor` and their complements accept two or more inputs
/// (variadic, left-associative). `Not` and `Buf` are strictly unary.
/// `Mux` is the 2:1 multiplexer `MUX(sel, a, b) = sel ? b : a` and is
/// strictly ternary.
///
/// # Examples
///
/// ```
/// use rebert_netlist::GateType;
///
/// assert_eq!(GateType::Nand.eval(&[true, true]), false);
/// assert_eq!(GateType::Mux.eval(&[true, false, true]), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateType {
    /// Logical conjunction of all inputs.
    And,
    /// Logical disjunction of all inputs.
    Or,
    /// Complement of the conjunction.
    Nand,
    /// Complement of the disjunction.
    Nor,
    /// Parity (odd number of true inputs).
    Xor,
    /// Complement of the parity.
    Xnor,
    /// Unary complement.
    Not,
    /// Unary identity (buffer).
    Buf,
    /// 2:1 multiplexer: `MUX(sel, a, b)` selects `a` when `sel` is false.
    Mux,
}

/// All gate types, in a stable order (useful for vocabularies and tests).
pub const ALL_GATE_TYPES: [GateType; 9] = [
    GateType::And,
    GateType::Or,
    GateType::Nand,
    GateType::Nor,
    GateType::Xor,
    GateType::Xnor,
    GateType::Not,
    GateType::Buf,
    GateType::Mux,
];

impl GateType {
    /// Returns the canonical upper-case mnemonic (`"AND"`, `"MUX"`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateType::And => "AND",
            GateType::Or => "OR",
            GateType::Nand => "NAND",
            GateType::Nor => "NOR",
            GateType::Xor => "XOR",
            GateType::Xnor => "XNOR",
            GateType::Not => "NOT",
            GateType::Buf => "BUF",
            GateType::Mux => "MUX",
        }
    }

    /// Whether this gate type accepts a variable number (≥ 2) of inputs.
    pub fn is_variadic(self) -> bool {
        matches!(
            self,
            GateType::And
                | GateType::Or
                | GateType::Nand
                | GateType::Nor
                | GateType::Xor
                | GateType::Xnor
        )
    }

    /// Whether `n` is a legal input count for this gate type.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateType::Not | GateType::Buf => n == 1,
            GateType::Mux => n == 3,
            _ => n >= 2,
        }
    }

    /// Whether the gate's binary form is associative, so a `k`-input
    /// instance can be decomposed into a tree of 2-input instances of the
    /// *same* type (`AND`, `OR`, `XOR`). Inverting variadic gates
    /// (`NAND`/`NOR`/`XNOR`) are *not* associative and need a mixed
    /// decomposition (see [`crate::binarize`]).
    pub fn is_associative(self) -> bool {
        matches!(self, GateType::And | GateType::Or | GateType::Xor)
    }

    /// For an inverting variadic gate, the non-inverting gate that computes
    /// the reduction before the final complemented stage
    /// (`NAND` → `AND`, `NOR` → `OR`, `XNOR` → `XOR`).
    pub fn deinverted(self) -> Option<GateType> {
        match self {
            GateType::Nand => Some(GateType::And),
            GateType::Nor => Some(GateType::Or),
            GateType::Xnor => Some(GateType::Xor),
            _ => None,
        }
    }

    /// Evaluates the gate over the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for this gate type
    /// (see [`GateType::arity_ok`]).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity_ok(inputs.len()),
            "gate {self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateType::And => inputs.iter().all(|&b| b),
            GateType::Or => inputs.iter().any(|&b| b),
            GateType::Nand => !inputs.iter().all(|&b| b),
            GateType::Nor => !inputs.iter().any(|&b| b),
            GateType::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateType::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateType::Not => !inputs[0],
            GateType::Buf => inputs[0],
            GateType::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Computes the full truth table of this gate for `n` inputs, packed
    /// little-endian: bit `i` of the result is the output for the input
    /// assignment whose bit `j` is `(i >> j) & 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a legal arity or `n > 6` (table would not fit
    /// the return type).
    pub fn truth_table(self, n: usize) -> u64 {
        assert!(n <= 6, "truth tables supported up to 6 inputs");
        let mut table = 0u64;
        let mut buf = [false; 6];
        for row in 0..(1u64 << n) {
            for (j, slot) in buf.iter_mut().enumerate().take(n) {
                *slot = (row >> j) & 1 == 1;
            }
            if self.eval(&buf[..n]) {
                table |= 1 << row;
            }
        }
        table
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing a [`GateType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateTypeError {
    text: String,
}

impl fmt::Display for ParseGateTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate type `{}`", self.text)
    }
}

impl std::error::Error for ParseGateTypeError {}

impl FromStr for GateType {
    type Err = ParseGateTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateType::And),
            "OR" => Ok(GateType::Or),
            "NAND" => Ok(GateType::Nand),
            "NOR" => Ok(GateType::Nor),
            "XOR" => Ok(GateType::Xor),
            "XNOR" => Ok(GateType::Xnor),
            "NOT" | "INV" => Ok(GateType::Not),
            "BUF" | "BUFF" => Ok(GateType::Buf),
            "MUX" => Ok(GateType::Mux),
            _ => Err(ParseGateTypeError { text: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_binary() {
        let cases = [
            (GateType::And, [false, false, false, true]),
            (GateType::Or, [false, true, true, true]),
            (GateType::Nand, [true, true, true, false]),
            (GateType::Nor, [true, false, false, false]),
            (GateType::Xor, [false, true, true, false]),
            (GateType::Xnor, [true, false, false, true]),
        ];
        for (g, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 == 1;
                let b = i >> 1 & 1 == 1;
                assert_eq!(g.eval(&[a, b]), e, "{g}({a},{b})");
            }
        }
    }

    #[test]
    fn eval_unary_and_mux() {
        assert!(GateType::Not.eval(&[false]));
        assert!(!GateType::Not.eval(&[true]));
        assert!(GateType::Buf.eval(&[true]));
        // MUX(sel, a, b): sel=0 -> a, sel=1 -> b
        assert!(GateType::Mux.eval(&[false, true, false]));
        assert!(!GateType::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn variadic_eval() {
        assert!(GateType::And.eval(&[true, true, true, true]));
        assert!(!GateType::And.eval(&[true, true, false, true]));
        assert!(GateType::Xor.eval(&[true, true, true]));
        assert!(!GateType::Xnor.eval(&[true, true, true]));
        assert!(GateType::Nor.eval(&[false, false, false]));
    }

    #[test]
    fn arity_rules() {
        assert!(GateType::Not.arity_ok(1));
        assert!(!GateType::Not.arity_ok(2));
        assert!(GateType::Mux.arity_ok(3));
        assert!(!GateType::Mux.arity_ok(2));
        assert!(GateType::And.arity_ok(2));
        assert!(GateType::And.arity_ok(5));
        assert!(!GateType::And.arity_ok(1));
    }

    #[test]
    fn truth_table_matches_eval() {
        for g in ALL_GATE_TYPES {
            let n = match g {
                GateType::Not | GateType::Buf => 1,
                GateType::Mux => 3,
                _ => 3,
            };
            if !g.arity_ok(n) {
                continue;
            }
            let table = g.truth_table(n);
            for row in 0..(1u64 << n) {
                let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
                assert_eq!((table >> row) & 1 == 1, g.eval(&inputs), "{g} row {row}");
            }
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for g in ALL_GATE_TYPES {
            let parsed: GateType = g.mnemonic().parse().expect("round trip");
            assert_eq!(parsed, g);
        }
        assert!("FROB".parse::<GateType>().is_err());
    }

    #[test]
    fn deinverted_pairs() {
        assert_eq!(GateType::Nand.deinverted(), Some(GateType::And));
        assert_eq!(GateType::Nor.deinverted(), Some(GateType::Or));
        assert_eq!(GateType::Xnor.deinverted(), Some(GateType::Xor));
        assert_eq!(GateType::And.deinverted(), None);
        assert_eq!(GateType::Mux.deinverted(), None);
    }
}
