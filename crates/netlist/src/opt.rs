//! Netlist optimization passes: constant folding, buffer sweeping, and
//! dead-logic elimination.
//!
//! These mirror what a synthesis tool's cleanup does — and they matter to
//! reverse engineering in two ways: real-world inputs have been through
//! them (so benchmarks should too), and they are *another* source of the
//! structural-pattern erosion that breaks template-based recovery.

use std::collections::HashMap;

use crate::gate::GateType;
use crate::netlist::{Driver, NetId, Netlist};

/// Statistics reported by [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `BUF` gates (and aliases) swept.
    pub buffers_swept: usize,
    /// Gates whose output folded to a constant or alias.
    pub gates_folded: usize,
    /// Gates removed because nothing observes them.
    pub dead_gates_removed: usize,
}

/// Where a folded net's value now comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    Net(NetId),
    Const(bool),
}

/// Runs constant folding + buffer sweeping, then dead-logic elimination,
/// returning a functionally-equivalent, usually smaller netlist.
///
/// Primary inputs/outputs and flip-flops (and therefore the **bits**) are
/// preserved; only combinational structure changes.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_netlist::{optimize, parse_bench};
///
/// let nl = parse_bench("t", "\
/// INPUT(a)
/// one = CONST1
/// w = AND(a, one)   # folds to a
/// y = BUF(w)        # sweeps
/// OUTPUT(y)
/// ")?;
/// let (opt, stats) = optimize(&nl);
/// assert_eq!(opt.gate_count(), 0); // the output is rewired to `a` directly
/// assert!(stats.gates_folded >= 1);
/// assert!(stats.buffers_swept >= 1);
/// # Ok(())
/// # }
/// ```
pub fn optimize(nl: &Netlist) -> (Netlist, OptStats) {
    let mut stats = OptStats::default();
    let folded = fold(nl, &mut stats);
    let cleaned = dce(&folded, &mut stats);
    (cleaned, stats)
}

fn fold(nl: &Netlist, stats: &mut OptStats) -> Netlist {
    let mut out = Netlist::new(nl.name());
    let mut map: HashMap<NetId, Resolved> = HashMap::new();
    let mut const_nets: [Option<NetId>; 2] = [None, None];

    for &pi in nl.primary_inputs() {
        let id = out.add_input(nl.net_name(pi));
        map.insert(pi, Resolved::Net(id));
    }
    for (id, name) in nl.iter_nets() {
        match nl.driver(id) {
            Driver::ConstOne => {
                map.insert(id, Resolved::Const(true));
                let _ = name;
            }
            Driver::ConstZero if name.starts_with("__const") => {
                map.insert(id, Resolved::Const(false));
            }
            _ => {}
        }
    }
    // Pre-create flip-flop outputs (sequential sources).
    for ff in nl.dffs() {
        let q = out.add_net(nl.net_name(ff.q));
        map.insert(ff.q, Resolved::Net(q));
    }

    let materialize =
        |out: &mut Netlist, const_nets: &mut [Option<NetId>; 2], r: Resolved| -> NetId {
            match r {
                Resolved::Net(n) => n,
                Resolved::Const(v) => {
                    let slot = &mut const_nets[v as usize];
                    *slot.get_or_insert_with(|| out.add_const(format!("__const_{}", v as u8), v))
                }
            }
        };

    let order = nl.topo_order().expect("input netlist validated by caller");
    for gid in order {
        let g = nl.gate(gid);
        let ins: Vec<Resolved> = g
            .inputs
            .iter()
            .map(|i| *map.get(i).expect("topological order resolves inputs"))
            .collect();
        let simplified = simplify(g.gtype, &ins);
        match simplified {
            Simplified::Const(v) => {
                map.insert(g.output, Resolved::Const(v));
                stats.gates_folded += 1;
            }
            Simplified::Alias(r) => {
                map.insert(g.output, r);
                if g.gtype == GateType::Buf {
                    stats.buffers_swept += 1;
                } else {
                    stats.gates_folded += 1;
                }
            }
            Simplified::Gate(gtype, kept) => {
                let input_nets: Vec<NetId> = kept
                    .into_iter()
                    .map(|r| materialize(&mut out, &mut const_nets, r))
                    .collect();
                let o = out.add_net(nl.net_name(g.output));
                out.add_gate(gtype, input_nets, o)
                    .expect("fresh output net");
                map.insert(g.output, Resolved::Net(o));
            }
        }
    }
    for ff in nl.dffs() {
        let d = materialize(&mut out, &mut const_nets, map[&ff.d]);
        let q = match map[&ff.q] {
            Resolved::Net(n) => n,
            Resolved::Const(_) => unreachable!("q nets are pre-created"),
        };
        out.add_dff(d, q).expect("pre-created q net is undriven");
    }
    for &po in nl.primary_outputs() {
        let id = materialize(&mut out, &mut const_nets, map[&po]);
        out.add_output(id);
    }
    out
}

enum Simplified {
    Const(bool),
    Alias(Resolved),
    Gate(GateType, Vec<Resolved>),
}

fn simplify(gtype: GateType, ins: &[Resolved]) -> Simplified {
    use Resolved::{Const, Net};
    match gtype {
        GateType::Buf => Simplified::Alias(ins[0]),
        GateType::Not => match ins[0] {
            Const(v) => Simplified::Const(!v),
            r @ Net(_) => Simplified::Gate(GateType::Not, vec![r]),
        },
        GateType::And | GateType::Nand => {
            let invert = gtype == GateType::Nand;
            let mut kept = Vec::new();
            for &r in ins {
                match r {
                    Const(false) => return Simplified::Const(invert),
                    Const(true) => {}
                    Net(_) => kept.push(r),
                }
            }
            finish_reduction(GateType::And, invert, kept, true)
        }
        GateType::Or | GateType::Nor => {
            let invert = gtype == GateType::Nor;
            let mut kept = Vec::new();
            for &r in ins {
                match r {
                    Const(true) => return Simplified::Const(!invert),
                    Const(false) => {}
                    Net(_) => kept.push(r),
                }
            }
            finish_reduction(GateType::Or, invert, kept, false)
        }
        GateType::Xor | GateType::Xnor => {
            let mut parity = gtype == GateType::Xnor;
            let mut kept = Vec::new();
            for &r in ins {
                match r {
                    Const(v) => parity ^= v,
                    Net(_) => kept.push(r),
                }
            }
            match (kept.len(), parity) {
                (0, p) => Simplified::Const(p),
                (1, false) => Simplified::Alias(kept[0]),
                (1, true) => Simplified::Gate(GateType::Not, kept),
                (_, false) => Simplified::Gate(GateType::Xor, kept),
                (_, true) => Simplified::Gate(GateType::Xnor, kept),
            }
        }
        GateType::Mux => {
            let (sel, a, b) = (ins[0], ins[1], ins[2]);
            match sel {
                Const(false) => Simplified::Alias(a),
                Const(true) => Simplified::Alias(b),
                Net(_) => {
                    if a == b {
                        return Simplified::Alias(a);
                    }
                    match (a, b) {
                        (Const(false), Const(true)) => Simplified::Alias(sel),
                        (Const(true), Const(false)) => Simplified::Gate(GateType::Not, vec![sel]),
                        _ => Simplified::Gate(GateType::Mux, vec![sel, a, b]),
                    }
                }
            }
        }
    }
}

fn finish_reduction(
    base: GateType,
    invert: bool,
    kept: Vec<Resolved>,
    empty_value: bool,
) -> Simplified {
    match kept.len() {
        0 => Simplified::Const(empty_value ^ invert),
        1 if !invert => Simplified::Alias(kept[0]),
        1 => Simplified::Gate(GateType::Not, kept),
        _ => {
            // Re-emit the inverting form directly when folding NAND/NOR.
            let gtype = match (base, invert) {
                (GateType::And, true) => GateType::Nand,
                (GateType::Or, true) => GateType::Nor,
                (g, _) => g,
            };
            Simplified::Gate(gtype, kept)
        }
    }
}

fn dce(nl: &Netlist, stats: &mut OptStats) -> Netlist {
    // Mark nets observed by POs or flip-flop data inputs, backwards.
    let mut live = vec![false; nl.net_count()];
    let mut stack: Vec<NetId> = Vec::new();
    for &po in nl.primary_outputs() {
        stack.push(po);
    }
    for ff in nl.dffs() {
        stack.push(ff.d);
    }
    while let Some(net) = stack.pop() {
        if live[net.index()] {
            continue;
        }
        live[net.index()] = true;
        if let Driver::Gate(gid) = nl.driver(net) {
            for &inp in &nl.gate(gid).inputs {
                stack.push(inp);
            }
        }
    }

    let mut out = Netlist::new(nl.name());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.primary_inputs() {
        map.insert(pi, out.add_input(nl.net_name(pi)));
    }
    for (id, name) in nl.iter_nets() {
        if !live[id.index()] {
            continue;
        }
        match nl.driver(id) {
            Driver::ConstOne => {
                map.insert(id, out.add_const(name, true));
            }
            Driver::ConstZero if name.starts_with("__const") => {
                map.insert(id, out.add_const(name, false));
            }
            _ => {}
        }
    }
    for ff in nl.dffs() {
        let q = out.add_net(nl.net_name(ff.q));
        map.insert(ff.q, q);
    }
    for gid in nl.topo_order().expect("validated") {
        let g = nl.gate(gid);
        if !live[g.output.index()] {
            stats.dead_gates_removed += 1;
            continue;
        }
        let ins: Vec<NetId> = g.inputs.iter().map(|i| map[i]).collect();
        let o = out.add_net(nl.net_name(g.output));
        out.add_gate(g.gtype, ins, o).expect("fresh output");
        map.insert(g.output, o);
    }
    for ff in nl.dffs() {
        out.add_dff(map[&ff.d], map[&ff.q]).expect("q undriven");
    }
    for &po in nl.primary_outputs() {
        out.add_output(map[&po]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;
    use crate::sim::Simulator;

    fn assert_equiv(a: &Netlist, b: &Netlist) {
        let n = a.primary_inputs().len();
        assert!(n <= 8);
        let sa = Simulator::new(a).unwrap();
        let sb = Simulator::new(b).unwrap();
        let za = vec![false; a.dff_count()];
        let zb = vec![false; b.dff_count()];
        for row in 0..(1u32 << n) {
            let ins: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
            let va = sa.eval_combinational(&ins, &za);
            let vb = sb.eval_combinational(&ins, &zb);
            for (k, (&pa, &pb)) in a
                .primary_outputs()
                .iter()
                .zip(b.primary_outputs())
                .enumerate()
            {
                assert_eq!(va[pa.index()], vb[pb.index()], "PO {k} pattern {row:b}");
            }
        }
    }

    #[test]
    fn constants_fold_through() {
        let nl = parse_bench(
            "t",
            "\
INPUT(a)
one = CONST1
w1 = AND(a, one)
w2 = OR(w1, one)
w3 = XOR(w2, one)
OUTPUT(w3)
",
        )
        .unwrap();
        let (opt, stats) = optimize(&nl);
        // w2 = 1, w3 = NOT(1) = 0 → output is constant zero.
        assert_eq!(opt.gate_count(), 0);
        assert!(stats.gates_folded >= 2);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn buffers_swept() {
        let nl = parse_bench(
            "t",
            "\
INPUT(a)
INPUT(b)
w = AND(a, b)
x = BUF(w)
y = BUF(x)
OUTPUT(y)
",
        )
        .unwrap();
        let (opt, stats) = optimize(&nl);
        assert_eq!(stats.buffers_swept, 2);
        assert_eq!(opt.gate_count(), 1);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn dead_logic_removed() {
        let nl = parse_bench(
            "t",
            "\
INPUT(a)
INPUT(b)
used = AND(a, b)
dead1 = OR(a, b)
dead2 = NOT(dead1)
OUTPUT(used)
",
        )
        .unwrap();
        let (opt, stats) = optimize(&nl);
        assert_eq!(stats.dead_gates_removed, 2);
        assert_eq!(opt.gate_count(), 1);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn mux_folds() {
        let nl = parse_bench(
            "t",
            "\
INPUT(s)
INPUT(a)
zero = CONST0
one = CONST1
m1 = MUX(s, zero, one)
m2 = MUX(s, one, zero)
m3 = MUX(s, a, a)
OUTPUT(m1)
OUTPUT(m2)
OUTPUT(m3)
",
        )
        .unwrap();
        let (opt, _) = optimize(&nl);
        // m1 = s (alias), m2 = NOT(s), m3 = a (alias): one NOT survives.
        assert_eq!(opt.gate_count(), 1);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn xor_parity_folding() {
        let nl = parse_bench(
            "t",
            "\
INPUT(a)
one = CONST1
w = XOR(a, one)
y = XNOR(w, one)
OUTPUT(y)
",
        )
        .unwrap();
        let (opt, _) = optimize(&nl);
        // XOR(a,1) = NOT a; XNOR(NOT a, 1) = NOT a ... net effect one NOT.
        assert!(opt.gate_count() <= 1);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn sequential_logic_preserved() {
        let nl = parse_bench(
            "t",
            "\
INPUT(en)
one = CONST1
g = AND(en, one)
nq = XOR(q, g)
q = DFF(nq)
OUTPUT(q)
",
        )
        .unwrap();
        let (opt, _) = optimize(&nl);
        assert_eq!(opt.dff_count(), 1);
        assert!(opt.validate().is_ok());
        let mut sa = Simulator::new(&nl).unwrap();
        let mut sb = Simulator::new(&opt).unwrap();
        for i in 0..6 {
            let en = i % 2 == 0;
            sa.step(&[en]);
            sb.step(&[en]);
            assert_eq!(sa.state(), sb.state(), "cycle {i}");
        }
    }

    #[test]
    fn nand_with_true_input_becomes_not() {
        let nl = parse_bench(
            "t",
            "\
INPUT(a)
one = CONST1
y = NAND(a, one)
OUTPUT(y)
",
        )
        .unwrap();
        let (opt, _) = optimize(&nl);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(opt.gates()[0].gtype, GateType::Not);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn idempotent_on_clean_netlists() {
        let nl = parse_bench(
            "t",
            "INPUT(a)\nINPUT(b)\ny = NAND(a, b)\nz = XOR(y, a)\nOUTPUT(z)\n",
        )
        .unwrap();
        let (once, _) = optimize(&nl);
        let (twice, stats) = optimize(&once);
        assert_eq!(once.gate_count(), twice.gate_count());
        assert_eq!(stats.gates_folded, 0);
        assert_eq!(stats.dead_gates_removed, 0);
    }
}
