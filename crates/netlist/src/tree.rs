//! Binary tree representation of a bit's fan-in cone.
//!
//! For each **bit** (a flip-flop's `d` net) ReBERT builds a binary tree of
//! the sub-circuit obtained by back-tracing `k` levels through the
//! *binarized* netlist (paper §II-A.1). Interior nodes are gates; leaves are
//! the signals feeding the sub-circuit (primary inputs, flip-flop outputs,
//! constants, or nets cut off by the depth bound).
//!
//! The **pre-order traversal** of this tree is the token sequence used by
//! the model (paper Fig. 2), with leaf signal names generalized to a single
//! `X` token.

use serde::{Deserialize, Serialize};

use crate::gate::GateType;
use crate::netlist::{Driver, NetId, Netlist};

/// A node of a [`BitTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeNode {
    /// An interior gate node with one or two children (indices into the
    /// tree's node arena).
    Gate {
        /// The gate's logic function.
        gtype: GateType,
        /// Left child index.
        left: u32,
        /// Right child index, absent for unary gates.
        right: Option<u32>,
    },
    /// A leaf: an input signal of the sub-circuit. Carries the originating
    /// net so callers can inspect provenance; tokenization generalizes all
    /// leaves to `X`.
    Leaf {
        /// The net this leaf represents.
        net: NetId,
    },
}

/// The binary fan-in tree of one bit.
///
/// Nodes are stored in an arena with the **root at index 0**; child links
/// are arena indices. Use [`BitTree::preorder`] for the canonical traversal
/// order used by tokenization.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_netlist::{binarize, parse_bench, BitTree};
///
/// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ns = XOR(a, b)\nq = DFF(s)\nOUTPUT(s)\n")?;
/// let (bin, _) = binarize(&nl);
/// let bit = bin.bits()[0];
/// let tree = BitTree::extract(&bin, bit, 6);
/// assert_eq!(tree.depth(), 2); // XOR over two leaves
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTree {
    /// The bit (net) this tree was extracted for.
    pub bit: NetId,
    nodes: Vec<TreeNode>,
}

impl BitTree {
    /// Extracts the fan-in binary tree of `bit`, back-tracing at most
    /// `k` gate levels. Traversal stops early at primary inputs, flip-flop
    /// outputs, and constants; nets cut by the depth bound become leaves.
    ///
    /// The netlist should already be binarized (every gate ≤ 2 inputs);
    /// wider gates are truncated to their first two inputs with a
    /// debug-mode assertion.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a gate with more than two inputs is
    /// encountered.
    pub fn extract(nl: &Netlist, bit: NetId, k: usize) -> Self {
        let mut nodes = Vec::new();
        // Reserve slot 0 for the root.
        Self::build(nl, bit, k, &mut nodes);
        BitTree { bit, nodes }
    }

    fn build(nl: &Netlist, net: NetId, depth: usize, nodes: &mut Vec<TreeNode>) -> u32 {
        let my_index = nodes.len() as u32;
        if depth == 0 {
            nodes.push(TreeNode::Leaf { net });
            return my_index;
        }
        match nl.driver(net) {
            Driver::Gate(gid) => {
                let g = nl.gate(gid);
                debug_assert!(
                    g.inputs.len() <= 2,
                    "BitTree::extract expects a binarized netlist"
                );
                // Placeholder; children are appended after, then patched.
                nodes.push(TreeNode::Gate {
                    gtype: g.gtype,
                    left: 0,
                    right: None,
                });
                let left = Self::build(nl, g.inputs[0], depth - 1, nodes);
                let right = g
                    .inputs
                    .get(1)
                    .map(|&n| Self::build(nl, n, depth - 1, nodes));
                if let TreeNode::Gate {
                    left: l, right: r, ..
                } = &mut nodes[my_index as usize]
                {
                    *l = left;
                    *r = right;
                }
                my_index
            }
            _ => {
                nodes.push(TreeNode::Leaf { net });
                my_index
            }
        }
    }

    /// The arena of nodes; index 0 is the root.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for extracted trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tree's depth: a single leaf has depth 1.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], i: u32) -> usize {
            match &nodes[i as usize] {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Gate { left, right, .. } => {
                    let l = rec(nodes, *left);
                    let r = right.map(|r| rec(nodes, r)).unwrap_or(0);
                    1 + l.max(r)
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Returns the node indices in pre-order (root, left subtree, right
    /// subtree) — the canonical sequence order for tokenization.
    pub fn preorder(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0u32];
        if self.nodes.is_empty() {
            return order;
        }
        while let Some(i) = stack.pop() {
            order.push(i);
            if let TreeNode::Gate { left, right, .. } = &self.nodes[i as usize] {
                // Push right first so left is visited first.
                if let Some(r) = right {
                    stack.push(*r);
                }
                stack.push(*left);
            }
        }
        order
    }

    /// For each node (in arena order) computes `(parent, is_right_child)`;
    /// the root's parent is `None`. Useful for positional encodings.
    pub fn parents(&self) -> Vec<Option<(u32, bool)>> {
        let mut parents = vec![None; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let TreeNode::Gate { left, right, .. } = n {
                parents[*left as usize] = Some((i as u32, false));
                if let Some(r) = right {
                    parents[*r as usize] = Some((i as u32, true));
                }
            }
        }
        parents
    }

    /// Count of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::binarize;
    use crate::parser::parse_bench;

    fn toy() -> Netlist {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
w1 = AND(a, b)
w2 = OR(w1, c)
w3 = NOT(w2)
q = DFF(w3)
OUTPUT(w3)
";
        let (bin, _) = binarize(&parse_bench("toy", src).unwrap());
        bin
    }

    #[test]
    fn extract_shapes() {
        let nl = toy();
        let bit = nl.bits()[0];
        let tree = BitTree::extract(&nl, bit, 6);
        // NOT -> OR -> (AND -> (a, b), c)
        assert_eq!(tree.depth(), 4);
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.len(), 6);
        match &tree.nodes()[0] {
            TreeNode::Gate { gtype, right, .. } => {
                assert_eq!(*gtype, GateType::Not);
                assert!(right.is_none());
            }
            _ => panic!("root should be the NOT gate"),
        }
    }

    #[test]
    fn depth_bound_cuts() {
        let nl = toy();
        let bit = nl.bits()[0];
        let tree = BitTree::extract(&nl, bit, 1);
        // Only the NOT is expanded; its input becomes a leaf.
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.leaf_count(), 1);
        let t0 = BitTree::extract(&nl, bit, 0);
        assert_eq!(t0.depth(), 1);
        assert_eq!(t0.len(), 1);
    }

    #[test]
    fn preorder_matches_paper_example() {
        // Fig. 2-style: root with two subtrees traversed root-left-right.
        let nl = toy();
        let tree = BitTree::extract(&nl, nl.bits()[0], 6);
        let order = tree.preorder();
        assert_eq!(order[0], 0, "pre-order starts at the root");
        assert_eq!(order.len(), tree.len());
        // In this arena construction, build order == pre-order.
        let expected: Vec<u32> = (0..tree.len() as u32).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn ff_outputs_are_leaves() {
        let src = "\
INPUT(a)
d0 = XOR(a, q1)
d1 = NOT(q0)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(q0)
";
        let (nl, _) = binarize(&parse_bench("ff", src).unwrap());
        let bits = nl.bits();
        let tree = BitTree::extract(&nl, bits[0], 6);
        // d0 = XOR(a, q1): both children are leaves even with k=6 because
        // `a` is a PI and `q1` is a DFF output.
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn parents_are_consistent() {
        let nl = toy();
        let tree = BitTree::extract(&nl, nl.bits()[0], 6);
        let parents = tree.parents();
        assert!(parents[0].is_none());
        let mut child_count = vec![0usize; tree.len()];
        for p in parents.iter().flatten() {
            child_count[p.0 as usize] += 1;
        }
        for (i, n) in tree.nodes().iter().enumerate() {
            match n {
                TreeNode::Leaf { .. } => assert_eq!(child_count[i], 0),
                TreeNode::Gate { right, .. } => {
                    assert_eq!(child_count[i], if right.is_some() { 2 } else { 1 })
                }
            }
        }
    }
}
