//! The gate-level netlist arena: nets, gates, flip-flops, and validation.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gate::GateType;

/// Identifier of a net (a named signal) inside one [`Netlist`].
///
/// `NetId`s are dense indices; they are only meaningful relative to the
/// netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the raw dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a combinational gate inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Returns the raw dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a D flip-flop inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DffId(pub(crate) u32);

impl DffId {
    /// Returns the raw dense index of this flip-flop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DffId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff{}", self.0)
    }
}

/// A combinational gate instance: a type, ordered input nets, one output net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The logic function of the gate.
    pub gtype: GateType,
    /// Ordered fan-in nets (order matters for `MUX`).
    pub inputs: Vec<NetId>,
    /// The single output net driven by this gate.
    pub output: NetId,
}

/// A D flip-flop: on each clock the value on `d` is transferred to `q`.
///
/// In the ReBERT formulation the **bits** of a design are exactly the `d`
/// nets of its flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dff {
    /// Data input net (the "bit" signal).
    pub d: NetId,
    /// State output net.
    pub q: NetId,
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// Driven from outside the circuit.
    PrimaryInput,
    /// Driven by the output of a combinational gate.
    Gate(GateId),
    /// Driven by the `q` output of a flip-flop.
    Dff(DffId),
    /// Constant logic zero.
    ConstZero,
    /// Constant logic one.
    ConstOne,
}

/// A gate-level netlist: an arena of named nets, combinational gates, and
/// D flip-flops, with declared primary inputs and outputs.
///
/// Construction is incremental through the `add_*` methods; structural
/// invariants (single driver per net, legal gate arities, acyclic
/// combinational logic) are enforced eagerly where cheap and by
/// [`Netlist::validate`] for the global properties.
///
/// # Examples
///
/// ```
/// use rebert_netlist::{GateType, Netlist};
///
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let s = nl.add_net("s");
/// nl.add_gate(GateType::Xor, vec![a, b], s).unwrap();
/// let q = nl.add_net("q");
/// nl.add_dff(s, q).unwrap();
/// nl.add_output(s);
/// assert!(nl.validate().is_ok());
/// assert_eq!(nl.bits().len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Driver>,
    #[serde(skip)]
    name_to_net: HashMap<String, NetId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    /// Whether each net has an explicit driver attached. Rebuilt after
    /// deserialization by [`Netlist::rebuild_caches`].
    #[serde(skip)]
    driven: Vec<bool>,
}

/// Error produced when building or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net name was declared twice.
    DuplicateNet(String),
    /// A net already has a driver and a second was added.
    MultipleDrivers(String),
    /// A gate was given an illegal number of inputs.
    BadArity {
        /// The offending gate type.
        gtype: GateType,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A net is read or written that does not belong to this netlist.
    UnknownNet(NetId),
    /// A net has no driver after construction finished.
    Undriven(String),
    /// The combinational logic contains a cycle through the named net.
    CombinationalCycle(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet(n) => write!(f, "duplicate net `{n}`"),
            NetlistError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            NetlistError::BadArity { gtype, got } => {
                write!(f, "gate {gtype} cannot take {got} inputs")
            }
            NetlistError::UnknownNet(id) => write!(f, "net {id} does not exist"),
            NetlistError::Undriven(n) => write!(f, "net `{n}` has no driver"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net `{n}`")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            drivers: Vec::new(),
            name_to_net: HashMap::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            driven: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets in the netlist.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Declared primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Declared primary outputs, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops, indexable by [`DffId::index`].
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Looks up a gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a flip-flop by id.
    pub fn dff(&self, id: DffId) -> &Dff {
        &self.dffs[id.index()]
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_to_net.get(name).copied()
    }

    /// What drives the given net.
    pub fn driver(&self, id: NetId) -> Driver {
        self.drivers[id.index()]
    }

    /// Iterates over `(NetId, &str)` for all nets.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &str)> {
        self.net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n.as_str()))
    }

    /// Adds a fresh undriven net.
    ///
    /// If `name` is already taken a unique suffix is appended, so the
    /// returned id always denotes a brand-new net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.name_to_net.contains_key(&name) {
            let mut i = 1usize;
            loop {
                let cand = format!("{name}_{i}");
                if !self.name_to_net.contains_key(&cand) {
                    name = cand;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId(self.net_names.len() as u32);
        self.name_to_net.insert(name.clone(), id);
        self.net_names.push(name);
        // Placeholder; a real driver must be attached before validate().
        // `driven` distinguishes "not yet driven" from an explicit constant.
        self.drivers.push(Driver::ConstZero);
        self.driven.push(false);
        id
    }

    /// Declares a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.drivers[id.index()] = Driver::PrimaryInput;
        self.driven[id.index()] = true;
        self.primary_inputs.push(id);
        id
    }

    /// Creates a constant-driven net (`value` = the constant).
    pub fn add_const(&mut self, name: impl Into<String>, value: bool) -> NetId {
        let id = self.add_net(name);
        self.drivers[id.index()] = if value {
            Driver::ConstOne
        } else {
            Driver::ConstZero
        };
        self.driven[id.index()] = true;
        id
    }

    /// Marks an existing net as a primary output.
    pub fn add_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Turns an existing *undriven* net into a primary input.
    ///
    /// Used by netlist-to-netlist translations (e.g. [`crate::binarize`])
    /// that first mirror all net names and then re-attach drivers.
    ///
    /// # Panics
    ///
    /// Panics if the net is already driven or does not exist.
    pub fn promote_to_input(&mut self, net: NetId) {
        assert!(net.index() < self.net_names.len(), "unknown net {net}");
        assert!(
            !self.driven[net.index()],
            "net `{}` is already driven",
            self.net_names[net.index()]
        );
        self.drivers[net.index()] = Driver::PrimaryInput;
        self.driven[net.index()] = true;
        self.primary_inputs.push(net);
    }

    /// Turns an existing *undriven* net into a constant.
    ///
    /// # Panics
    ///
    /// Panics if the net is already driven or does not exist.
    pub fn promote_to_const(&mut self, net: NetId, value: bool) {
        assert!(net.index() < self.net_names.len(), "unknown net {net}");
        assert!(
            !self.driven[net.index()],
            "net `{}` is already driven",
            self.net_names[net.index()]
        );
        self.drivers[net.index()] = if value {
            Driver::ConstOne
        } else {
            Driver::ConstZero
        };
        self.driven[net.index()] = true;
    }

    /// Adds a combinational gate driving `output`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] for an illegal input count,
    /// [`NetlistError::UnknownNet`] if any net id is foreign, and
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven.
    pub fn add_gate(
        &mut self,
        gtype: GateType,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if !gtype.arity_ok(inputs.len()) {
            return Err(NetlistError::BadArity {
                gtype,
                got: inputs.len(),
            });
        }
        for &n in inputs.iter().chain(std::iter::once(&output)) {
            if n.index() >= self.net_names.len() {
                return Err(NetlistError::UnknownNet(n));
            }
        }
        if self.driven[output.index()] {
            return Err(NetlistError::MultipleDrivers(
                self.net_names[output.index()].clone(),
            ));
        }
        let id = GateId(self.gates.len() as u32);
        self.drivers[output.index()] = Driver::Gate(id);
        self.driven[output.index()] = true;
        self.gates.push(Gate {
            gtype,
            inputs,
            output,
        });
        Ok(id)
    }

    /// Convenience: adds a gate with a freshly created output net and
    /// returns that net.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_gate`].
    pub fn add_gate_new_net(
        &mut self,
        gtype: GateType,
        inputs: Vec<NetId>,
        name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let out = self.add_net(name);
        self.add_gate(gtype, inputs, out)?;
        Ok(out)
    }

    /// Adds a D flip-flop with data input `d` driving state output `q`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] for foreign ids and
    /// [`NetlistError::MultipleDrivers`] if `q` is already driven.
    pub fn add_dff(&mut self, d: NetId, q: NetId) -> Result<DffId, NetlistError> {
        for &n in &[d, q] {
            if n.index() >= self.net_names.len() {
                return Err(NetlistError::UnknownNet(n));
            }
        }
        if self.driven[q.index()] {
            return Err(NetlistError::MultipleDrivers(
                self.net_names[q.index()].clone(),
            ));
        }
        let id = DffId(self.dffs.len() as u32);
        self.drivers[q.index()] = Driver::Dff(id);
        self.driven[q.index()] = true;
        self.dffs.push(Dff { d, q });
        Ok(id)
    }

    /// The **bits** of the design, in flip-flop declaration order: the data
    /// input net of every flip-flop. This is the ReBERT definition — bits
    /// are "signals feeding into sequential components".
    pub fn bits(&self) -> Vec<NetId> {
        self.dffs.iter().map(|ff| ff.d).collect()
    }

    /// Replaces the logic of gate `id` in place. Used by the corruption
    /// engine for 1-for-1 template substitution when arities match.
    ///
    /// # Panics
    ///
    /// Panics if the new arity is illegal for `gtype`.
    pub fn replace_gate_logic(&mut self, id: GateId, gtype: GateType, inputs: Vec<NetId>) {
        assert!(gtype.arity_ok(inputs.len()));
        let g = &mut self.gates[id.index()];
        g.gtype = gtype;
        g.inputs = inputs;
    }

    /// Checks global structural invariants:
    ///
    /// * every net that is consumed by a gate, flip-flop, or primary output
    ///   has a driver;
    /// * the combinational gate graph is acyclic (flip-flops legally break
    ///   cycles).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant. Lint passes that want the
    /// full list use [`Netlist::validate_all`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        match self.validate_all().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Collects **every** violated structural invariant instead of
    /// stopping at the first: all undriven-but-consumed nets (in net
    /// declaration order) followed by one
    /// [`NetlistError::CombinationalCycle`] per distinct combinational
    /// cycle. An empty vector means the netlist is valid.
    pub fn validate_all(&self) -> Vec<NetlistError> {
        let mut errors = Vec::new();
        // Driver presence for every consumed net.
        let mut consumed: Vec<bool> = vec![false; self.net_names.len()];
        for g in &self.gates {
            for &n in &g.inputs {
                consumed[n.index()] = true;
            }
        }
        for ff in &self.dffs {
            consumed[ff.d.index()] = true;
        }
        for &n in &self.primary_outputs {
            consumed[n.index()] = true;
        }
        for (i, &c) in consumed.iter().enumerate() {
            if c && !self.driven[i] {
                errors.push(NetlistError::Undriven(self.net_names[i].clone()));
            }
        }
        for cycle in self.combinational_cycles() {
            let name = cycle
                .first()
                .map(|&n| self.net_name(n).to_owned())
                .unwrap_or_default();
            errors.push(NetlistError::CombinationalCycle(name));
        }
        errors
    }

    /// Whether the net has an explicit driver attached. Undriven nets
    /// report a placeholder [`Driver::ConstZero`] from
    /// [`Netlist::driver`]; this distinguishes that placeholder from a
    /// real constant.
    pub fn is_driven(&self, id: NetId) -> bool {
        self.driven[id.index()]
    }

    /// Returns the gates in a topological order of the combinational graph
    /// (inputs before the gates that read them). Flip-flop outputs and
    /// primary inputs are sources.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if no such order exists.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        let mut indegree = vec![0usize; n];
        // fanout adjacency from gate -> gates reading its output
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (gi, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if let Driver::Gate(src) = self.drivers[inp.index()] {
                    readers[src.index()].push(gi as u32);
                    indegree[gi] += 1;
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&g| indegree[g as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(GateId(g));
            for &r in &readers[g as usize] {
                indegree[r as usize] -= 1;
                if indegree[r as usize] == 0 {
                    queue.push(r);
                }
            }
        }
        if order.len() != n {
            let culprit = indegree
                .iter()
                .position(|&d| d > 0)
                .map(|gi| self.net_name(self.gates[gi].output).to_owned())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle(culprit));
        }
        Ok(order)
    }

    /// Every distinct combinational cycle as a full net path: the output
    /// nets of the gates along the cycle, in feed order (each net is an
    /// input to the gate driving the next entry; the last feeds the
    /// first). An acyclic netlist yields an empty vector.
    ///
    /// Two cycles sharing a gate are reported as one path — the goal is a
    /// human-readable witness for every cyclic region, not an enumeration
    /// of all simple cycles (which can be exponential).
    pub fn combinational_cycles(&self) -> Vec<Vec<NetId>> {
        let n = self.gates.len();
        // Kahn's algorithm; gates left with a positive indegree are the
        // cyclic core plus its downstream cone.
        let mut indegree = vec![0usize; n];
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (gi, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if let Driver::Gate(src) = self.drivers[inp.index()] {
                    readers[src.index()].push(gi as u32);
                    indegree[gi] += 1;
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&g| indegree[g as usize] == 0)
            .collect();
        let mut head = 0;
        let mut remaining = n;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            remaining -= 1;
            for &r in &readers[g as usize] {
                indegree[r as usize] -= 1;
                if indegree[r as usize] == 0 {
                    queue.push(r);
                }
            }
        }
        if remaining == 0 {
            return Vec::new();
        }
        let stuck = |g: usize| indegree[g] > 0;
        // DFS restricted to stuck gates with an explicit stack; a grey
        // (on-path) neighbour closes a cycle. Blackened gates are never
        // revisited, so each cyclic region yields one witness path.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; n];
        let mut cycles = Vec::new();
        for root in 0..n {
            if !stuck(root) || color[root] != WHITE {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            let mut path: Vec<usize> = vec![root];
            color[root] = GREY;
            while !stack.is_empty() {
                let (g, next) = *stack.last().expect("stack is non-empty");
                if let Some(&r) = readers[g].get(next) {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let r = r as usize;
                    if !stuck(r) {
                        continue;
                    }
                    match color[r] {
                        WHITE => {
                            color[r] = GREY;
                            stack.push((r, 0));
                            path.push(r);
                        }
                        GREY => {
                            let from = path.iter().position(|&p| p == r).expect("grey is on path");
                            cycles.push(
                                path[from..]
                                    .iter()
                                    .map(|&gi| self.gates[gi].output)
                                    .collect(),
                            );
                        }
                        _ => {}
                    }
                } else {
                    color[g] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
        cycles
    }
}

impl Netlist {
    /// Rebuilds derived lookup state after deserialization.
    ///
    /// `serde` skips the internal driven-flag cache; call this after
    /// deserializing a netlist by hand. All public constructors and parsers
    /// already do it.
    pub fn rebuild_caches(&mut self) {
        self.driven = vec![false; self.net_names.len()];
        for &pi in &self.primary_inputs {
            self.driven[pi.index()] = true;
        }
        for g in &self.gates {
            self.driven[g.output.index()] = true;
        }
        for ff in &self.dffs {
            self.driven[ff.q.index()] = true;
        }
        for (i, d) in self.drivers.iter().enumerate() {
            if matches!(d, Driver::ConstOne | Driver::ConstZero) {
                // Constants count as driven only if they were explicitly
                // created through add_const; after deserialization we cannot
                // distinguish, so treat them as driven.
                self.driven[i] = true;
            }
        }
        self.name_to_net = self
            .net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), NetId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ff_toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_net("s");
        nl.add_gate(GateType::Xor, vec![a, b], s).unwrap();
        let q = nl.add_net("q");
        nl.add_dff(s, q).unwrap();
        nl.add_output(s);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = xor_ff_toy();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.bits(), vec![nl.find_net("s").unwrap()]);
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut nl = Netlist::new("d");
        let a = nl.add_net("x");
        let b = nl.add_net("x");
        assert_ne!(a, b);
        assert_ne!(nl.net_name(a), nl.net_name(b));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_net("o");
        nl.add_gate(GateType::And, vec![a, b], o).unwrap();
        let err = nl.add_gate(GateType::Or, vec![a, b], o).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers(_)));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let o = nl.add_net("o");
        let err = nl.add_gate(GateType::And, vec![a], o).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn undriven_consumed_net_detected() {
        let mut nl = Netlist::new("u");
        let a = nl.add_input("a");
        let floating = nl.add_net("floating");
        let o = nl.add_net("o");
        nl.add_gate(GateType::And, vec![a, floating], o).unwrap();
        assert!(matches!(nl.validate(), Err(NetlistError::Undriven(_))));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateType::And, vec![a, y], x).unwrap();
        nl.add_gate(GateType::Or, vec![a, x], y).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        // x = AND(a, q); q = DFF(x) — legal sequential loop.
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        let x = nl.add_net("x");
        nl.add_gate(GateType::And, vec![a, q], x).unwrap();
        nl.add_dff(x, q).unwrap();
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let m = nl.add_gate_new_net(GateType::And, vec![a, b], "m").unwrap();
        let o = nl.add_gate_new_net(GateType::Not, vec![m], "o").unwrap();
        nl.add_output(o);
        let order = nl.topo_order().unwrap();
        let pos = |gid: GateId| order.iter().position(|&g| g == gid).unwrap();
        // gate 0 drives m, gate 1 reads m.
        assert!(pos(GateId(0)) < pos(GateId(1)));
    }

    #[test]
    fn serde_round_trip_rebuilds() {
        let nl = xor_ff_toy();
        let js = serde_json::to_string(&nl).unwrap();
        let mut back: Netlist = serde_json::from_str(&js).unwrap();
        back.rebuild_caches();
        assert!(back.validate().is_ok());
        assert_eq!(back.find_net("s"), nl.find_net("s"));
        assert_eq!(back.gate_count(), nl.gate_count());
    }

    #[test]
    fn validate_all_collects_every_violation() {
        // Two undriven consumed nets AND a combinational cycle in the
        // same netlist: the single-error API reports the first, the
        // collecting API reports all three.
        let mut nl = Netlist::new("multi");
        let a = nl.add_input("a");
        let f1 = nl.add_net("float1");
        let f2 = nl.add_net("float2");
        let o1 = nl.add_net("o1");
        let o2 = nl.add_net("o2");
        nl.add_gate(GateType::And, vec![a, f1], o1).unwrap();
        nl.add_gate(GateType::Or, vec![a, f2], o2).unwrap();
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateType::And, vec![a, y], x).unwrap();
        nl.add_gate(GateType::Or, vec![a, x], y).unwrap();

        let all = nl.validate_all();
        assert_eq!(all.len(), 3, "{all:?}");
        assert_eq!(all[0], NetlistError::Undriven("float1".into()));
        assert_eq!(all[1], NetlistError::Undriven("float2".into()));
        assert!(matches!(all[2], NetlistError::CombinationalCycle(_)));
        // The thin wrapper still surfaces exactly the first violation.
        assert_eq!(nl.validate(), Err(NetlistError::Undriven("float1".into())));
    }

    #[test]
    fn validate_all_empty_on_valid_netlist() {
        assert!(xor_ff_toy().validate_all().is_empty());
    }

    #[test]
    fn combinational_cycles_report_full_paths() {
        // x = AND(a, y); y = OR(a, x): one cycle through nets {x, y}.
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateType::And, vec![a, y], x).unwrap();
        nl.add_gate(GateType::Or, vec![a, x], y).unwrap();
        let cycles = nl.combinational_cycles();
        assert_eq!(cycles.len(), 1);
        let names: Vec<&str> = cycles[0].iter().map(|&n| nl.net_name(n)).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"x") && names.contains(&"y"));
    }

    #[test]
    fn disjoint_cycles_are_reported_separately() {
        let mut nl = Netlist::new("c2");
        let a = nl.add_input("a");
        for tag in ["p", "q"] {
            let x = nl.add_net(format!("{tag}_x"));
            let y = nl.add_net(format!("{tag}_y"));
            nl.add_gate(GateType::And, vec![a, y], x).unwrap();
            nl.add_gate(GateType::Or, vec![a, x], y).unwrap();
        }
        assert_eq!(nl.combinational_cycles().len(), 2);
        // Gates downstream of a cycle are not themselves a cycle.
        assert!(xor_ff_toy().combinational_cycles().is_empty());
    }

    #[test]
    fn downstream_of_cycle_is_not_a_cycle() {
        // z = NOT(x) hangs off the cycle; the only reported path is x/y.
        let mut nl = Netlist::new("c3");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateType::And, vec![a, y], x).unwrap();
        nl.add_gate(GateType::Or, vec![a, x], y).unwrap();
        nl.add_gate_new_net(GateType::Not, vec![x], "z").unwrap();
        let cycles = nl.combinational_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn is_driven_distinguishes_placeholder_from_constant() {
        let mut nl = Netlist::new("d");
        let floating = nl.add_net("floating");
        let gnd = nl.add_const("gnd", false);
        assert!(!nl.is_driven(floating));
        assert!(nl.is_driven(gnd));
        assert_eq!(nl.driver(floating), nl.driver(gnd), "same placeholder");
    }

    #[test]
    fn constants_are_driven() {
        let mut nl = Netlist::new("k");
        let one = nl.add_const("vcc", true);
        let a = nl.add_input("a");
        let o = nl
            .add_gate_new_net(GateType::And, vec![a, one], "o")
            .unwrap();
        nl.add_output(o);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.driver(one), Driver::ConstOne);
    }
}
