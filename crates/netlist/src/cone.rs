//! Fan-in cone extraction.
//!
//! A **cone** is the set of gates and nets reachable by back-tracing from a
//! root net through at most `k` gate levels. [`BitTree`](crate::BitTree)
//! gives the tree-shaped view used for tokenization; this module gives the
//! set-shaped view used for statistics and for the structural baseline.

use std::collections::HashSet;

use crate::netlist::{Driver, GateId, NetId, Netlist};

/// The fan-in cone of a net: gates and boundary nets within `k` levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cone {
    /// The net the cone was traced from.
    pub root: NetId,
    /// Gates inside the cone (deduplicated — the netlist is a DAG, so a
    /// gate can be reached along several paths).
    pub gates: Vec<GateId>,
    /// Nets at the cone boundary: primary inputs, flip-flop outputs,
    /// constants, or nets cut by the depth bound.
    pub leaves: Vec<NetId>,
    /// Deepest level reached (≤ the requested `k`).
    pub depth: usize,
}

impl Cone {
    /// Traces the fan-in cone of `root`, up to `k` gate levels deep.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use rebert_netlist::{parse_bench, Cone};
    ///
    /// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ny = AND(a, b)\nz = NOT(y)\nOUTPUT(z)\n")?;
    /// let z = nl.find_net("z").expect("net");
    /// let cone = Cone::trace(&nl, z, 6);
    /// assert_eq!(cone.gates.len(), 2);
    /// assert_eq!(cone.leaves.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn trace(nl: &Netlist, root: NetId, k: usize) -> Self {
        let mut gates = Vec::new();
        let mut seen_gates: HashSet<GateId> = HashSet::new();
        let mut leaves = Vec::new();
        let mut seen_leaves: HashSet<NetId> = HashSet::new();
        let mut max_depth = 0usize;

        // (net, remaining depth)
        let mut stack = vec![(root, k)];
        let mut visited: HashSet<(NetId, usize)> = HashSet::new();
        while let Some((net, remaining)) = stack.pop() {
            if !visited.insert((net, remaining)) {
                continue;
            }
            match nl.driver(net) {
                Driver::Gate(gid) if remaining > 0 => {
                    if seen_gates.insert(gid) {
                        gates.push(gid);
                    }
                    max_depth = max_depth.max(k - remaining + 1);
                    for &inp in &nl.gate(gid).inputs {
                        stack.push((inp, remaining - 1));
                    }
                }
                _ => {
                    if seen_leaves.insert(net) {
                        leaves.push(net);
                    }
                }
            }
        }
        Cone {
            root,
            gates,
            leaves,
            depth: max_depth,
        }
    }

    /// Number of gates in the cone.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;

    #[test]
    fn cone_stops_at_sequential_boundary() {
        let src = "\
INPUT(a)
d = AND(a, q)
q = DFF(d)
OUTPUT(q)
";
        let nl = parse_bench("t", src).unwrap();
        let d = nl.find_net("d").unwrap();
        let cone = Cone::trace(&nl, d, 10);
        assert_eq!(cone.gates.len(), 1);
        // Leaves: a (PI) and q (DFF output) — not traced through.
        assert_eq!(cone.leaves.len(), 2);
    }

    #[test]
    fn depth_bound_respected() {
        let src = "\
INPUT(a)
w1 = NOT(a)
w2 = NOT(w1)
w3 = NOT(w2)
w4 = NOT(w3)
OUTPUT(w4)
";
        let nl = parse_bench("chain", src).unwrap();
        let w4 = nl.find_net("w4").unwrap();
        let c2 = Cone::trace(&nl, w4, 2);
        assert_eq!(c2.gate_count(), 2);
        assert_eq!(c2.depth, 2);
        let call = Cone::trace(&nl, w4, 10);
        assert_eq!(call.gate_count(), 4);
        assert_eq!(call.depth, 4);
    }

    #[test]
    fn reconvergence_deduplicates() {
        // y = AND(w, w) — w reached twice but counted once.
        let src = "\
INPUT(a)
w = NOT(a)
y = AND(w, w)
OUTPUT(y)
";
        let nl = parse_bench("re", src).unwrap();
        let y = nl.find_net("y").unwrap();
        let cone = Cone::trace(&nl, y, 4);
        assert_eq!(cone.gate_count(), 2);
        assert_eq!(cone.leaves.len(), 1);
    }

    #[test]
    fn root_without_gate_driver_is_leaf() {
        let src = "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n";
        let nl = parse_bench("t", src).unwrap();
        let a = nl.find_net("a").unwrap();
        let cone = Cone::trace(&nl, a, 3);
        assert_eq!(cone.gate_count(), 0);
        assert_eq!(cone.leaves, vec![a]);
        assert_eq!(cone.depth, 0);
    }
}
