//! Summary statistics of a netlist (used for Table I).

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateType;
use crate::netlist::Netlist;

/// Aggregate statistics of one netlist, in the shape of the paper's
/// Table I columns plus a per-gate-type histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flip-flops (= number of bits).
    pub ffs: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of nets.
    pub nets: usize,
    /// Gate count per type.
    pub by_type: BTreeMap<GateType, usize>,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use rebert_netlist::{parse_bench, NetlistStats};
    ///
    /// let nl = parse_bench("t", "INPUT(a)\nq = DFF(a)\nOUTPUT(q)\n")?;
    /// let stats = NetlistStats::of(&nl);
    /// assert_eq!(stats.ffs, 1);
    /// assert_eq!(stats.gates, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(nl: &Netlist) -> Self {
        let mut by_type = BTreeMap::new();
        for g in nl.gates() {
            *by_type.entry(g.gtype).or_insert(0) += 1;
        }
        NetlistStats {
            name: nl.name().to_owned(),
            gates: nl.gate_count(),
            ffs: nl.dff_count(),
            inputs: nl.primary_inputs().len(),
            outputs: nl.primary_outputs().len(),
            nets: nl.net_count(),
            by_type,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates, {} FFs, {} PIs, {} POs, {} nets",
            self.name, self.gates, self.ffs, self.inputs, self.outputs, self.nets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;

    #[test]
    fn counts_by_type() {
        let src = "\
INPUT(a)
INPUT(b)
x = AND(a, b)
y = AND(a, x)
z = NOT(y)
q = DFF(z)
OUTPUT(z)
";
        let nl = parse_bench("s", src).unwrap();
        let st = NetlistStats::of(&nl);
        assert_eq!(st.gates, 3);
        assert_eq!(st.ffs, 1);
        assert_eq!(st.by_type[&GateType::And], 2);
        assert_eq!(st.by_type[&GateType::Not], 1);
        assert!(st.to_string().contains("3 gates"));
    }
}
