//! Checked synchronization primitives for the ReBERT workspace.
//!
//! Drop-in `Mutex` / `RwLock` / `Condvar` wrappers with three compile
//! modes, selected automatically:
//!
//! * **Debug builds** (`cfg(debug_assertions)`, the mode every
//!   `cargo test` run uses): each constructor takes a static *site
//!   name*; the first construction per name registers a dense site id,
//!   and every blocking acquisition records `held → wanted` edges into
//!   a global lock-order graph (lockdep style). An edge that closes a
//!   cycle — the ABBA pattern that deadlocks once the interleavings
//!   line up — panics immediately with *both* acquisition paths, even
//!   if this particular run would not have deadlocked.
//!   `REBERT_SYNC_CHECK=0` opts a debug process out; `=1` (what CI
//!   exports) is the default-on state made explicit. Per-site
//!   acquisition / contention / wait / hold counters feed the serve
//!   `/metrics` exposition via [`site_stats`].
//! * **Release builds**: transparent newtypes over `std::sync` with the
//!   site-name argument ignored — no registry, no counters, no graph;
//!   layout equality with the std types is pinned by a test.
//! * **`--cfg loom`**: straight delegation to loom's model-checked
//!   primitives, with no tracking (tracking would perturb loom's
//!   deterministic exploration). The lock-order core itself is modeled
//!   on loom separately (see the `loom_model` module).
//!
//! In every mode the lock APIs are **poison-recovering**: a panic on
//! one request thread must not wedge the daemon, so `lock()` returns
//! the guard directly and a poisoned inner lock is recovered via
//! [`std::sync::PoisonError::into_inner`]. The data-consistency story
//! is unchanged — ReBERT's critical sections leave their structures
//! valid at every await point — and the panicking request itself is
//! reported as a 500 by the serve layer's `catch_unwind` boundary.
//!
//! There is deliberately **no bare `Condvar::wait`**: only
//! [`Condvar::wait_while`], so every wait site re-checks its predicate
//! and spurious wakeups are structurally impossible to mishandle.
//!
//! Site naming convention: `crate.module.lock`, e.g.
//! `"rebert.cache.shard"` or `"serve.queue.state"`. Instances sharing a
//! name share one graph node; instances that are *intentionally*
//! acquired nested (rare) must use distinct names.

#![warn(missing_docs)]

mod graph;
pub use graph::{CycleReport, EdgeCtx, OrderGraph};

#[cfg(all(debug_assertions, not(loom)))]
mod tracker;

/// Counters for one lock site, as exposed by [`site_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The static site name passed to the constructor.
    pub name: &'static str,
    /// Total acquisitions (lock / try-lock success / read / write).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total nanoseconds spent blocked waiting to acquire.
    pub wait_ns: u64,
    /// Total nanoseconds the lock was held.
    pub hold_ns: u64,
}

/// Per-site counters, in registration order. Empty in release and loom
/// builds (the wrappers carry no instrumentation there), so `/metrics`
/// emits the `rebert_lock_*` series only when a debug daemon runs.
pub fn site_stats() -> Vec<SiteStats> {
    #[cfg(all(debug_assertions, not(loom)))]
    {
        tracker::stats()
    }
    #[cfg(not(all(debug_assertions, not(loom))))]
    {
        Vec::new()
    }
}

/// Whether lock-order checking is active in this process.
pub fn checking_enabled() -> bool {
    #[cfg(all(debug_assertions, not(loom)))]
    {
        tracker::enabled()
    }
    #[cfg(not(all(debug_assertions, not(loom))))]
    {
        false
    }
}

/// Installs a process-wide hook that receives the rendered cycle report
/// just before the detecting thread panics. The serve daemon points
/// this at rebert-obs (`error!` + the trace ring) so a cycle shows up
/// in `/debug/trace` output as well as the panic message. The hook runs
/// with no tracker locks held and with detection suppressed on the
/// calling thread, so it may itself take checked locks. No-op in
/// release and loom builds.
pub fn set_report_hook(hook: fn(&str)) {
    #[cfg(all(debug_assertions, not(loom)))]
    tracker::set_hook(hook);
    #[cfg(not(all(debug_assertions, not(loom))))]
    let _ = hook;
}

// ---------------------------------------------------------------------
// Debug implementation: std primitives + lock-order tracking.
// ---------------------------------------------------------------------
#[cfg(all(debug_assertions, not(loom)))]
mod imp {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{PoisonError, TryLockError};
    use std::time::{Duration, Instant};

    use crate::tracker::{self, HeldToken, SiteCell};

    /// A mutual-exclusion lock with lock-order checking. See the crate
    /// docs for the three compile modes.
    pub struct Mutex<T: ?Sized> {
        site: &'static SiteCell,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value`; `site` names this lock site in the order
        /// graph and the `/metrics` exposition.
        pub fn new(value: T, site: &'static str) -> Self {
            Mutex {
                site: tracker::site(site),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the lock, returning the inner value (recovering
        /// from poisoning).
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking if necessary. Panics with a
        /// two-path report if this acquisition closes a lock-order
        /// cycle; recovers (rather than panics) if a previous holder
        /// poisoned the lock.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            tracker::before_acquire(self.site);
            let started = Instant::now();
            let (inner, contended) = match self.inner.try_lock() {
                Ok(g) => (g, false),
                Err(TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(TryLockError::WouldBlock) => (
                    self.inner.lock().unwrap_or_else(PoisonError::into_inner),
                    true,
                ),
            };
            let token = tracker::after_acquire(self.site, started.elapsed(), contended);
            MutexGuard { inner, token }
        }

        /// Acquires the lock only if it is free right now. Never
        /// blocks, so it records no order edges (a try-acquisition
        /// cannot close a deadlock), but the guard still counts as held
        /// for locks nested under it.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => return None,
            };
            let token = tracker::after_acquire(self.site, Duration::ZERO, false);
            Some(MutexGuard { inner, token })
        }

        /// Mutable access without locking (requires `&mut self`, so no
        /// other thread can hold the lock).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex")
                .field("site", &self.site.name)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// RAII guard for [`Mutex::lock`]. Dropping it releases the lock
    /// and pops this site from the thread's held stack.
    pub struct MutexGuard<'a, T: ?Sized> {
        // Declaration order is drop order: release the std lock first,
        // then retire the tracking token.
        pub(crate) inner: std::sync::MutexGuard<'a, T>,
        pub(crate) token: HeldToken,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    /// A reader-writer lock with lock-order checking. Reads and writes
    /// are one site: the graph does not distinguish shared from
    /// exclusive acquisition (a read→write upgrade cycle is still a
    /// cycle).
    pub struct RwLock<T: ?Sized> {
        site: &'static SiteCell,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Wraps `value` under the given site name.
        pub fn new(value: T, site: &'static str) -> Self {
            RwLock {
                site: tracker::site(site),
                inner: std::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access, blocking if a writer holds the
        /// lock.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            tracker::before_acquire(self.site);
            let started = Instant::now();
            let (inner, contended) = match self.inner.try_read() {
                Ok(g) => (g, false),
                Err(TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(TryLockError::WouldBlock) => (
                    self.inner.read().unwrap_or_else(PoisonError::into_inner),
                    true,
                ),
            };
            let token = tracker::after_acquire(self.site, started.elapsed(), contended);
            RwLockReadGuard { inner, token }
        }

        /// Acquires exclusive write access, blocking until all readers
        /// and writers release.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            tracker::before_acquire(self.site);
            let started = Instant::now();
            let (inner, contended) = match self.inner.try_write() {
                Ok(g) => (g, false),
                Err(TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(TryLockError::WouldBlock) => (
                    self.inner.write().unwrap_or_else(PoisonError::into_inner),
                    true,
                ),
            };
            let token = tracker::after_acquire(self.site, started.elapsed(), contended);
            RwLockWriteGuard { inner, token }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("RwLock")
                .field("site", &self.site.name)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// RAII guard for [`RwLock::read`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockReadGuard<'a, T>,
        #[allow(dead_code)] // held for its Drop
        token: HeldToken,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// RAII guard for [`RwLock::write`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockWriteGuard<'a, T>,
        #[allow(dead_code)] // held for its Drop
        token: HeldToken,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A condition variable for use with [`Mutex`]. Only predicate
    /// waits are exposed — see the crate docs.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// A fresh condition variable.
        pub fn new() -> Self {
            Condvar::default()
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Blocks while `condition` returns `true`, releasing the mutex
        /// for the duration of each wait. The held stack drops this
        /// site while blocked (the mutex really is released) and
        /// re-records the acquisition on wakeup.
        pub fn wait_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            condition: F,
        ) -> MutexGuard<'a, T>
        where
            F: FnMut(&mut T) -> bool,
        {
            let MutexGuard { inner, token } = guard;
            let site = token.pause();
            let inner = self
                .inner
                .wait_while(inner, condition)
                .unwrap_or_else(PoisonError::into_inner);
            let token = tracker::after_reacquire(site);
            MutexGuard { inner, token }
        }
    }
}

// ---------------------------------------------------------------------
// Release implementation: zero-cost transparent newtypes over std.
// ---------------------------------------------------------------------
#[cfg(all(not(debug_assertions), not(loom)))]
mod imp {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::PoisonError;

    /// A mutual-exclusion lock. In release builds this is a transparent
    /// newtype over [`std::sync::Mutex`]; the site name is ignored.
    #[repr(transparent)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value`; `site` is recorded only in debug builds.
        #[inline]
        pub fn new(value: T, site: &'static str) -> Self {
            let _ = site;
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        #[inline]
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, recovering from poisoning.
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Acquires the lock only if it is free right now.
        #[inline]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            use std::sync::TryLockError;
            match self.inner.try_lock() {
                Ok(inner) => Some(MutexGuard { inner }),
                Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: p.into_inner(),
                }),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking.
        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// RAII guard for [`Mutex::lock`].
    #[repr(transparent)]
    pub struct MutexGuard<'a, T: ?Sized> {
        pub(crate) inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    /// A reader-writer lock; transparent over [`std::sync::RwLock`] in
    /// release builds.
    #[repr(transparent)]
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Wraps `value`; `site` is recorded only in debug builds.
        #[inline]
        pub fn new(value: T, site: &'static str) -> Self {
            let _ = site;
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access.
        #[inline]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Acquires exclusive write access.
        #[inline]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard {
                inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// RAII guard for [`RwLock::read`].
    #[repr(transparent)]
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// RAII guard for [`RwLock::write`].
    #[repr(transparent)]
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A condition variable for use with [`Mutex`].
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// A fresh condition variable.
        #[inline]
        pub fn new() -> Self {
            Condvar::default()
        }

        /// Wakes one waiter.
        #[inline]
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        #[inline]
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Blocks while `condition` returns `true`.
        #[inline]
        pub fn wait_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            condition: F,
        ) -> MutexGuard<'a, T>
        where
            F: FnMut(&mut T) -> bool,
        {
            MutexGuard {
                inner: self
                    .inner
                    .wait_while(guard.inner, condition)
                    .unwrap_or_else(PoisonError::into_inner),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Loom implementation: delegate to loom's model-checked primitives.
// ---------------------------------------------------------------------
#[cfg(loom)]
mod imp {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// A mutual-exclusion lock; delegates to [`loom::sync::Mutex`]
    /// under `--cfg loom`.
    pub struct Mutex<T: ?Sized> {
        inner: loom::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value`; `site` is unused under loom.
        pub fn new(value: T, site: &'static str) -> Self {
            let _ = site;
            Mutex {
                inner: loom::sync::Mutex::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().expect("loom mutex poisoned")
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().expect("loom mutex poisoned"),
            }
        }

        /// Acquires the lock only if it is free right now.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            self.inner.try_lock().ok().map(|inner| MutexGuard { inner })
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// RAII guard for [`Mutex::lock`].
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: loom::sync::MutexGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    /// A reader-writer lock; delegates to [`loom::sync::RwLock`].
    pub struct RwLock<T: ?Sized> {
        inner: loom::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Wraps `value`; `site` is unused under loom.
        pub fn new(value: T, site: &'static str) -> Self {
            let _ = site;
            RwLock {
                inner: loom::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard {
                inner: self.inner.read().expect("loom rwlock poisoned"),
            }
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard {
                inner: self.inner.write().expect("loom rwlock poisoned"),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// RAII guard for [`RwLock::read`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: loom::sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// RAII guard for [`RwLock::write`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: loom::sync::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A condition variable for use with [`Mutex`].
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: loom::sync::Condvar,
    }

    impl Condvar {
        /// A fresh condition variable.
        pub fn new() -> Self {
            Condvar::default()
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Blocks while `condition` returns `true`. Loom's condvar has
        /// no `wait_while`, so the predicate loop is spelled out here —
        /// which also lets loom explore the spurious-wakeup schedules.
        pub fn wait_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            mut condition: F,
        ) -> MutexGuard<'a, T>
        where
            F: FnMut(&mut T) -> bool,
        {
            let mut inner = guard.inner;
            while condition(&mut inner) {
                inner = self.inner.wait(inner).expect("loom mutex poisoned");
            }
            MutexGuard { inner }
        }
    }
}

pub use imp::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

// ---------------------------------------------------------------------
// Loom model of the lock-order core itself: two threads recording
// opposite acquisition orders into one shared graph must detect the
// inversion exactly once, and disjoint stacks must never false-positive.
// Run via: RUSTFLAGS="--cfg loom" cargo test -p rebert-sync --lib loom
// ---------------------------------------------------------------------
#[cfg(all(test, loom))]
mod loom_model {
    use crate::graph::OrderGraph;
    use loom::sync::{Arc, Mutex};
    use loom::thread;

    #[test]
    fn loom_opposite_orders_detect_exactly_once() {
        loom::model(|| {
            let graph = Arc::new(Mutex::new(OrderGraph::new()));
            let a = {
                let graph = Arc::clone(&graph);
                thread::spawn(move || {
                    // Holding site 0, blocking on site 1.
                    graph.lock().unwrap().record(&[0], 1, "t-ab").is_some()
                })
            };
            let b = {
                let graph = Arc::clone(&graph);
                thread::spawn(move || {
                    // Holding site 1, blocking on site 0 — the inversion.
                    graph.lock().unwrap().record(&[1], 0, "t-ba").is_some()
                })
            };
            let detections = usize::from(a.join().unwrap()) + usize::from(b.join().unwrap());
            // Whichever thread records second sees the other's edge and
            // reports; the first is silent. Never zero, never both.
            assert_eq!(detections, 1, "inversion detected exactly once");
        });
    }

    #[test]
    fn loom_disjoint_stacks_never_false_positive() {
        loom::model(|| {
            let graph = Arc::new(Mutex::new(OrderGraph::new()));
            let a = {
                let graph = Arc::clone(&graph);
                thread::spawn(move || graph.lock().unwrap().record(&[0], 1, "t1").is_some())
            };
            let b = {
                let graph = Arc::clone(&graph);
                thread::spawn(move || graph.lock().unwrap().record(&[2], 3, "t2").is_some())
            };
            assert!(!a.join().unwrap(), "disjoint pair 0→1 is clean");
            assert!(!b.join().unwrap(), "disjoint pair 2→3 is clean");
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41, "sync.test.round_trip");
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contends_honestly() {
        let m = Mutex::new((), "sync.test.try_lock");
        let g = m.lock();
        assert!(m.try_lock().is_none(), "held elsewhere");
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(7, "sync.test.rw"));
        // Concurrent readers on *different* threads share fine. (Nested
        // same-thread reads of one site are deliberately reported by
        // the tracker: recursive read acquisition can deadlock against
        // a queued writer.)
        let l2 = Arc::clone(&l);
        let reader = std::thread::spawn(move || *l2.read());
        let here = *l.read();
        assert_eq!(reader.join().expect("reader"), here);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wait_while_rechecks_predicate() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false, "sync.test.cv"), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = (&pair.0, &pair.1);
                let guard = cv.wait_while(lock.lock(), |ready| !*ready);
                *guard
            })
        };
        // A notify with the predicate still false must NOT release the
        // waiter (spurious-wakeup discipline): wait_while re-checks.
        pair.1.notify_all();
        std::thread::sleep(std::time::Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(
            waiter.join().expect("waiter exits"),
            "woke with predicate true"
        );
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(5u32, "sync.test.poison"));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std mutex would now return Err(PoisonError) forever; the
        // wrapper recovers the guard and the daemon keeps serving.
        assert_eq!(*m.lock(), 5);
        *m.lock() = 6;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn release_wrappers_are_layout_transparent() {
        use std::mem::size_of;
        #[cfg(not(debug_assertions))]
        {
            // The zero-cost claim, pinned: release wrappers add nothing.
            assert_eq!(size_of::<Mutex<u64>>(), size_of::<std::sync::Mutex<u64>>());
            assert_eq!(
                size_of::<RwLock<u64>>(),
                size_of::<std::sync::RwLock<u64>>()
            );
            assert_eq!(size_of::<Condvar>(), size_of::<std::sync::Condvar>());
            assert_eq!(
                size_of::<MutexGuard<'_, u64>>(),
                size_of::<std::sync::MutexGuard<'_, u64>>()
            );
        }
        #[cfg(debug_assertions)]
        {
            // Debug carries exactly one site pointer per lock.
            assert_eq!(
                size_of::<Mutex<u64>>(),
                size_of::<std::sync::Mutex<u64>>() + size_of::<usize>()
            );
        }
    }

    #[cfg(debug_assertions)]
    mod checked {
        use super::*;

        #[test]
        fn stats_name_the_site() {
            let m = Mutex::new(0u8, "sync.test.stats_site");
            drop(m.lock());
            let stats = site_stats();
            let s = stats
                .iter()
                .find(|s| s.name == "sync.test.stats_site")
                .expect("site registered");
            assert!(s.acquisitions >= 1);
        }

        #[test]
        fn consistent_nesting_order_stays_silent() {
            use std::sync::Arc;
            let a = Arc::new(Mutex::new(0, "sync.test.nest_outer"));
            let b = Arc::new(Mutex::new(0, "sync.test.nest_inner"));
            for _ in 0..3 {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            }
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let ga = a2.lock();
                let _gb = b2.lock();
                drop(ga);
            })
            .join()
            .expect("same order on another thread is fine");
        }
    }
}
