//! The global runtime tracker behind the debug-build wrappers: the site
//! registry, the per-thread held-lock stacks, the shared
//! [`OrderGraph`], and the per-site contention/hold counters.
//!
//! Only compiled under `cfg(all(debug_assertions, not(loom)))`. Release
//! builds never see any of this (the wrappers are transparent
//! newtypes), and loom builds delegate straight to loom's primitives so
//! model exploration stays deterministic.
//!
//! Internal state deliberately uses **raw** `std::sync` primitives —
//! wrapping them in the checked types would recurse. `crates/sync` is
//! the one place `rebert lint-src` permits them.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::graph::{CycleReport, OrderGraph};
use crate::SiteStats;

/// One registered lock site: a dense id, the static name, and the
/// counters the `/metrics` exposition reads. Cells are leaked once per
/// distinct site name, so wrappers hold `&'static SiteCell` and the hot
/// path never touches the registry map.
pub(crate) struct SiteCell {
    pub(crate) id: u32,
    pub(crate) name: &'static str,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
    hold_ns: AtomicU64,
}

struct Sites {
    by_name: BTreeMap<&'static str, &'static SiteCell>,
    by_id: Vec<&'static SiteCell>,
}

fn sites() -> &'static Mutex<Sites> {
    static SITES: OnceLock<Mutex<Sites>> = OnceLock::new();
    SITES.get_or_init(|| {
        Mutex::new(Sites {
            by_name: BTreeMap::new(),
            by_id: Vec::new(),
        })
    })
}

fn graph() -> &'static Mutex<OrderGraph> {
    static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(OrderGraph::new()))
}

/// A report hook: receives the rendered cycle report before the panic.
type ReportHook = Option<fn(&str)>;

fn hook_slot() -> &'static Mutex<ReportHook> {
    static HOOK: OnceLock<Mutex<ReportHook>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Registers (or looks up) the site for `name`. Same name ⇒ same cell:
/// all sixteen cache shards constructed with `"rebert.cache.shard"`
/// share one graph node.
pub(crate) fn site(name: &'static str) -> &'static SiteCell {
    let mut s = sites().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(cell) = s.by_name.get(name) {
        return cell;
    }
    let id = u32::try_from(s.by_id.len()).expect("fewer than 2^32 lock sites");
    let cell: &'static SiteCell = Box::leak(Box::new(SiteCell {
        id,
        name,
        acquisitions: AtomicU64::new(0),
        contended: AtomicU64::new(0),
        wait_ns: AtomicU64::new(0),
        hold_ns: AtomicU64::new(0),
    }));
    s.by_name.insert(name, cell);
    s.by_id.push(cell);
    cell
}

/// Whether lock-order checking is live. Debug builds default to **on**;
/// `REBERT_SYNC_CHECK=0` (or `false`/`off`) opts out, anything else —
/// including the `=1` CI setting — keeps it on. Resolved once per
/// process.
pub(crate) fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| parse_check_env(std::env::var("REBERT_SYNC_CHECK").ok().as_deref()))
}

/// Pure half of [`enabled`], split out so both polarities are testable
/// in one process.
pub(crate) fn parse_check_env(value: Option<&str>) -> bool {
    !matches!(value, Some("0") | Some("false") | Some("off"))
}

thread_local! {
    /// Site ids this thread currently holds, outermost first.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Reentrancy latch: set while the report hook runs so a hook that
    /// itself takes checked locks (e.g. the obs ring) cannot recurse
    /// into detection mid-report.
    static SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// Called by a wrapper *before* it blocks: records one graph edge per
/// held site and panics with the two-path report if any edge closes a
/// cycle. `try_*` acquisitions skip this (they cannot block, so they
/// cannot close a deadlock) but still land on the held stack via
/// [`after_acquire`].
pub(crate) fn before_acquire(site: &'static SiteCell) {
    if !enabled() || SUPPRESSED.get() {
        return;
    }
    let held: Vec<u32> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    let current = std::thread::current();
    let thread_name = current.name().unwrap_or("?");
    let cycle = graph()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(&held, site.id, thread_name);
    if let Some(cycle) = cycle {
        report_and_panic(&cycle);
    }
}

/// Renders the cycle, feeds it to the report hook (if installed), and
/// panics. The graph lock is *not* held here, so a hook routing through
/// rebert-obs — whose ring sink takes a checked lock of its own — is
/// safe; `SUPPRESSED` additionally stops that lock from re-entering
/// detection.
fn report_and_panic(cycle: &CycleReport) -> ! {
    let report = render(cycle);
    let hook = *hook_slot().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(hook) = hook {
        SUPPRESSED.set(true);
        hook(&report);
        SUPPRESSED.set(false);
    }
    panic!("{report}");
}

/// The human rendering: the blocked acquisition path, then every
/// recorded edge on the conflicting chain with the context captured
/// when it was first seen.
fn render(cycle: &CycleReport) -> String {
    let name_of = |id: u32| -> &'static str {
        let s = sites().lock().unwrap_or_else(PoisonError::into_inner);
        s.by_id.get(id as usize).map_or("<unknown>", |c| c.name)
    };
    let list = |ids: &[u32]| -> String {
        ids.iter()
            .map(|&id| format!("`{}`", name_of(id)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = format!(
        "lock-order cycle detected\n  this acquisition: thread `{}` blocking on `{}` while holding [{}]\n",
        cycle.thread,
        name_of(cycle.attempted),
        list(&cycle.holding),
    );
    if cycle.path.is_empty() {
        out.push_str(
            "  cause: same-site nested acquisition — this thread already holds that site;\n  \
             give internally-ordered instances distinct site names\n",
        );
    } else {
        out.push_str("  conflicting order recorded earlier:\n");
        for (a, b, ctx) in &cycle.path {
            out.push_str(&format!(
                "    `{}` -> `{}` first recorded on thread `{}` holding [{}]\n",
                name_of(*a),
                name_of(*b),
                ctx.thread,
                list(&ctx.held),
            ));
        }
        let mut ring: Vec<&'static str> = vec![name_of(cycle.attempted)];
        ring.extend(cycle.path.iter().map(|&(_, b, _)| name_of(b)));
        ring.push(name_of(cycle.attempted));
        out.push_str(&format!("  cycle: {}\n", ring.join(" -> ")));
    }
    out
}

/// Bookkeeping for one live acquisition. Returned by [`after_acquire`];
/// its [`Drop`] pops the held stack and banks the hold time, so unlock
/// order (including mid-panic unwinds) always rebalances the stack.
pub(crate) struct HeldToken {
    site: &'static SiteCell,
    acquired_at: Instant,
    /// Whether this acquisition was pushed onto the held stack (false
    /// when checking is disabled or suppressed during a report).
    tracked: bool,
}

/// Called by a wrapper immediately after the inner lock is secured.
pub(crate) fn after_acquire(
    site: &'static SiteCell,
    waited: Duration,
    contended: bool,
) -> HeldToken {
    site.acquisitions.fetch_add(1, Ordering::Relaxed);
    if contended {
        site.contended.fetch_add(1, Ordering::Relaxed);
    }
    site.wait_ns.fetch_add(
        u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
    let tracked = enabled() && !SUPPRESSED.get();
    if tracked {
        HELD.with(|h| h.borrow_mut().push(site.id));
    }
    HeldToken {
        site,
        acquired_at: Instant::now(),
        tracked,
    }
}

impl HeldToken {
    /// Condvar support: releases the tracking claim *without* dropping
    /// the token allocation semantics — used when a guard is handed to
    /// `Condvar::wait_while`, which atomically unlocks the mutex.
    /// Returns the site so the wrapper can re-track after wakeup.
    pub(crate) fn pause(self) -> &'static SiteCell {
        let site = self.site;
        self.release();
        site
    }

    fn release(self) {
        // Copy fields then forget: letting Drop run would double-release.
        let (site, acquired_at, tracked) = (self.site, self.acquired_at, self.tracked);
        std::mem::forget(self);
        finish(site, acquired_at, tracked);
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        finish(self.site, self.acquired_at, self.tracked);
    }
}

fn finish(site: &'static SiteCell, acquired_at: Instant, tracked: bool) {
    site.hold_ns.fetch_add(
        u64::try_from(acquired_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
    if tracked {
        // Guards can drop out of LIFO order; remove the last matching
        // occurrence rather than assuming the top of stack.
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&id| id == site.id) {
                held.remove(pos);
            }
        });
    }
}

/// After a condvar wakeup the mutex is *already* re-held; record the
/// re-acquisition (edges + stack + counters) post hoc. A cycle found
/// here still panics — with the lock held, which is acceptable for a
/// diagnostic that is about to abort the thread anyway.
pub(crate) fn after_reacquire(site: &'static SiteCell) -> HeldToken {
    before_acquire(site);
    after_acquire(site, Duration::ZERO, false)
}

/// Installs the process-wide cycle-report hook.
pub(crate) fn set_hook(hook: fn(&str)) {
    *hook_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(hook);
}

/// Snapshot of every registered site's counters, in site-id order.
pub(crate) fn stats() -> Vec<SiteStats> {
    let s = sites().lock().unwrap_or_else(PoisonError::into_inner);
    s.by_id
        .iter()
        .map(|c| SiteStats {
            name: c.name,
            acquisitions: c.acquisitions.load(Ordering::Relaxed),
            contended: c.contended.load(Ordering::Relaxed),
            wait_ns: c.wait_ns.load(Ordering::Relaxed),
            hold_ns: c.hold_ns.load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_env_polarity() {
        assert!(parse_check_env(None), "debug default is on");
        assert!(parse_check_env(Some("1")));
        assert!(parse_check_env(Some("yes")));
        assert!(!parse_check_env(Some("0")));
        assert!(!parse_check_env(Some("false")));
        assert!(!parse_check_env(Some("off")));
    }

    #[test]
    fn site_ids_are_dense_and_names_unify() {
        let a = site("tracker.test.alpha");
        let b = site("tracker.test.beta");
        let a2 = site("tracker.test.alpha");
        assert!(std::ptr::eq(a, a2), "same name, same cell");
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn stats_reflect_acquisitions() {
        let s = site("tracker.test.stats");
        let token = after_acquire(s, Duration::from_nanos(500), true);
        drop(token);
        let snap = stats()
            .into_iter()
            .find(|st| st.name == "tracker.test.stats")
            .expect("registered");
        assert!(snap.acquisitions >= 1);
        assert!(snap.contended >= 1);
        assert!(snap.wait_ns >= 500);
    }
}
