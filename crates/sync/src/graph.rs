//! The lock-order graph: the pure analysis core behind the tracked
//! wrappers.
//!
//! Nodes are lock *sites* (dense `u32` ids assigned by the tracker, one
//! per distinct site name — all sixteen `ScoreCache` shards share one
//! node). A directed edge `a → b` means "some thread blocked on `b`
//! while holding `a`". The invariant the tracker enforces is that this
//! graph stays acyclic: a cycle `a → b → … → a` is exactly the
//! ABBA pattern that can deadlock once the interleavings line up, even
//! if no run has deadlocked yet.
//!
//! The graph is plain data — no interior mutability, no atomics — so the
//! runtime tracker wraps it in a raw `std::sync::Mutex` and the loom
//! model (see `lib.rs`) wraps the *same* code in `loom::sync::Mutex` to
//! check that concurrent recording detects an inversion exactly once.
//!
//! Everything is `BTreeMap`/`BTreeSet` based for deterministic iteration
//! (reports render identically across runs, and loom executions stay
//! deterministic).

use std::collections::{BTreeMap, BTreeSet};

/// The context captured when an edge was first recorded: which thread
/// blocked, and the full held-stack snapshot at that moment. This is
/// what lets a cycle report show *both* acquisition paths instead of
/// just naming the two locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeCtx {
    /// Name of the thread that recorded the edge (`"?"` when unnamed).
    pub thread: String,
    /// Site ids held (outermost first) when the edge was recorded.
    pub held: Vec<u32>,
}

/// A detected lock-order cycle: the acquisition that would have closed
/// the loop, plus the previously recorded chain it conflicts with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// The site the current thread attempted to acquire.
    pub attempted: u32,
    /// Sites the current thread already held (outermost first).
    pub holding: Vec<u32>,
    /// Thread that attempted the acquisition.
    pub thread: String,
    /// The pre-existing chain `attempted → … → h` (for some held `h`),
    /// one entry per edge with the context captured at first record.
    /// Empty exactly when the cycle is a same-site nested acquisition
    /// (`attempted` is already on the held stack).
    pub path: Vec<(u32, u32, EdgeCtx)>,
}

/// The lock-order graph. See the module docs for the invariant.
#[derive(Debug, Default)]
pub struct OrderGraph {
    edges: BTreeMap<u32, BTreeSet<u32>>,
    ctx: BTreeMap<(u32, u32), EdgeCtx>,
}

impl OrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        OrderGraph::default()
    }

    /// Number of distinct edges recorded so far.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Records that `thread`, holding `held` (outermost first), is about
    /// to block on `next`. Adds one edge per held site. Returns a
    /// [`CycleReport`] — *without* inserting the offending edge — if any
    /// new edge would close a cycle; the very first inversion is
    /// reported, so concurrent recorders serialized on one graph lock
    /// see exactly one detection.
    pub fn record(&mut self, held: &[u32], next: u32, thread: &str) -> Option<CycleReport> {
        // Same-site nested acquisition: `next` is already on our own
        // stack. With one node per site this is the tightest cycle of
        // all (a self-edge) and a genuine self-deadlock on a
        // non-reentrant mutex, so it is reported before touching the
        // graph. Sites that need an internal order (e.g. two shards of
        // one map) must use distinct site names.
        if held.contains(&next) {
            return Some(CycleReport {
                attempted: next,
                holding: held.to_vec(),
                thread: thread.to_owned(),
                path: Vec::new(),
            });
        }
        for &h in held {
            if self.edges.get(&h).is_some_and(|succ| succ.contains(&next)) {
                continue; // known edge, already proven acyclic
            }
            // Adding h → next closes a cycle iff next already reaches h.
            if let Some(path) = self.find_path(next, h) {
                let edges = path
                    .iter()
                    .map(|&(a, b)| {
                        let ctx = self.ctx.get(&(a, b)).cloned().unwrap_or(EdgeCtx {
                            thread: "?".to_owned(),
                            held: Vec::new(),
                        });
                        (a, b, ctx)
                    })
                    .collect();
                return Some(CycleReport {
                    attempted: next,
                    holding: held.to_vec(),
                    thread: thread.to_owned(),
                    path: edges,
                });
            }
            self.edges.entry(h).or_default().insert(next);
            self.ctx.entry((h, next)).or_insert_with(|| EdgeCtx {
                thread: thread.to_owned(),
                held: held.to_vec(),
            });
        }
        None
    }

    /// A directed path `from → … → to` as a list of edges, if one
    /// exists. Iterative DFS; deterministic because successor sets are
    /// ordered.
    fn find_path(&self, from: u32, to: u32) -> Option<Vec<(u32, u32)>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut visited = BTreeSet::new();
        let mut stack = vec![(from, 0usize)];
        let mut path: Vec<(u32, u32)> = Vec::new();
        visited.insert(from);
        while !stack.is_empty() {
            let (node, idx) = {
                let top = stack.last_mut().expect("loop guard: stack nonempty");
                let snapshot = (top.0, top.1);
                top.1 += 1;
                snapshot
            };
            let next = self
                .edges
                .get(&node)
                .and_then(|succ| succ.iter().nth(idx).copied());
            match next {
                Some(n) if n == to => {
                    path.push((node, n));
                    return Some(path);
                }
                Some(n) => {
                    if visited.insert(n) {
                        path.push((node, n));
                        stack.push((n, 0));
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn straight_orders_stay_silent() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0], 1, "t").is_none());
        assert!(g.record(&[1], 2, "t").is_none());
        assert!(g.record(&[0, 1], 2, "t").is_none());
        // Re-recording known edges is free and silent.
        assert!(g.record(&[0], 1, "t").is_none());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn abba_inversion_reports_both_paths() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0], 1, "worker-a").is_none());
        let cycle = g.record(&[1], 0, "worker-b").expect("inversion detected");
        assert_eq!(cycle.attempted, 0);
        assert_eq!(cycle.holding, vec![1]);
        assert_eq!(cycle.thread, "worker-b");
        assert_eq!(cycle.path.len(), 1);
        let (a, b, ref ctx) = cycle.path[0];
        assert_eq!((a, b), (0, 1));
        assert_eq!(ctx.thread, "worker-a");
        assert_eq!(ctx.held, vec![0]);
    }

    #[test]
    fn transitive_cycle_is_found_through_the_chain() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0], 1, "t1").is_none());
        assert!(g.record(&[1], 2, "t2").is_none());
        let cycle = g.record(&[2], 0, "t3").expect("0 → 1 → 2 → 0");
        assert_eq!(cycle.attempted, 0);
        let chain: Vec<(u32, u32)> = cycle.path.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(chain, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn same_site_nesting_is_a_self_cycle() {
        let mut g = OrderGraph::new();
        let cycle = g.record(&[3], 3, "t").expect("self cycle");
        assert!(cycle.path.is_empty());
        assert_eq!(cycle.attempted, 3);
    }

    #[test]
    fn disjoint_stacks_never_false_positive() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0], 1, "t1").is_none());
        assert!(g.record(&[2], 3, "t2").is_none());
        assert!(
            g.record(&[3], 2, "t2").is_some(),
            "but real inversions still fire"
        );
        assert!(g.record(&[0], 1, "t1").is_none());
    }

    #[test]
    fn offending_edge_is_not_inserted_so_detection_repeats() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0], 1, "t1").is_none());
        assert!(g.record(&[1], 0, "t2").is_some());
        assert!(g.record(&[1], 0, "t2").is_some(), "still detectable");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn multi_held_stack_records_an_edge_per_holder() {
        let mut g = OrderGraph::new();
        assert!(g.record(&[0, 1], 2, "t").is_none());
        assert_eq!(g.edge_count(), 2);
        // 2 → 1 now inverts against the 1 → 2 half.
        assert!(g.record(&[2], 1, "t").is_some());
    }
}
