//! Seeded lock-order inversion: the acceptance test for the tracker.
//!
//! One thread acquires shard A then shard B; another acquires B then A.
//! No run of this test can actually deadlock (the threads are
//! serialized by a join), but the order graph remembers the first
//! thread's `A → B` edge, so the second thread's `B → A` attempt must
//! panic with a report naming **both** acquisition paths. Runs under
//! `cargo test` (debug) and under CI's explicit `REBERT_SYNC_CHECK=1`
//! sweep; release builds carry no tracker, so the test is debug-only.

#![cfg(debug_assertions)]

use std::sync::Arc;

use rebert_sync::Mutex;

#[test]
fn seeded_inversion_panics_with_a_two_path_report() {
    let shard_a = Arc::new(Mutex::new(0u32, "lock_order.test.shard_a"));
    let shard_b = Arc::new(Mutex::new(0u32, "lock_order.test.shard_b"));

    // Thread 1: the "legitimate" order A → B, recorded into the graph.
    {
        let (a, b) = (Arc::clone(&shard_a), Arc::clone(&shard_b));
        std::thread::Builder::new()
            .name("inversion-t1".into())
            .spawn(move || {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            })
            .expect("spawn")
            .join()
            .expect("A → B is clean");
    }

    // Thread 2: the inversion B → A must panic before blocking.
    let (a, b) = (Arc::clone(&shard_a), Arc::clone(&shard_b));
    let err = std::thread::Builder::new()
        .name("inversion-t2".into())
        .spawn(move || {
            let gb = b.lock();
            let _ga = a.lock(); // tracker panics here
            drop(gb);
        })
        .expect("spawn")
        .join()
        .expect_err("B → A closes the cycle and panics");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_owned());
    assert!(
        rebert_sync::checking_enabled(),
        "this test requires checking on (REBERT_SYNC_CHECK not 0)"
    );
    assert!(msg.contains("lock-order cycle detected"), "{msg}");
    // Path 1: the blocked acquisition, with the thread and held stack.
    assert!(msg.contains("thread `inversion-t2`"), "{msg}");
    assert!(
        msg.contains("blocking on `lock_order.test.shard_a`"),
        "{msg}"
    );
    assert!(msg.contains("holding [`lock_order.test.shard_b`]"), "{msg}");
    // Path 2: the previously recorded conflicting edge with *its*
    // thread and held stack.
    assert!(msg.contains("thread `inversion-t1`"), "{msg}");
    assert!(
        msg.contains("`lock_order.test.shard_a` -> `lock_order.test.shard_b`"),
        "{msg}"
    );
    // And the rendered cycle ring.
    assert!(
        msg.contains(
            "lock_order.test.shard_a -> lock_order.test.shard_b -> lock_order.test.shard_a"
        ),
        "{msg}"
    );

    // The offending edge was not inserted: the legitimate order still
    // works afterwards, so one seeded inversion cannot cascade.
    let ga = shard_a.lock();
    let gb = shard_b.lock();
    drop(gb);
    drop(ga);
}

#[test]
fn same_site_nested_acquisition_is_reported_as_self_deadlock() {
    let shards = [
        Mutex::new(1u32, "lock_order.test.same_site"),
        Mutex::new(2u32, "lock_order.test.same_site"),
    ];
    let err = std::thread::Builder::new()
        .name("same-site".into())
        .spawn(move || {
            // Two *instances* of one site held at once: with one node
            // per site this is indistinguishable from self-deadlock.
            let g0 = shards[0].lock();
            let _g1 = shards[1].lock();
            drop(g0);
        })
        .expect("spawn")
        .join()
        .expect_err("same-site nesting panics");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("same-site nested acquisition"), "{msg}");
}
