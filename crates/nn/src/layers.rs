//! Basic trainable layers: linear, layer-norm, embedding.

use rand::Rng;
use rebert_tensor::{normal, xavier, Tensor, VarId};
use serde::{Deserialize, Serialize};

use crate::param::{Forward, ParamId, ParamStore};

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub(crate) w: ParamId,
    pub(crate) b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialized weights and zero
    /// bias, registering parameters under `name.w` / `name.b`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `rows × in_dim` input.
    pub fn forward(&self, fwd: &mut Forward<'_>, x: VarId) -> VarId {
        let w = fwd.param(self.w);
        let b = fwd.param(self.b);
        let h = fwd.tape.matmul(x, w);
        fwd.tape.add_bias(h, b)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Row-wise layer normalization with learnable scale and shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    pub(crate) gamma: ParamId,
    pub(crate) beta: ParamId,
    pub(crate) eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features (γ = 1, β = 0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, eps: f32) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::full(1, dim, 1.0));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(1, dim));
        LayerNorm { gamma, beta, eps }
    }

    /// Applies normalization to a `rows × dim` input.
    pub fn forward(&self, fwd: &mut Forward<'_>, x: VarId) -> VarId {
        let g = fwd.param(self.gamma);
        let b = fwd.param(self.beta);
        fwd.tape.layer_norm(x, g, b, self.eps)
    }
}

/// A learned embedding table mapping integer ids to `dim`-vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub(crate) table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates an embedding with `N(0, 0.02²)` initialization (the BERT
    /// convention).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = store.add(format!("{name}.table"), normal(rng, vocab, dim, 0.02));
        Embedding { table, vocab, dim }
    }

    /// Looks up a sequence of ids, producing a `len × dim` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= vocab`.
    pub fn forward(&self, fwd: &mut Forward<'_>, ids: &[usize]) -> VarId {
        let table = fwd.param(self.table);
        fwd.tape.gather(table, ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3);
        assert_eq!(lin.in_dim(), 4);
        assert_eq!(lin.out_dim(), 3);
        let mut fwd = Forward::new(&store);
        let x = fwd.input(Tensor::zeros(2, 4));
        let y = lin.forward(&mut fwd, x);
        assert_eq!(fwd.tape.value(y).shape(), (2, 3));
        // Zero input + zero bias => zero output.
        assert!(fwd.tape.value(y).norm() < 1e-9);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4, 1e-5);
        let mut fwd = Forward::new(&store);
        let x = fwd.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut fwd, x);
        let row = fwd.tape.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn embedding_lookup_rows_match_table() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let emb = Embedding::new(&mut store, &mut rng, "e", 10, 5);
        assert_eq!(emb.vocab(), 10);
        let mut fwd = Forward::new(&store);
        let y = emb.forward(&mut fwd, &[3, 3, 7]);
        let out = fwd.tape.value(y).clone();
        assert_eq!(out.shape(), (3, 5));
        assert_eq!(out.row(0), out.row(1));
        assert_ne!(out.row(0), out.row(2));
    }

    #[test]
    fn linear_is_trainable_end_to_end() {
        // One gradient step moves the loss down.
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 1);
        let x_data = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let targets = Tensor::from_vec(2, 1, vec![1.0, 0.0]);

        fn loss_of<'a>(
            store: &'a ParamStore,
            lin: &Linear,
            x_data: &Tensor,
            targets: &Tensor,
        ) -> (Forward<'a>, rebert_tensor::VarId) {
            let mut fwd = Forward::new(store);
            let x = fwd.input(x_data.clone());
            let z = lin.forward(&mut fwd, x);
            let loss = fwd.tape.bce_with_logits(z, targets.clone());
            (fwd, loss)
        }

        let (fwd, loss) = loss_of(&store, &lin, &x_data, &targets);
        let l0 = fwd.tape.value(loss).data()[0];
        let grads = fwd.tape.backward(loss);
        let pg = fwd.param_grads(&grads);
        for (pid, g) in pg {
            let p = store.get_mut(pid);
            *p = p.sub(&g.scale(0.5));
        }
        let (fwd, loss) = loss_of(&store, &lin, &x_data, &targets);
        let l1 = fwd.tape.value(loss).data()[0];
        assert!(l1 < l0, "loss should decrease: {l0} -> {l1}");
    }
}
