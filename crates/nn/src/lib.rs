//! # rebert-nn
//!
//! Neural-network layer library for the ReBERT reproduction, built on
//! [`rebert_tensor`]: linear / layer-norm / embedding layers, multi-head
//! self-attention, the BERT-style encoder + pooler + classification head
//! (paper §II-C, Fig. 4), the Adam optimizer, and JSON checkpointing.
//!
//! ## Example: one training step of a tiny classifier
//!
//! ```
//! use rebert_nn::{Adam, BertClassifier, BertConfig, Forward, ParamStore};
//! use rebert_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(0);
//! let model = BertClassifier::new(&mut store, &mut rng, "m", &BertConfig::tiny());
//! let mut adam = Adam::new(1e-3);
//!
//! let mut fwd = Forward::new(&store);
//! let x = fwd.input(Tensor::full(4, 16, 0.5)); // a 4-token embedded input
//! let z = model.logit(&mut fwd, x);
//! let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[1.0]]));
//! let grads = fwd.tape.backward(loss);
//! let param_grads = fwd.param_grads(&grads);
//! adam.step(&mut store, &param_grads);
//! ```

#![warn(missing_docs)]

mod adam;
mod attention;
mod bert;
mod engine;
mod infer;
mod layers;
mod param;
mod quant;
mod serialize;

pub use adam::Adam;
pub use attention::MultiHeadAttention;
pub use bert::{BertClassifier, BertConfig, BertEncoder, EncoderLayer, Pooler};
pub use engine::{Backend, Engine};
pub use infer::InferScratch;
pub use layers::{Embedding, LayerNorm, Linear};
pub use param::{Forward, GradAccumulator, ParamId, ParamStore};
pub use quant::{QuantStore, QuantTensor};
pub use serialize::{load_params, save_params, CheckpointError};
