//! Multi-head scaled dot-product self-attention (paper §II-C).

use rand::Rng;
use rebert_tensor::VarId;
use serde::{Deserialize, Serialize};

use crate::layers::Linear;
use crate::param::{Forward, ParamStore};

/// Multi-head self-attention over a `seq × d_model` input.
///
/// Projections Q/K/V/O are full `d_model × d_model` linears; heads are
/// realized by column-slicing the projected matrices (head `h` owns
/// columns `[h·d_h, (h+1)·d_h)`), exactly the standard Transformer
/// decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    pub(crate) wq: Linear,
    pub(crate) wk: Linear,
    pub(crate) wv: Linear,
    pub(crate) wo: Linear,
    pub(crate) n_heads: usize,
    pub(crate) d_model: usize,
}

impl MultiHeadAttention {
    /// Creates the four projections.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d_model: usize,
        n_heads: usize,
    ) -> Self {
        assert!(
            d_model.is_multiple_of(n_heads),
            "d_model {d_model} not divisible by n_heads {n_heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.q"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.k"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.v"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.o"), d_model, d_model),
            n_heads,
            d_model,
        }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Applies self-attention to a `seq × d_model` input, returning the
    /// same shape.
    pub fn forward(&self, fwd: &mut Forward<'_>, x: VarId) -> VarId {
        let q = self.wq.forward(fwd, x);
        let k = self.wk.forward(fwd, x);
        let v = self.wv.forward(fwd, x);
        let d_head = self.d_model / self.n_heads;
        let scale = 1.0 / (d_head as f32).sqrt();

        let mut heads = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let start = h * d_head;
            let qh = fwd.tape.col_slice(q, start, d_head);
            let kh = fwd.tape.col_slice(k, start, d_head);
            let vh = fwd.tape.col_slice(v, start, d_head);
            let scores = fwd.tape.matmul_nt(qh, kh);
            let scaled = fwd.tape.scale(scores, scale);
            let probs = fwd.tape.softmax_rows(scaled);
            let ctx = fwd.tape.matmul(probs, vh);
            heads.push(ctx);
        }
        let concat = fwd.tape.col_concat(&heads);
        self.wo.forward(fwd, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rebert_tensor::{normal, Tensor};

    fn setup(d_model: usize, heads: usize) -> (ParamStore, MultiHeadAttention) {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "attn", d_model, heads);
        (store, mha)
    }

    #[test]
    fn output_shape_matches_input() {
        let (store, mha) = setup(8, 2);
        let mut fwd = Forward::new(&store);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let x = fwd.input(normal(&mut rng, 5, 8, 1.0));
        let y = mha.forward(&mut fwd, x);
        assert_eq!(fwd.tape.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panics() {
        let _ = setup(10, 3);
    }

    #[test]
    fn attention_mixes_positions() {
        // With a distinctive row, other rows' outputs must depend on it:
        // change row 3 and observe row 0's output change.
        let (store, mha) = setup(8, 2);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let base = normal(&mut rng, 4, 8, 1.0);

        let out_row0 = |input: Tensor| {
            let mut fwd = Forward::new(&store);
            let x = fwd.input(input);
            let y = mha.forward(&mut fwd, x);
            fwd.tape.value(y).row(0).to_vec()
        };
        let a = out_row0(base.clone());
        let mut changed = base.clone();
        for v in changed.row_mut(3) {
            *v += 2.0;
        }
        let b = out_row0(changed);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "row 0 output should depend on row 3");
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let (store, mha) = setup(8, 4);
        let mut fwd = Forward::new(&store);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let x = fwd.input(normal(&mut rng, 3, 8, 1.0));
        let y = mha.forward(&mut fwd, x);
        let loss = fwd.tape.mean_all(y);
        let grads = fwd.tape.backward(loss);
        let pg = fwd.param_grads(&grads);
        // 4 linears × (w, b) = 8 parameters, all with nonzero gradient
        // except possibly biases that cancel; require most to be nonzero.
        assert_eq!(pg.len(), 8);
        let nonzero = pg.values().filter(|g| g.norm() > 1e-9).count();
        assert!(nonzero >= 6, "only {nonzero} params received gradient");
    }
}
