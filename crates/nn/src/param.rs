//! Parameter storage and the per-forward binding context.
//!
//! All trainable tensors live in one [`ParamStore`]; layers hold
//! [`ParamId`] handles. Each forward pass opens a [`Forward`] context that
//! lazily binds parameters onto a fresh autograd tape (one leaf per
//! parameter per pass) so gradients can be read back after
//! [`rebert_tensor::Tape::backward`].

use std::collections::HashMap;

use rebert_tensor::{Tape, Tensor, VarId};
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns every trainable tensor of a model.
///
/// # Examples
///
/// ```
/// use rebert_nn::ParamStore;
/// use rebert_tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::zeros(2, 2));
/// assert_eq!(store.get(w).shape(), (2, 2));
/// assert_eq!(store.name(w), "w");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        self.names.push(name.into());
        self.tensors.push(tensor);
        ParamId(self.tensors.len() - 1)
    }

    /// The parameter's current value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Iterates `(ParamId, name, tensor)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (ParamId(i), self.names[i].as_str(), t))
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.tensors.len()).map(ParamId)
    }
}

/// A forward-pass context: a fresh tape plus lazy parameter binding.
#[derive(Debug)]
pub struct Forward<'a> {
    /// The autograd tape for this pass; layers record ops on it directly.
    pub tape: Tape,
    store: &'a ParamStore,
    bound: HashMap<ParamId, VarId>,
}

impl<'a> Forward<'a> {
    /// Opens a forward pass over `store`.
    pub fn new(store: &'a ParamStore) -> Self {
        Forward {
            tape: Tape::new(),
            store,
            bound: HashMap::new(),
        }
    }

    /// Returns the tape leaf bound to parameter `id`, creating it on first
    /// use in this pass.
    pub fn param(&mut self, id: ParamId) -> VarId {
        if let Some(&v) = self.bound.get(&id) {
            return v;
        }
        let v = self.tape.leaf(self.store.get(id).clone());
        self.bound.insert(id, v);
        v
    }

    /// Records a non-trainable input.
    pub fn input(&mut self, t: Tensor) -> VarId {
        self.tape.leaf(t)
    }

    /// After `tape.backward`, extracts the gradient of each bound
    /// parameter (zeros if the parameter was off the loss path).
    pub fn param_grads(&self, grads: &[Option<Tensor>]) -> HashMap<ParamId, Tensor> {
        self.bound
            .iter()
            .map(|(&pid, &vid)| {
                let t = self.store.get(pid);
                let g = grads[vid.index()]
                    .clone()
                    .unwrap_or_else(|| Tensor::zeros(t.rows(), t.cols()));
                (pid, g)
            })
            .collect()
    }
}

/// Accumulates gradients across samples for mini-batch training.
#[derive(Debug, Clone, Default)]
pub struct GradAccumulator {
    sums: HashMap<ParamId, Tensor>,
    count: usize,
}

impl GradAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample's parameter gradients.
    pub fn add(&mut self, grads: HashMap<ParamId, Tensor>) {
        for (pid, g) in grads {
            match self.sums.get_mut(&pid) {
                Some(acc) => *acc = acc.add(&g),
                None => {
                    self.sums.insert(pid, g);
                }
            }
        }
        self.count += 1;
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Consumes the accumulator, returning mean gradients.
    pub fn mean(self) -> HashMap<ParamId, Tensor> {
        let n = self.count.max(1) as f32;
        self.sums
            .into_iter()
            .map(|(pid, g)| (pid, g.scale(1.0 / n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trip() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::full(2, 3, 1.0));
        let b = store.add("b", Tensor::zeros(1, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 10);
        assert_eq!(store.name(a), "a");
        store.get_mut(b).data_mut()[0] = 5.0;
        assert_eq!(store.get(b).data()[0], 5.0);
    }

    #[test]
    fn forward_binds_each_param_once() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 2.0));
        let mut fwd = Forward::new(&store);
        let v1 = fwd.param(w);
        let v2 = fwd.param(w);
        assert_eq!(v1, v2);
        assert_eq!(fwd.tape.len(), 1);
    }

    #[test]
    fn grads_extracted_for_bound_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 3.0));
        let unused = store.add("unused", Tensor::full(1, 1, 9.0));
        let mut fwd = Forward::new(&store);
        let wv = fwd.param(w);
        let _uv = fwd.param(unused);
        let x = fwd.input(Tensor::full(1, 1, 4.0));
        let y = fwd.tape.matmul(wv, x);
        let loss = fwd.tape.mean_all(y);
        let grads = fwd.tape.backward(loss);
        let pg = fwd.param_grads(&grads);
        assert!((pg[&w].data()[0] - 4.0).abs() < 1e-6);
        // Unused parameter gets a zero gradient, not a panic.
        assert_eq!(pg[&unused].data()[0], 0.0);
    }

    #[test]
    fn accumulator_means() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 1));
        let mut acc = GradAccumulator::new();
        for v in [1.0f32, 3.0] {
            let mut g = HashMap::new();
            g.insert(w, Tensor::full(1, 1, v));
            acc.add(g);
        }
        assert_eq!(acc.count(), 2);
        let mean = acc.mean();
        assert!((mean[&w].data()[0] - 2.0).abs() < 1e-6);
    }
}
