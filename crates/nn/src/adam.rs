//! The Adam optimizer.

use std::collections::HashMap;

use rebert_tensor::Tensor;

use crate::param::{ParamId, ParamStore};

/// Adam optimizer state and hyperparameters.
///
/// # Examples
///
/// ```
/// use rebert_nn::{Adam, ParamStore};
/// use rebert_tensor::Tensor;
/// use std::collections::HashMap;
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::full(1, 1, 1.0));
/// let mut adam = Adam::new(0.1);
/// let mut grads = HashMap::new();
/// grads.insert(w, Tensor::full(1, 1, 2.0));
/// adam.step(&mut store, &grads);
/// assert!(store.get(w).data()[0] < 1.0); // moved against the gradient
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); `0.0` disables it.
    pub weight_decay: f32,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates an optimizer with the standard β/ε defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Creates an AdamW optimizer with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update with the given per-parameter gradients.
    /// Parameters without a gradient entry are left untouched.
    pub fn step(&mut self, store: &mut ParamStore, grads: &HashMap<ParamId, Tensor>) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (&pid, g) in grads {
            let p = store.get_mut(pid);
            let m = self
                .m
                .entry(pid)
                .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            let v = self
                .v
                .entry(pid)
                .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            for i in 0..g.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                let mut update = self.lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    update += self.lr * self.weight_decay * p.data()[i];
                }
                p.data_mut()[i] -= update;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_a_quadratic() {
        // Minimize (w - 3)² by feeding Adam the analytic gradient.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 0.0));
        let mut adam = Adam::new(0.2);
        for _ in 0..200 {
            let wv = store.get(w).data()[0];
            let mut grads = HashMap::new();
            grads.insert(w, Tensor::full(1, 1, 2.0 * (wv - 3.0)));
            adam.step(&mut store, &grads);
        }
        let final_w = store.get(w).data()[0];
        assert!((final_w - 3.0).abs() < 0.05, "w = {final_w}");
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 5.0));
        let mut adam = Adam::with_weight_decay(0.1, 0.5);
        // Zero task gradient: only decay acts.
        for _ in 0..50 {
            let mut grads = HashMap::new();
            grads.insert(w, Tensor::zeros(1, 1));
            adam.step(&mut store, &grads);
        }
        assert!(store.get(w).data()[0].abs() < 5.0);
    }

    #[test]
    fn missing_grads_leave_params_alone() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 7.0));
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, &HashMap::new());
        assert_eq!(store.get(w).data()[0], 7.0);
    }
}
