//! Backend selection for the tape-free inference path.
//!
//! [`Backend`] names the three execution strategies — bitwise-reference
//! scalar f32, runtime-dispatched SIMD f32, and int8 weights with f32
//! accumulation — and [`Engine`] binds one of them to a parameter store
//! so the forward pass in [`crate::infer`] can route every op through a
//! single object instead of sprinkling `match backend` through the
//! model code.
//!
//! The scalar backend is the default and stays bit-identical to the
//! autograd tape (every op delegates to the same blocked scalar kernels
//! the tape uses). The SIMD and int8 backends trade bitwise identity
//! for speed; their outputs are close enough that downstream clustering
//! is unaffected (tolerance-checked here, ARI-gated in CI).
//!
//! A requested backend always *resolves* rather than failing: SIMD on a
//! host without SIMD kernels degrades to scalar, int8 without a built
//! [`QuantStore`] degrades to the best f32 path. [`Engine::backend`]
//! reports what actually ran, which is what serving metrics record.

use rebert_tensor::kernels::{self, SimdLevel};
use rebert_tensor::{simd_available, simd_level, Tensor};

use crate::layers::{LayerNorm, Linear};
use crate::param::ParamStore;
use crate::quant::QuantStore;

/// Inference execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Blocked scalar f32 kernels — the bitwise reference path and the
    /// default everywhere.
    #[default]
    F32Scalar,
    /// Runtime-dispatched SIMD f32 kernels (AVX2+FMA or NEON); falls
    /// back to scalar on hosts without them.
    F32Simd,
    /// Int8 weights (per-row scales) with f32 accumulation; activations
    /// and vector parameters stay f32. Uses SIMD kernels when available.
    Int8,
}

impl Backend {
    /// Every backend, in benchmark/report order.
    pub const ALL: [Backend; 3] = [Backend::F32Scalar, Backend::F32Simd, Backend::Int8];

    /// Canonical lowercase label, stable across releases: `"f32-scalar"`,
    /// `"f32-simd"`, `"int8"`. Used in CLI flags, HTTP headers, and
    /// metrics label values.
    pub fn label(self) -> &'static str {
        match self {
            Backend::F32Scalar => "f32-scalar",
            Backend::F32Simd => "f32-simd",
            Backend::Int8 => "int8",
        }
    }

    /// Parses a user-supplied backend name.
    ///
    /// Accepts the canonical labels plus the shorthands `"f32"` (scalar)
    /// and `"simd"`. Returns `None` for anything else — callers decide
    /// whether that is a 400 or a usage error.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "f32" | "f32-scalar" | "scalar" => Some(Backend::F32Scalar),
            "f32-simd" | "simd" => Some(Backend::F32Simd),
            "int8" => Some(Backend::Int8),
            _ => None,
        }
    }

    /// The backend that will actually execute on this host: `F32Simd`
    /// degrades to `F32Scalar` when no SIMD kernels exist. `Int8` is
    /// host-independent (the scalar int8 kernel always exists) and is
    /// only further resolved by [`Engine::new`] when no quantized
    /// weights are supplied.
    pub fn effective(self) -> Backend {
        match self {
            Backend::F32Simd if !simd_available() => Backend::F32Scalar,
            other => other,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A parameter store bound to an execution backend: the object the
/// tape-free forward pass routes every op through.
///
/// Construction is cheap (two references and two enums) — build one per
/// request, or one per call. The quantized view it borrows is the
/// expensive part; owners cache that (see `rebert`'s model wrapper).
#[derive(Debug, Clone, Copy)]
pub struct Engine<'a> {
    store: &'a ParamStore,
    quant: Option<&'a QuantStore>,
    backend: Backend,
    level: SimdLevel,
}

impl<'a> Engine<'a> {
    /// The bitwise-reference engine: scalar kernels, f32 weights. This is
    /// what [`crate::BertClassifier::infer_logit`] uses, keeping the
    /// historical "tape-free == taped, bit for bit" contract.
    pub fn scalar(store: &'a ParamStore) -> Self {
        Engine {
            store,
            quant: None,
            backend: Backend::F32Scalar,
            level: SimdLevel::Scalar,
        }
    }

    /// Binds `store` to `backend`, resolving it against host capability
    /// and weight availability: `F32Simd` without SIMD kernels becomes
    /// `F32Scalar`; `Int8` without a quantized view becomes the best f32
    /// path. The resolved choice is visible via [`Engine::backend`].
    pub fn new(store: &'a ParamStore, quant: Option<&'a QuantStore>, backend: Backend) -> Self {
        let mut backend = backend.effective();
        if backend == Backend::Int8 && quant.is_none() {
            backend = Backend::F32Simd.effective();
        }
        let level = match backend {
            Backend::F32Scalar => SimdLevel::Scalar,
            Backend::F32Simd | Backend::Int8 => simd_level(),
        };
        let quant = if backend == Backend::Int8 {
            quant
        } else {
            None
        };
        Engine {
            store,
            quant,
            backend,
            level,
        }
    }

    /// The backend that actually executes (post-resolution).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The SIMD level the kernels dispatch at.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// The underlying f32 parameter store.
    pub fn store(&self) -> &'a ParamStore {
        self.store
    }

    /// Whether this engine is pinned to the bitwise scalar path.
    pub fn is_scalar(&self) -> bool {
        self.backend == Backend::F32Scalar
    }

    /// `out = x @ W + b`. Int8 engines use the quantized weight when the
    /// parameter has a slot (matrices do; the bias add is always f32).
    pub(crate) fn linear_into(&self, lin: &Linear, x: &Tensor, out: &mut Tensor) {
        match self.quant.and_then(|qs| qs.get(lin.w)) {
            Some(qt) => {
                kernels::matmul_q8_into(self.level, x, qt.scales(), qt.data(), qt.cols(), out)
            }
            None => kernels::matmul_into(self.level, x, self.store.get(lin.w), out),
        }
        out.add_bias_assign(self.store.get(lin.b));
    }

    /// Row-wise layer norm in place. Gamma/beta always come from the f32
    /// store (vector parameters are never quantized).
    pub(crate) fn layer_norm_inplace(&self, ln: &LayerNorm, x: &mut Tensor) {
        let gamma = self.store.get(ln.gamma);
        let beta = self.store.get(ln.beta);
        let cols = x.cols();
        assert_eq!(gamma.shape(), (1, cols), "gamma shape");
        assert_eq!(beta.shape(), (1, cols), "beta shape");
        kernels::layer_norm_rows(self.level, x, gamma.data(), beta.data(), ln.eps);
    }

    /// Activation-by-activation matrix product (always f32 — only
    /// weights are ever quantized).
    pub(crate) fn matmul_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        kernels::matmul_into(self.level, a, b, out);
    }

    /// Attention scores `out = q @ k^T`.
    ///
    /// The scalar path transposes `k` into the caller's scratch and runs
    /// the plain matmul — the exact op sequence the bitwise tests pin.
    /// SIMD paths use the fused `matmul_nt` kernel, which reads both
    /// operands at unit stride and skips materializing `kt` entirely.
    pub(crate) fn attn_scores_into(
        &self,
        q: &Tensor,
        k: &Tensor,
        kt: &mut Tensor,
        out: &mut Tensor,
    ) {
        if self.level == SimdLevel::Scalar {
            k.transpose_into(kt);
            q.matmul_into(kt, out);
        } else {
            kernels::matmul_nt_into(self.level, q, k, out);
        }
    }

    /// GELU elementwise in place.
    pub(crate) fn gelu_inplace(&self, x: &mut Tensor) {
        kernels::gelu_inplace(self.level, x);
    }

    /// Row-wise softmax in place.
    pub(crate) fn softmax_rows_inplace(&self, x: &mut Tensor) {
        kernels::softmax_rows_inplace(self.level, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parse_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Some(b));
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(Backend::parse("f32"), Some(Backend::F32Scalar));
        assert_eq!(Backend::parse("simd"), Some(Backend::F32Simd));
        assert_eq!(Backend::parse("fp16"), None);
        assert_eq!(Backend::parse("F32"), None, "parse is case-sensitive");
    }

    #[test]
    fn default_backend_is_scalar() {
        assert_eq!(Backend::default(), Backend::F32Scalar);
    }

    #[test]
    fn engine_resolves_unavailable_choices() {
        let store = ParamStore::new();

        let scalar = Engine::scalar(&store);
        assert!(scalar.is_scalar());
        assert_eq!(scalar.level(), SimdLevel::Scalar);

        // SIMD request resolves to whatever the host has.
        let simd = Engine::new(&store, None, Backend::F32Simd);
        assert_eq!(simd.backend(), Backend::F32Simd.effective());

        // Int8 without quantized weights cannot run int8.
        let int8 = Engine::new(&store, None, Backend::Int8);
        assert_ne!(int8.backend(), Backend::Int8);
        assert_eq!(int8.backend(), Backend::F32Simd.effective());

        // Int8 with a (trivially empty) view keeps the int8 label.
        let view = QuantStore::build(&store);
        let int8 = Engine::new(&store, Some(&view), Backend::Int8);
        assert_eq!(int8.backend(), Backend::Int8);
    }
}
