//! Tape-free inference: the encoder/attention/pooler forward pass
//! executed directly over [`Tensor`]s.
//!
//! The training path ([`crate::Forward`]) records every operation on an
//! autograd tape: each parameter is cloned onto the tape as a leaf and
//! every intermediate activation is stored for the backward pass. At
//! inference time all of that is waste — gradients are thrown away, yet
//! the tape still allocates and copies per call.
//!
//! This module is the inference-only execution path: no tape nodes, no
//! parameter clones, and a reusable [`InferScratch`] holding every
//! intermediate buffer, so a warm scratch performs **zero allocations**
//! per forward pass. Arithmetic mirrors the taped operations exactly —
//! the same matmul kernels, the same [`rebert_tensor::row_mean_var`]
//! layer-norm statistics, the same activation functions in the same
//! order — so taped and tape-free logits agree bit-for-bit (verified by
//! this module's tests and the `rebert` crate's property tests).

use rebert_tensor::Tensor;

use crate::bert::{BertClassifier, BertEncoder, EncoderLayer, Pooler};
use crate::engine::Engine;
use crate::layers::{Embedding, Linear};
use crate::param::ParamStore;

/// Reusable intermediate buffers for the tape-free forward pass.
///
/// One scratch per thread: it is cheap to create but worth keeping warm —
/// after the first pass every buffer reuses its allocation. The input
/// activation is written through [`InferScratch::input_mut`] and consumed
/// by [`BertClassifier::infer_logit`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rebert_nn::{BertClassifier, BertConfig, InferScratch, ParamStore};
///
/// let mut store = ParamStore::new();
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(0);
/// let model = BertClassifier::new(&mut store, &mut rng, "m", &BertConfig::tiny());
///
/// let mut scratch = InferScratch::new();
/// scratch
///     .input_mut(4, 16)
///     .data_mut()
///     .iter_mut()
///     .for_each(|v| *v = 0.5);
/// let z = model.infer_logit(&store, &mut scratch);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Default)]
pub struct InferScratch {
    /// The main `seq × d_model` activation (input, then residual stream).
    x: Tensor,
    /// Q/K/V projections.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per-head column slices of Q/K/V.
    qh: Tensor,
    kh: Tensor,
    vh: Tensor,
    /// The transposed key head (`d_head × seq`), so the score matmul runs
    /// on the vectorized blocked kernel instead of serial dot products.
    kt: Tensor,
    /// Attention scores / probabilities (`seq × seq`).
    scores: Tensor,
    /// One head's context (`seq × d_head`).
    ctx: Tensor,
    /// Concatenated head contexts (`seq × d_model`).
    concat: Tensor,
    /// Attention block output.
    attn_out: Tensor,
    /// Feed-forward inner activation (`seq × d_ff`).
    ff_inner: Tensor,
    /// Feed-forward output (`seq × d_model`).
    ff_out: Tensor,
    /// Pooler buffers (`1 × d_model`).
    pooled_in: Tensor,
    pooled: Tensor,
    /// The classification logit (`1 × 1`).
    logit: Tensor,
}

impl InferScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused across passes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes the input activation to `rows × cols` and returns it for
    /// the caller to fill (e.g. with the combined embedding matrix).
    /// Previous contents are unspecified — overwrite every element.
    pub fn input_mut(&mut self, rows: usize, cols: usize) -> &mut Tensor {
        self.x.resize(rows, cols);
        &mut self.x
    }
}

impl Linear {
    /// Tape-free forward: `out = x @ W + b` with `out` reused across
    /// calls, on the bitwise scalar backend. Public so downstream crates
    /// can run auxiliary projections (e.g. tree-code embeddings) on the
    /// inference path.
    pub fn infer_into(&self, store: &ParamStore, x: &Tensor, out: &mut Tensor) {
        Engine::scalar(store).linear_into(self, x, out);
    }

    /// Backend-routed forward: like [`Linear::infer_into`] but executed
    /// by `engine` (SIMD kernels, quantized weights, …).
    pub fn infer_into_with(&self, engine: &Engine<'_>, x: &Tensor, out: &mut Tensor) {
        engine.linear_into(self, x, out);
    }
}

impl Embedding {
    /// Tape-free lookup: row `ids[i]` of the table becomes row `i` of
    /// `out` (resized as needed).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather_into(&self, store: &ParamStore, ids: &[usize], out: &mut Tensor) {
        let table = store.get(self.table);
        out.resize(ids.len(), table.cols());
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < table.rows(), "gather id {id} out of range");
            out.row_mut(i).copy_from_slice(table.row(id));
        }
    }

    /// Tape-free lookup-and-accumulate: adds row `ids[i]` of the table
    /// onto row `i` of `out` (which must already be `ids.len() × dim`).
    /// Equivalent to a gather followed by an elementwise add, without
    /// materializing the gathered matrix.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range or `out` has the wrong shape.
    pub fn gather_add(&self, store: &ParamStore, ids: &[usize], out: &mut Tensor) {
        let table = store.get(self.table);
        assert_eq!(
            out.shape(),
            (ids.len(), table.cols()),
            "gather_add shape mismatch"
        );
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < table.rows(), "gather id {id} out of range");
            let src = table.row(id);
            for (o, &s) in out.row_mut(i).iter_mut().zip(src) {
                *o += s;
            }
        }
    }
}

impl EncoderLayer {
    /// Backend-routed layer application: updates `s.x` in place.
    fn infer(&self, engine: &Engine<'_>, s: &mut InferScratch) {
        // Multi-head attention into s.attn_out.
        engine.linear_into(&self.attn.wq, &s.x, &mut s.q);
        engine.linear_into(&self.attn.wk, &s.x, &mut s.k);
        engine.linear_into(&self.attn.wv, &s.x, &mut s.v);
        let seq = s.x.rows();
        let d_head = self.attn.d_model / self.attn.n_heads;
        let scale = 1.0 / (d_head as f32).sqrt();
        s.concat.resize(seq, self.attn.d_model);
        for h in 0..self.attn.n_heads {
            let start = h * d_head;
            s.q.col_slice_into(start, d_head, &mut s.qh);
            s.k.col_slice_into(start, d_head, &mut s.kh);
            s.v.col_slice_into(start, d_head, &mut s.vh);
            // Q @ K^T. The scalar engine transposes into s.kt and runs
            // the blocked matmul (ascending-k accumulation, bit-identical
            // to the taped `matmul_nt`); SIMD engines fuse the transpose
            // into the `matmul_nt` kernel and never touch s.kt.
            engine.attn_scores_into(&s.qh, &s.kh, &mut s.kt, &mut s.scores);
            s.scores.scale_assign(scale);
            engine.softmax_rows_inplace(&mut s.scores);
            engine.matmul_into(&s.scores, &s.vh, &mut s.ctx);
            for i in 0..seq {
                s.concat.row_mut(i)[start..start + d_head].copy_from_slice(s.ctx.row(i));
            }
        }
        engine.linear_into(&self.attn.wo, &s.concat, &mut s.attn_out);

        // Residual + norm, feed-forward, residual + norm.
        s.x.add_assign(&s.attn_out);
        engine.layer_norm_inplace(&self.ln1, &mut s.x);
        engine.linear_into(&self.ff1, &s.x, &mut s.ff_inner);
        engine.gelu_inplace(&mut s.ff_inner);
        engine.linear_into(&self.ff2, &s.ff_inner, &mut s.ff_out);
        s.x.add_assign(&s.ff_out);
        engine.layer_norm_inplace(&self.ln2, &mut s.x);
    }
}

impl BertEncoder {
    /// Tape-free encoder stack over the activation in `scratch`
    /// (filled via [`InferScratch::input_mut`]); the result stays in the
    /// scratch for the pooler. Runs the bitwise scalar backend.
    pub fn infer(&self, store: &ParamStore, scratch: &mut InferScratch) {
        self.infer_with(&Engine::scalar(store), scratch);
    }

    /// Backend-routed encoder stack: like [`BertEncoder::infer`] but
    /// executed by `engine`.
    pub fn infer_with(&self, engine: &Engine<'_>, scratch: &mut InferScratch) {
        for layer in &self.layers {
            layer.infer(engine, scratch);
        }
    }
}

impl Pooler {
    /// Backend-routed pooling of the encoded activation in `scratch`:
    /// linear + tanh over the first token's hidden state. The tanh is a
    /// single `1 × d_model` row — it stays scalar on every backend.
    fn infer(&self, engine: &Engine<'_>, s: &mut InferScratch) {
        let d = s.x.cols();
        s.pooled_in.resize(1, d);
        s.pooled_in.row_mut(0).copy_from_slice(s.x.row(0));
        engine.linear_into(&self.dense, &s.pooled_in, &mut s.pooled);
        s.pooled.map_inplace(f32::tanh);
    }
}

impl BertClassifier {
    /// Tape-free classification logit for the embedded input previously
    /// written through [`InferScratch::input_mut`].
    ///
    /// Produces the same value as the taped [`BertClassifier::logit`]
    /// bit-for-bit, without recording a tape: no parameter clones, no
    /// stored intermediates, and zero allocations once `scratch` is warm.
    /// Equivalent to [`BertClassifier::infer_logit_with`] on
    /// [`Engine::scalar`].
    pub fn infer_logit(&self, store: &ParamStore, scratch: &mut InferScratch) -> f32 {
        self.infer_logit_with(&Engine::scalar(store), scratch)
    }

    /// Backend-routed classification logit: the same forward pass as
    /// [`BertClassifier::infer_logit`], executed by `engine` — SIMD
    /// kernels and/or int8 weights when the engine carries them. Only
    /// the scalar engine guarantees bitwise identity with the tape;
    /// other backends are tolerance-equivalent.
    pub fn infer_logit_with(&self, engine: &Engine<'_>, scratch: &mut InferScratch) -> f32 {
        self.encoder.infer_with(engine, scratch);
        self.pooler.infer(engine, scratch);
        let (pooled, logit) = (&scratch.pooled, &mut scratch.logit);
        engine.linear_into(&self.head, pooled, logit);
        logit.data()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;
    use crate::param::Forward;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rebert_tensor::normal;

    fn taped_logit(model: &BertClassifier, store: &ParamStore, x: &Tensor) -> f32 {
        let mut fwd = Forward::new(store);
        let xv = fwd.input(x.clone());
        let z = model.logit(&mut fwd, xv);
        fwd.tape.value(z).data()[0]
    }

    fn infer_logit(model: &BertClassifier, store: &ParamStore, x: &Tensor) -> f32 {
        let mut scratch = InferScratch::new();
        scratch
            .input_mut(x.rows(), x.cols())
            .data_mut()
            .copy_from_slice(x.data());
        model.infer_logit(store, &mut scratch)
    }

    #[test]
    fn infer_matches_taped_forward_exactly() {
        for (cfg, seed) in [
            (BertConfig::tiny(), 0u64),
            (BertConfig::tiny(), 1),
            (BertConfig::small(), 2),
        ] {
            let mut store = ParamStore::new();
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
            for seq in [1usize, 3, 9] {
                let x = normal(&mut rng, seq, cfg.d_model, 1.0);
                let taped = taped_logit(&model, &store, &x);
                let infer = infer_logit(&model, &store, &x);
                assert_eq!(
                    taped.to_bits(),
                    infer.to_bits(),
                    "seed {seed} seq {seq}: taped {taped} != infer {infer}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable_across_shapes() {
        // Reusing one scratch across different sequence lengths must not
        // leak state between passes.
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let cfg = BertConfig::tiny();
        let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
        let long = normal(&mut rng, 11, cfg.d_model, 1.0);
        let short = normal(&mut rng, 2, cfg.d_model, 1.0);

        let run = |x: &Tensor, scratch: &mut InferScratch| {
            scratch
                .input_mut(x.rows(), x.cols())
                .data_mut()
                .copy_from_slice(x.data());
            model.infer_logit(&store, scratch)
        };

        let mut reused = InferScratch::new();
        let _ = run(&long, &mut reused); // dirty the buffers with a longer pass
        let warm = run(&short, &mut reused);
        let fresh = run(&short, &mut InferScratch::new());
        assert_eq!(warm.to_bits(), fresh.to_bits());
    }

    #[test]
    fn simd_and_int8_backends_track_scalar_logits() {
        use crate::engine::Backend;
        use crate::quant::QuantStore;

        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let cfg = BertConfig::tiny();
        let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
        let view = QuantStore::build(&store);

        let mut scratch = InferScratch::new();
        for seq in [1usize, 4, 7] {
            let x = normal(&mut rng, seq, cfg.d_model, 1.0);
            let mut run = |backend: Backend| {
                scratch
                    .input_mut(x.rows(), x.cols())
                    .data_mut()
                    .copy_from_slice(x.data());
                let engine = Engine::new(&store, Some(&view), backend);
                model.infer_logit_with(&engine, &mut scratch)
            };
            let reference = run(Backend::F32Scalar);
            let simd = run(Backend::F32Simd);
            let int8 = run(Backend::Int8);
            assert!(reference.is_finite());
            // SIMD reorders accumulation; drift stays at rounding scale.
            assert!(
                (simd - reference).abs() <= 1e-4 + 1e-3 * reference.abs(),
                "seq {seq}: simd {simd} vs scalar {reference}"
            );
            // Int8 perturbs the weights themselves; layer norms keep the
            // drift bounded but it is a genuinely lossy format.
            assert!(
                (int8 - reference).abs() <= 0.1 + 0.1 * reference.abs(),
                "seq {seq}: int8 {int8} vs scalar {reference}"
            );
        }
    }

    #[test]
    fn scalar_engine_with_variant_is_bitwise_identical() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(19);
        let cfg = BertConfig::tiny();
        let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
        let x = normal(&mut rng, 5, cfg.d_model, 1.0);

        let direct = infer_logit(&model, &store, &x);
        let mut scratch = InferScratch::new();
        scratch
            .input_mut(x.rows(), x.cols())
            .data_mut()
            .copy_from_slice(x.data());
        let via_engine = model.infer_logit_with(&Engine::scalar(&store), &mut scratch);
        assert_eq!(direct.to_bits(), via_engine.to_bits());
    }

    #[test]
    fn gather_add_matches_gather_then_add() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let emb = Embedding::new(&mut store, &mut rng, "e", 6, 4);
        let ids = [1usize, 5, 1];
        let mut base = normal(&mut rng, 3, 4, 1.0);
        let expected = {
            let mut g = Tensor::zeros(1, 1);
            emb.gather_into(&store, &ids, &mut g);
            base.add(&g)
        };
        emb.gather_add(&store, &ids, &mut base);
        assert_eq!(base, expected);
    }
}
