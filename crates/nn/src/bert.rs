//! The BERT-style encoder stack, pooler, and classification head
//! (paper §II-C and Fig. 4).

use rand::Rng;
use rebert_tensor::VarId;
use serde::{Deserialize, Serialize};

use crate::attention::MultiHeadAttention;
use crate::layers::{LayerNorm, Linear};
use crate::param::{Forward, ParamStore};

/// Hyperparameters of the encoder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BertConfig {
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// Feed-forward inner dimension ("BERT intermediate").
    pub d_ff: usize,
}

impl BertConfig {
    /// A deliberately tiny configuration for unit tests.
    pub fn tiny() -> Self {
        BertConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
        }
    }

    /// The default experiment configuration: small enough to train
    /// from scratch on one CPU core, large enough to separate the methods.
    pub fn small() -> Self {
        BertConfig {
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
        }
    }

    /// A configuration with the paper's 12 attention heads (the paper
    /// fine-tunes BERT-base; see `DESIGN.md` for the scale substitution).
    pub fn paper() -> Self {
        BertConfig {
            d_model: 192,
            n_heads: 12,
            n_layers: 4,
            d_ff: 384,
        }
    }
}

/// One encoder layer: multi-head attention + Add&Norm, GELU feed-forward
/// + Add&Norm (post-norm, as in the original BERT).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    pub(crate) attn: MultiHeadAttention,
    pub(crate) ln1: LayerNorm,
    pub(crate) ff1: Linear,
    pub(crate) ff2: Linear,
    pub(crate) ln2: LayerNorm,
}

impl EncoderLayer {
    /// Creates one encoder layer's parameters under `name.*`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, name: &str, cfg: &BertConfig) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.attn"),
                cfg.d_model,
                cfg.n_heads,
            ),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), cfg.d_model, 1e-5),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), cfg.d_model, cfg.d_ff),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), cfg.d_ff, cfg.d_model),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), cfg.d_model, 1e-5),
        }
    }

    /// Applies the layer to a `seq × d_model` input.
    pub fn forward(&self, fwd: &mut Forward<'_>, x: VarId) -> VarId {
        // Attention + residual + norm.
        let a = self.attn.forward(fwd, x);
        let res1 = fwd.tape.add(x, a);
        let h = self.ln1.forward(fwd, res1);
        // Feed-forward + residual + norm.
        let f = self.ff1.forward(fwd, h);
        let f = fwd.tape.gelu(f);
        let f = self.ff2.forward(fwd, f);
        let res2 = fwd.tape.add(h, f);
        self.ln2.forward(fwd, res2)
    }
}

/// The full encoder stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertEncoder {
    pub(crate) layers: Vec<EncoderLayer>,
    config: BertConfig,
}

impl BertEncoder {
    /// Creates `cfg.n_layers` encoder layers under `name.layer<i>.*`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, name: &str, cfg: &BertConfig) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|i| EncoderLayer::new(store, rng, &format!("{name}.layer{i}"), cfg))
            .collect();
        BertEncoder {
            layers,
            config: cfg.clone(),
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Runs the stack over a `seq × d_model` embedded input.
    pub fn forward(&self, fwd: &mut Forward<'_>, mut x: VarId) -> VarId {
        for layer in &self.layers {
            x = layer.forward(fwd, x);
        }
        x
    }
}

/// BERT's pooler: a linear + Tanh applied to the **first token's** hidden
/// state, producing a fixed-size sequence representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pooler {
    pub(crate) dense: Linear,
}

impl Pooler {
    /// Creates the pooler parameters under `name.*`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, name: &str, d_model: usize) -> Self {
        Pooler {
            dense: Linear::new(store, rng, &format!("{name}.dense"), d_model, d_model),
        }
    }

    /// Pools a `seq × d_model` encoding into `1 × d_model`.
    pub fn forward(&self, fwd: &mut Forward<'_>, encoded: VarId) -> VarId {
        let first = fwd.tape.row_slice(encoded, 0);
        let h = self.dense.forward(fwd, first);
        fwd.tape.tanh(h)
    }
}

/// Encoder + pooler + binary classification head: produces one logit per
/// sequence — the "probability two bits belong to the same word" after a
/// sigmoid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertClassifier {
    pub(crate) encoder: BertEncoder,
    pub(crate) pooler: Pooler,
    pub(crate) head: Linear,
}

impl BertClassifier {
    /// Creates all parameters under `name.*`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, name: &str, cfg: &BertConfig) -> Self {
        BertClassifier {
            encoder: BertEncoder::new(store, rng, &format!("{name}.encoder"), cfg),
            pooler: Pooler::new(store, rng, &format!("{name}.pooler"), cfg.d_model),
            head: Linear::new(store, rng, &format!("{name}.cls"), cfg.d_model, 1),
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &BertConfig {
        self.encoder.config()
    }

    /// Produces the `1 × 1` classification logit for an embedded
    /// `seq × d_model` input.
    pub fn logit(&self, fwd: &mut Forward<'_>, embedded: VarId) -> VarId {
        let enc = self.encoder.forward(fwd, embedded);
        let pooled = self.pooler.forward(fwd, enc);
        self.head.forward(fwd, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rebert_tensor::{normal, sigmoid, Tensor};

    #[test]
    fn encoder_preserves_shape() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let cfg = BertConfig::tiny();
        let enc = BertEncoder::new(&mut store, &mut rng, "bert", &cfg);
        let mut fwd = Forward::new(&store);
        let x = fwd.input(normal(&mut rng, 7, cfg.d_model, 1.0));
        let y = enc.forward(&mut fwd, x);
        assert_eq!(fwd.tape.value(y).shape(), (7, cfg.d_model));
    }

    #[test]
    fn classifier_emits_single_logit() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let cfg = BertConfig::tiny();
        let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
        let mut fwd = Forward::new(&store);
        let x = fwd.input(normal(&mut rng, 5, cfg.d_model, 1.0));
        let z = model.logit(&mut fwd, x);
        assert_eq!(fwd.tape.value(z).shape(), (1, 1));
        let p = sigmoid(fwd.tape.value(z).data()[0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn classifier_learns_a_separable_toy_task() {
        // Two classes of sequences: all-positive rows vs all-negative
        // rows. A few Adam-free SGD steps must reduce the loss.
        let mut store = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let cfg = BertConfig::tiny();
        let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);

        let pos = Tensor::full(4, cfg.d_model, 0.8);
        let neg = Tensor::full(4, cfg.d_model, -0.8);
        let samples = [(pos, 1.0f32), (neg, 0.0f32)];

        let mut last = f32::INFINITY;
        for step in 0..12 {
            let mut total = 0.0;
            for (x, t) in &samples {
                let mut fwd = Forward::new(&store);
                let xv = fwd.input(x.clone());
                let z = model.logit(&mut fwd, xv);
                let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[*t]]));
                total += fwd.tape.value(loss).data()[0];
                let grads = fwd.tape.backward(loss);
                for (pid, g) in fwd.param_grads(&grads) {
                    let p = store.get_mut(pid);
                    *p = p.sub(&g.scale(0.1));
                }
            }
            if step == 11 {
                assert!(total < last, "loss should fall by the end");
            }
            if step == 0 {
                last = total;
            }
        }
    }

    #[test]
    fn configs_are_consistent() {
        for cfg in [BertConfig::tiny(), BertConfig::small(), BertConfig::paper()] {
            assert_eq!(cfg.d_model % cfg.n_heads, 0, "{cfg:?}");
            assert!(cfg.n_layers >= 1);
        }
        assert_eq!(BertConfig::paper().n_heads, 12, "paper uses 12 heads");
    }

    #[test]
    fn encoder_param_count_grows_with_layers() {
        let mut s1 = ParamStore::new();
        let mut s2 = ParamStore::new();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut cfg = BertConfig::tiny();
        let _ = BertEncoder::new(&mut s1, &mut rng, "a", &cfg);
        cfg.n_layers = 2;
        let _ = BertEncoder::new(&mut s2, &mut rng, "b", &cfg);
        assert_eq!(s2.scalar_count(), 2 * s1.scalar_count());
    }
}
