//! Post-training int8 weight quantization.
//!
//! [`QuantStore`] is a derived, lossy view of a [`ParamStore`]: every
//! matrix-shaped parameter (`rows >= 2`) is quantized to `i8` with **one
//! `f32` scale per row** (symmetric max-abs, `scale = absmax / 127`), a
//! quarter of the f32 footprint. Vector parameters — biases, layer-norm
//! `gamma`/`beta`, anything with a single row — stay in f32: they are
//! O(d) data on O(d²) compute, so quantizing them saves nothing and
//! costs accuracy.
//!
//! Per-row scales matter because BERT-style weight matrices have wildly
//! different row magnitudes after training; one per-tensor scale would
//! let a single outlier row flatten everyone else's resolution to a few
//! effective bits. With per-row scales the worst-case relative rounding
//! error per weight stays at `1/254` of that row's own range.
//!
//! The matmul kernels ([`rebert_tensor::kernels::matmul_q8_into`])
//! accumulate in f32 — quantization changes the *weights*, never the
//! arithmetic — so int8 logits track f32 logits closely enough that
//! word-recovery ARI is preserved (gated by the `int8-parity` CI step).

use rebert_tensor::Tensor;

use crate::param::{ParamId, ParamStore};

/// One matrix parameter quantized to `i8` with per-row `f32` scales.
#[derive(Debug, Clone)]
pub struct QuantTensor {
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
    data: Vec<i8>,
}

impl QuantTensor {
    /// Quantizes `t` row-by-row: `scale = absmax / 127`, values rounded
    /// to nearest. An all-zero row gets scale `0` and zero codes.
    pub fn quantize(t: &Tensor) -> Self {
        let (rows, cols) = t.shape();
        let mut scales = Vec::with_capacity(rows);
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row = t.row(r);
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 0.0 } else { absmax / 127.0 };
            scales.push(scale);
            if scale == 0.0 {
                data.extend(std::iter::repeat_n(0i8, cols));
            } else {
                data.extend(row.iter().map(|&v| (v / scale).round() as i8));
            }
        }
        QuantTensor {
            rows,
            cols,
            scales,
            data,
        }
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows (one scale each).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row scales, length `rows`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Row-major `i8` codes, length `rows * cols`.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Reconstructs the lossy f32 matrix (`scale[r] * code`), mainly for
    /// parity tests.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            let codes = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &qv) in out.row_mut(r).iter_mut().zip(codes) {
                *o = s * qv as f32;
            }
        }
        out
    }
}

/// Int8 view of a full [`ParamStore`], indexed by [`ParamId`].
///
/// Matrix parameters get a [`QuantTensor`] slot; vector parameters get
/// `None` and are served from the f32 store. Derived data only — it is
/// never serialized; checkpoints stay f32 and the view is rebuilt after
/// any weight update.
#[derive(Debug, Clone, Default)]
pub struct QuantStore {
    slots: Vec<Option<QuantTensor>>,
}

impl QuantStore {
    /// Builds the int8 view of `store`: every parameter with at least two
    /// rows is quantized.
    pub fn build(store: &ParamStore) -> Self {
        let slots = store
            .iter()
            .map(|(_, _, t)| {
                if t.rows() >= 2 {
                    Some(QuantTensor::quantize(t))
                } else {
                    None
                }
            })
            .collect();
        QuantStore { slots }
    }

    /// The quantized form of parameter `id`, if it was matrix-shaped.
    pub fn get(&self, id: ParamId) -> Option<&QuantTensor> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Number of parameters that have a quantized slot.
    pub fn quantized_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total bytes of int8 codes plus scales (the memory the view adds).
    pub fn quantized_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|q| q.data.len() + q.scales.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
        let n = (rows * cols) as f32;
        let data = (0..rows * cols)
            .map(|i| lo + (hi - lo) * i as f32 / (n - 1.0))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn quantize_bounds_per_row_error_by_half_step() {
        let t = ramp(5, 16, -3.0, 2.0);
        let q = QuantTensor::quantize(&t);
        let back = q.dequantize();
        for r in 0..5 {
            let absmax = t.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let half_step = absmax / 127.0 / 2.0 + 1e-7;
            for (a, b) in t.row(r).iter().zip(back.row(r)) {
                assert!(
                    (a - b).abs() <= half_step,
                    "row {r}: {a} vs {b} (half step {half_step})"
                );
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero_scale_and_codes() {
        let mut t = Tensor::zeros(3, 4);
        t.row_mut(1).copy_from_slice(&[1.0, -2.0, 0.5, 2.0]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.scales()[0], 0.0);
        assert_eq!(q.scales()[2], 0.0);
        assert!(q.data()[..4].iter().all(|&v| v == 0));
        assert_eq!(q.dequantize().row(0), &[0.0; 4]);
        // The non-zero row keeps its extremes exactly (±absmax hits ±127).
        assert_eq!(q.dequantize().row(1)[3], 2.0);
    }

    #[test]
    fn store_view_quantizes_matrices_only() {
        let mut store = ParamStore::new();
        let w = store.add("w", ramp(4, 4, -1.0, 1.0));
        let b = store.add("b", ramp(1, 4, -1.0, 1.0));
        let view = QuantStore::build(&store);
        assert!(view.get(w).is_some());
        assert!(view.get(b).is_none());
        assert_eq!(view.quantized_count(), 1);
        assert_eq!(view.quantized_bytes(), 16 + 4 * 4);
    }
}
