//! Checkpointing: saving and loading a [`ParamStore`] as JSON.
//!
//! JSON keeps checkpoints human-inspectable and dependency-light; the
//! models this workspace trains are small (≤ a few million scalars), so
//! the size overhead is acceptable.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::param::ParamStore;

/// Error raised when saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// Writes the parameter store to `path` as JSON.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on I/O or serialization failure.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), store)?;
    Ok(())
}

/// Reads a parameter store from `path`.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on I/O or deserialization failure.
pub fn load_params(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_tensor::Tensor;

    #[test]
    fn save_load_round_trip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.5, -2.5]]));
        let dir = std::env::temp_dir().join("rebert_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.json");
        save_params(&store, &path).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(w), store.get(w));
        assert_eq!(back.name(w), "w");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_params("/nonexistent/rebert/params.json").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(!err.to_string().is_empty());
    }
}
