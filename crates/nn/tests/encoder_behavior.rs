//! Behavioural tests of the encoder stack: determinism, checkpoint
//! fidelity, head/layer structure, and training dynamics.

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_nn::{
    load_params, save_params, Adam, BertClassifier, BertConfig, BertEncoder, Forward, ParamStore,
};
use rebert_tensor::{normal, Tensor};

fn encode(store: &ParamStore, enc: &BertEncoder, x: &Tensor) -> Tensor {
    let mut fwd = Forward::new(store);
    let xv = fwd.input(x.clone());
    let y = enc.forward(&mut fwd, xv);
    fwd.tape.value(y).clone()
}

#[test]
fn encoder_is_deterministic() {
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(0);
    let enc = BertEncoder::new(&mut store, &mut rng, "e", &BertConfig::tiny());
    let x = normal(&mut rng, 5, 16, 1.0);
    assert_eq!(encode(&store, &enc, &x), encode(&store, &enc, &x));
}

#[test]
fn different_inputs_give_different_encodings() {
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(1);
    let enc = BertEncoder::new(&mut store, &mut rng, "e", &BertConfig::tiny());
    let a = normal(&mut rng, 4, 16, 1.0);
    let b = normal(&mut rng, 4, 16, 1.0);
    let ya = encode(&store, &enc, &a);
    let yb = encode(&store, &enc, &b);
    assert!(ya.max_abs_diff(&yb) > 1e-4);
}

#[test]
fn checkpoint_preserves_classifier_outputs() {
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(2);
    let cfg = BertConfig::tiny();
    let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
    let x = normal(&mut rng, 6, cfg.d_model, 1.0);

    let logit = |store: &ParamStore| {
        let mut fwd = Forward::new(store);
        let xv = fwd.input(x.clone());
        let z = model.logit(&mut fwd, xv);
        fwd.tape.value(z).data()[0]
    };
    let before = logit(&store);

    let path = std::env::temp_dir().join("rebert_nn_encoder_behavior.json");
    save_params(&store, &path).expect("save");
    let restored = load_params(&path).expect("load");
    assert_eq!(logit(&restored), before);
    std::fs::remove_file(path).ok();
}

#[test]
fn single_token_sequences_work() {
    // The pooler reads row 0; a 1-token sequence is the minimal case.
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(3);
    let cfg = BertConfig::tiny();
    let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
    let mut fwd = Forward::new(&store);
    let x = fwd.input(normal(&mut rng, 1, cfg.d_model, 1.0));
    let z = model.logit(&mut fwd, x);
    assert!(fwd.tape.value(z).data()[0].is_finite());
}

#[test]
fn adam_training_beats_sgd_like_plateau() {
    // The classifier separates two constant inputs within a few steps.
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(4);
    let cfg = BertConfig::tiny();
    let model = BertClassifier::new(&mut store, &mut rng, "m", &cfg);
    let mut adam = Adam::new(5e-3);
    let pos = Tensor::full(3, cfg.d_model, 0.7);
    let neg = Tensor::full(3, cfg.d_model, -0.7);

    let mut first = None;
    let mut last = 0.0;
    for _ in 0..15 {
        let mut total = 0.0f32;
        for (x, t) in [(&pos, 1.0f32), (&neg, 0.0)] {
            let mut fwd = Forward::new(&store);
            let xv = fwd.input(x.clone());
            let z = model.logit(&mut fwd, xv);
            let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[t]]));
            total += fwd.tape.value(loss).data()[0];
            let grads = fwd.tape.backward(loss);
            let pg = fwd.param_grads(&grads);
            adam.step(&mut store, &pg);
        }
        first.get_or_insert(total);
        last = total;
    }
    assert!(
        last < first.unwrap() * 0.8,
        "loss {} -> {last}",
        first.unwrap()
    );
}

#[test]
fn param_names_are_unique_and_hierarchical() {
    let mut store = ParamStore::new();
    let mut rng = ChaCha20Rng::seed_from_u64(5);
    let cfg = BertConfig::small();
    let _ = BertClassifier::new(&mut store, &mut rng, "bert", &cfg);
    let mut seen = std::collections::HashSet::new();
    for (_, name, _) in store.iter() {
        assert!(seen.insert(name.to_owned()), "duplicate param name {name}");
        assert!(name.starts_with("bert."), "non-hierarchical name {name}");
    }
    // 2 layers × (4 attn linears + 2 ffn linears) × 2 + 2 layer-norms × 2
    // + pooler (2) + head (2) = structure sanity.
    assert!(store.len() > 20);
}
