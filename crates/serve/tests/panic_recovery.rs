//! Lock-poisoning / executor-panic recovery: a request that panics
//! mid-recovery must cost *that* client a 500, not wedge the daemon.
//! Before the executor grew its `catch_unwind`, the injected panic
//! below killed the executor thread and every later request hung
//! forever on its reply channel; this test pins the recovered behavior
//! over a real socket.
//!
//! Lives in its own integration binary — and as one sequential test —
//! because it toggles the process-wide `REBERT_TEST_PANIC` gate.

use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use rebert::{ReBertConfig, ReBertModel, RecoverySession};
use rebert_circuits::{generate, Profile};
use rebert_netlist::write_bench;
use rebert_serve::{http_request, serve, submit_recover, ServeConfig, Server};

fn boot() -> Server {
    let session = RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 11), 1);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    serve(session, listener, ServeConfig::default()).expect("serve")
}

fn submit_with_panic_header(
    addr: std::net::SocketAddr,
    bench: &str,
) -> std::io::Result<rebert_serve::HttpReply> {
    http_request(
        addr,
        "POST",
        "/recover",
        &[("X-Rebert-Format", "bench"), ("X-Rebert-Test-Panic", "1")],
        bench.as_bytes(),
    )
}

#[test]
fn executor_panic_answers_500_and_daemon_keeps_serving() {
    let c = generate(&Profile::new("panic", 120, 12, 3), 5);
    let bench = write_bench(&c.netlist);

    // Gate down: the header alone must be inert, so no production
    // client can trip the fault injection by accident.
    std::env::remove_var("REBERT_TEST_PANIC");
    let server = boot();
    let reply = submit_with_panic_header(server.addr(), &bench).expect("transport");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    server.shutdown();

    // Gate up: the injected panic must come back as a 500 — bounded in
    // time, because the historical failure mode is an infinite hang on
    // the reply channel. Run the request on a helper thread with a
    // generous-but-finite budget.
    std::env::set_var("REBERT_TEST_PANIC", "1");
    let server = boot();
    let addr = server.addr();
    let (done_tx, done_rx) = mpsc::channel();
    let poisoned_bench = bench.clone();
    std::thread::spawn(move || {
        let _ = done_tx.send(submit_with_panic_header(addr, &poisoned_bench));
    });
    let reply = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("panicking request must be answered, not hang")
        .expect("transport");
    assert_eq!(reply.status, 500, "{}", reply.body_text());
    assert!(
        reply.body_text().contains("executor unavailable"),
        "{}",
        reply.body_text()
    );
    assert_eq!(
        server.metrics().request_count("recover", "error"),
        1,
        "the panicked request is counted as an error"
    );

    // The daemon is not wedged: a normal request right after the panic
    // completes with 200 on the same (still alive) executor thread.
    let reply = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());

    // And a graceful shutdown still drains cleanly.
    server.shutdown();
    std::env::remove_var("REBERT_TEST_PANIC");
}
