//! Loopback tests for the live observability plane: `POST
//! /recover/stream` NDJSON framing (a meta record, ordered progress
//! records, a final result bitwise-equal to the plain `/recover`
//! payload), mid-stream disconnect cancelling the job without cooling
//! the session, the `/debug/stats` snapshot, and the
//! `?request_id=` trace filter.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rebert::json::Json;
use rebert::{ReBertConfig, ReBertModel, RecoverySession};
use rebert_circuits::{generate, GeneratedCircuit, Profile};
use rebert_netlist::write_bench;
use rebert_serve::{
    http_request, serve, submit_recover, submit_recover_opts, submit_stream, ServeConfig, Server,
    SubmitOptions,
};

/// Drops the stats fields that measure wall-clock time (and therefore
/// legitimately differ between two runs of the same recovery). Every
/// remaining byte must match between a streamed and a plain reply.
fn strip_timings(json: &mut Json) {
    const VOLATILE: [&str; 6] = [
        "tokenize_us",
        "filter_us",
        "score_us",
        "group_us",
        "elapsed_us",
        "pairs_per_sec",
    ];
    if let Json::Obj(fields) = json {
        for (key, value) in fields.iter_mut() {
            if key == "stats" {
                if let Json::Obj(stats) = value {
                    stats.retain(|(k, _)| !VOLATILE.contains(&k.as_str()));
                }
            }
        }
    }
}

fn boot(model: ReBertModel, threads: usize, queue: usize, deadline: Option<Duration>) -> Server {
    let session = RecoverySession::new(model, threads);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let config = ServeConfig {
        queue_capacity: queue,
        default_deadline: deadline,
        ..ServeConfig::default()
    };
    serve(session, listener, config).expect("serve")
}

fn tiny_model(seed: u64) -> ReBertModel {
    ReBertModel::new(ReBertConfig::tiny(), seed)
}

/// A model + circuit pair heavy enough that one recovery runs long
/// enough (hundreds of model calls, no Jaccard filtering) to observe a
/// mid-stream disconnect from the outside.
fn heavy_setup() -> (ReBertModel, GeneratedCircuit) {
    let mut cfg = ReBertConfig::small();
    cfg.jaccard_threshold = 0.0;
    let model = ReBertModel::new(cfg, 3);
    let circuit = generate(&Profile::new("load", 600, 48, 6), 21);
    (model, circuit)
}

fn json_field<'a>(json: &'a Json, key: &str) -> &'a Json {
    json.get(key)
        .unwrap_or_else(|| panic!("missing field `{key}`"))
}

#[test]
fn stream_final_record_is_bitwise_equal_to_plain_recover() {
    let c = generate(&Profile::new("demo", 160, 16, 4), 9);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(13), 2, 8, None);
    let addr = server.addr();

    // Both requests opt out of the score cache so the deterministic
    // stats (hit/miss counts) agree regardless of submission order.
    let plain =
        submit_recover_opts(addr, &bench, Some("bench"), None, None, false).expect("plain submit");
    assert_eq!(plain.status, 200, "{}", plain.body_text());

    let opts = SubmitOptions {
        format: Some("bench".to_owned()),
        request_id: Some("stream-test-1".to_owned()),
        use_cache: false,
        ..SubmitOptions::default()
    };
    let mut records: Vec<Json> = Vec::new();
    let streamed = submit_stream(addr, &bench, &opts, |line| {
        records.push(Json::parse(line).expect("stream record json"));
    })
    .expect("streamed submit");
    assert_eq!(streamed.status, 200);
    assert_eq!(
        streamed.header("X-Rebert-Request-Id"),
        Some("stream-test-1"),
        "client id echoed on the streaming head"
    );

    // The final record (the reply body) is the plain payload, byte for
    // byte, once the wall-clock timing fields (which differ between any
    // two runs) are set aside — streaming must not perturb the result.
    let mut stream_json = Json::parse(&streamed.body_text()).expect("stream final json");
    let mut plain_json = Json::parse(&plain.body_text()).expect("plain json");
    strip_timings(&mut stream_json);
    strip_timings(&mut plain_json);
    assert_eq!(
        stream_json.to_string(),
        plain_json.to_string(),
        "streamed final record differs from POST /recover"
    );

    // First interim record is the meta line carrying the request id.
    let meta = records.first().expect("at least the meta record");
    assert_eq!(json_field(meta, "type").as_str(), Some("meta"));
    assert_eq!(
        json_field(meta, "request_id").as_str(),
        Some("stream-test-1")
    );
    assert_eq!(json_field(meta, "bits").as_usize(), Some(16));

    // Live progress: several per-phase records, timestamps never going
    // backwards. (Exact counts depend on scorer batching, so the bar is
    // a floor, not an equality.)
    let progress: Vec<&Json> = records
        .iter()
        .filter(|r| r.get("type").and_then(Json::as_str) == Some("progress"))
        .collect();
    assert!(
        progress.len() >= 3,
        "want >=3 progress records, got {}: {records:?}",
        progress.len()
    );
    let ts: Vec<u64> = progress
        .iter()
        .filter_map(|r| r.get("ts_us").and_then(Json::as_u64))
        .collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "progress timestamps must be non-decreasing: {ts:?}"
    );
    let phases: Vec<&str> = progress
        .iter()
        .filter_map(|r| r.get("phase").and_then(Json::as_str))
        .collect();
    for phase in ["tokenize", "filter", "score", "group"] {
        assert!(
            phases.contains(&phase),
            "no progress for `{phase}`: {phases:?}"
        );
    }

    server.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_the_job_and_keeps_the_session_warm() {
    let (model, circuit) = heavy_setup();
    let bench = write_bench(&circuit.netlist);
    let server = boot(model, 1, 4, None);
    let addr = server.addr();

    // Hand-rolled streaming request so we can hang up mid-recovery.
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).unwrap();
        let head = format!(
            "POST /recover/stream HTTP/1.1\r\nHost: rebert\r\nX-Rebert-Format: bench\r\nContent-Length: {}\r\n\r\n",
            bench.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.write_all(bench.as_bytes()).unwrap();
        conn.flush().unwrap();
        // Wait until the stream is live (the status line arrives once
        // the job is queued), then disconnect without reading the rest.
        let mut probe = [0u8; 32];
        let n = conn.read(&mut probe).expect("read stream head");
        assert!(n > 0, "stream head should arrive before we hang up");
        assert!(probe.starts_with(b"HTTP/1.1 200"));
    } // <- connection dropped here, mid-recovery

    // The connection thread notices the hang-up, cancels through the
    // shared token, and counts the outcome. Poll /metrics for it — the
    // heavy recovery would otherwise run for much longer.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let metrics = http_request(addr, "GET", "/metrics", &[], b"").expect("metrics");
        if metrics
            .body_text()
            .contains("rebert_requests_total{endpoint=\"stream\",outcome=\"cancelled\"}")
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never recorded the cancelled stream:\n{}",
            metrics.body_text()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The session survived the cancellation: a small follow-up request
    // on the same daemon completes normally.
    let small = generate(&Profile::new("after", 120, 12, 3), 5);
    let reply = submit_recover(addr, &write_bench(&small.netlist), Some("bench"), None)
        .expect("follow-up submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    server.shutdown();
}

#[test]
fn debug_stats_snapshot_has_queue_cache_and_quantiles() {
    let c = generate(&Profile::new("stats", 120, 12, 3), 7);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(5), 1, 4, None);
    let addr = server.addr();
    let reply = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(reply.status, 200);

    let stats = http_request(addr, "GET", "/debug/stats", &[], b"").expect("stats");
    assert_eq!(stats.status, 200);
    let json = Json::parse(&stats.body_text()).expect("stats json");
    assert_eq!(json_field(&json, "queue_capacity").as_usize(), Some(4));
    assert!(json_field(&json, "queue_depth").as_u64().is_some());
    let cache = json_field(&json, "cache");
    assert!(json_field(cache, "hit_rate").as_f64().unwrap() >= 0.0);
    let phases = json_field(&json, "phases").as_array().unwrap();
    assert!(!phases.is_empty(), "phase quantiles after one recovery");
    for p in phases {
        assert!(json_field(p, "p50").as_f64().unwrap() <= json_field(p, "p99").as_f64().unwrap());
    }
    let endpoints = json_field(&json, "endpoints").as_array().unwrap();
    assert!(
        endpoints
            .iter()
            .any(|e| e.get("endpoint").and_then(Json::as_str) == Some("recover")),
        "per-endpoint duration series for /recover: {endpoints:?}"
    );
    server.shutdown();
}

#[test]
fn debug_trace_filters_by_request_id() {
    let c = generate(&Profile::new("trace", 100, 8, 2), 3);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(2), 1, 4, None);
    let addr = server.addr();

    for id in ["trace-keep", "trace-drop"] {
        let reply = http_request(
            addr,
            "POST",
            "/recover",
            &[("X-Rebert-Format", "bench"), ("X-Rebert-Request-Id", id)],
            bench.as_bytes(),
        )
        .expect("submit");
        assert_eq!(reply.status, 200, "{}", reply.body_text());
    }

    let trace =
        http_request(addr, "GET", "/debug/trace?request_id=trace-keep", &[], b"").expect("trace");
    let body = trace.body_text();
    let mut lines = body.lines();
    let meta = Json::parse(lines.next().expect("meta line")).expect("meta json");
    assert_eq!(json_field(&meta, "request_id").as_str(), Some("trace-keep"));
    let drained = json_field(&meta, "drained").as_usize().unwrap();
    let rest: Vec<&str> = lines.collect();
    assert_eq!(drained, rest.len(), "meta count matches record lines");
    assert!(drained > 0, "the filtered request left records");
    assert!(
        json_field(&meta, "filtered_out").as_u64().unwrap() > 0,
        "the other request's records were filtered out"
    );
    for line in rest {
        assert!(
            line.contains("trace-keep") && !line.contains("trace-drop"),
            "filtered line leaked a foreign record: {line}"
        );
    }
    server.shutdown();
}
