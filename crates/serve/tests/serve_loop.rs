//! End-to-end loopback tests for the daemon: a real `TcpListener` on an
//! ephemeral port, real connections, and the same recovery engine the
//! offline CLI uses. Pins the serving contract: bit-identical results
//! versus offline recovery, 503 backpressure, deadline 504s that leave
//! the session warm, 400s on malformed input, graceful drain, and a
//! well-formed Prometheus exposition.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rebert::{ReBertConfig, ReBertModel, RecoverySession};
use rebert_circuits::{generate, GeneratedCircuit, Profile};
use rebert_netlist::{parse_bench, write_bench, write_verilog};
use rebert_serve::{
    http_request, serve, submit_recover, submit_recover_opts, submit_recover_with, ServeConfig,
    Server,
};

/// Boots a daemon on an ephemeral loopback port.
fn boot(model: ReBertModel, threads: usize, queue: usize, deadline: Option<Duration>) -> Server {
    let session = RecoverySession::new(model, threads);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let config = ServeConfig {
        queue_capacity: queue,
        default_deadline: deadline,
        ..ServeConfig::default()
    };
    serve(session, listener, config).expect("serve")
}

fn tiny_model(seed: u64) -> ReBertModel {
    ReBertModel::new(ReBertConfig::tiny(), seed)
}

/// A model + circuit pair heavy enough that one recovery takes long
/// enough (hundreds of model calls, no Jaccard filtering) to observe
/// queued and in-flight states from the outside.
fn heavy_setup() -> (ReBertModel, GeneratedCircuit) {
    let mut cfg = ReBertConfig::small();
    cfg.jaccard_threshold = 0.0;
    let model = ReBertModel::new(cfg, 3);
    let circuit = generate(&Profile::new("load", 600, 48, 6), 21);
    (model, circuit)
}

fn json_field<'a>(json: &'a rebert::json::Json, key: &str) -> &'a rebert::json::Json {
    json.get(key)
        .unwrap_or_else(|| panic!("missing field `{key}`"))
}

#[test]
fn loopback_matches_offline_recovery_bit_for_bit() {
    let c = generate(&Profile::new("demo", 120, 12, 3), 5);
    let bench = write_bench(&c.netlist);

    // The offline truth, computed on the same parsed-from-text netlist
    // the daemon will see.
    let offline_nl = parse_bench("request", &bench).expect("round-trip parse");
    let offline = tiny_model(13).recover_words_with(&offline_nl, 1);

    let server = boot(tiny_model(13), 2, 8, None);
    let addr = server.addr();
    for round in 0..2 {
        let reply = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
        assert_eq!(reply.status, 200, "round {round}: {}", reply.body_text());
        let json = rebert::json::Json::parse(&reply.body_text()).expect("response json");
        let assignment: Vec<usize> = json_field(&json, "assignment")
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_usize().unwrap())
            .collect();
        assert_eq!(assignment, offline.assignment, "round {round}");
        assert_eq!(json_field(&json, "bits").as_usize(), Some(12));
        let stats = json_field(&json, "stats");
        assert_eq!(
            json_field(stats, "pairs_total").as_usize(),
            Some(offline.stats.pairs_total)
        );
        assert_eq!(
            json_field(stats, "pairs_filtered").as_usize(),
            Some(offline.stats.pairs_filtered)
        );
        assert_eq!(
            json_field(stats, "pairs_scored").as_usize(),
            Some(offline.stats.pairs_scored)
        );
        assert_eq!(
            json_field(stats, "class_pairs_scored").as_usize(),
            Some(offline.stats.class_pairs_scored)
        );
        // Words are derived from the assignment the same way offline.
        let words = json_field(&json, "words").as_array().unwrap();
        assert_eq!(words.len(), offline.words().len(), "round {round}");
    }
    server.shutdown();
}

#[test]
fn verilog_bodies_are_sniffed_and_parsed() {
    let c = generate(&Profile::new("vdemo", 100, 8, 2), 6);
    let verilog = write_verilog(&c.netlist);
    let server = boot(tiny_model(1), 1, 4, None);
    let reply = submit_recover(server.addr(), &verilog, None, None).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
    assert_eq!(json_field(&json, "bits").as_usize(), Some(8));
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_503_and_retry_after() {
    let (model, circuit) = heavy_setup();
    let bench = write_bench(&circuit.netlist);
    let server = boot(model, 1, 1, None);
    let addr = server.addr();

    // Six concurrent submissions into a single-slot queue with a single
    // executor: at most one runs and one waits, so at least four must be
    // turned away with backpressure.
    let submits: Vec<_> = (0..6)
        .map(|_| {
            let bench = bench.clone();
            std::thread::spawn(move || submit_recover(addr, &bench, Some("bench"), None))
        })
        .collect();
    let replies: Vec<_> = submits
        .into_iter()
        .map(|t| t.join().unwrap().expect("transport"))
        .collect();

    let ok = replies.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<_> = replies.iter().filter(|r| r.status == 503).collect();
    assert_eq!(ok + rejected.len(), 6, "only 200s and 503s expected");
    assert!(ok >= 1, "at least the first job completes");
    assert!(!rejected.is_empty(), "a single-slot queue must shed load");
    for r in &rejected {
        assert_eq!(r.header("Retry-After"), Some("1"), "{}", r.body_text());
        assert!(r.body_text().contains("queue is full"));
    }
    assert!(server.metrics().rejected_total.get() >= rejected.len() as u64);
    server.shutdown();
}

#[test]
fn expired_deadline_yields_504_and_leaves_the_session_warm() {
    let (model, circuit) = heavy_setup();
    let bench = write_bench(&circuit.netlist);

    // Offline truth for the post-504 sanity check.
    let offline_nl = parse_bench("request", &bench).unwrap();
    let (offline_model, _) = heavy_setup();
    let offline = offline_model.recover_words_with(&offline_nl, 2);

    let server = boot(model, 2, 4, None);
    let addr = server.addr();

    // A zero-millisecond budget has already expired by the time the
    // executor picks the job up, so the abort path is deterministic.
    let reply = submit_recover(addr, &bench, Some("bench"), Some(0)).expect("submit");
    assert_eq!(reply.status, 504, "{}", reply.body_text());
    assert!(reply.body_text().contains("deadline"));
    assert_eq!(server.metrics().deadline_total.get(), 1);

    // The session is not poisoned: an unbounded request on the same
    // daemon still produces the offline answer.
    let reply = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
    let assignment: Vec<usize> = json_field(&json, "assignment")
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    assert_eq!(assignment, offline.assignment);
    server.shutdown();
}

#[test]
fn malformed_inputs_get_400s() {
    let server = boot(tiny_model(2), 1, 4, None);
    let addr = server.addr();

    // A body that is not a netlist in either dialect.
    let reply = submit_recover(addr, "this is not a netlist\n", None, None).unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply.body_text().contains("error"));

    // An explicit format that does not exist.
    let reply = submit_recover(addr, "INPUT(a)\n", Some("vhdl"), None).unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply.body_text().contains("vhdl"));

    // A non-numeric deadline.
    let reply = http_request(
        addr,
        "POST",
        "/recover",
        &[("X-Rebert-Deadline-Ms", "soon")],
        b"INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n",
    )
    .unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply.body_text().contains("Deadline"));

    // Bytes that are not HTTP at all.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");

    // Unknown endpoint and wrong method.
    assert_eq!(
        http_request(addr, "GET", "/nope", &[], b"").unwrap().status,
        404
    );
    assert_eq!(
        http_request(addr, "PUT", "/recover", &[], b"")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        http_request(addr, "POST", "/metrics", &[], b"")
            .unwrap()
            .status,
        405
    );
    server.shutdown();
}

#[test]
fn lint_rejected_netlists_get_422_with_diagnostics() {
    let server = boot(tiny_model(2), 1, 4, None);
    let addr = server.addr();

    // Parses fine but fails the structural pre-flight: `ghost` is
    // consumed and never driven. The daemon must refuse to recover
    // words from it and say exactly why, machine-readably.
    let broken = "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n";
    let reply = submit_recover(addr, broken, Some("bench"), None).unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body_text());
    let json = rebert::json::Json::parse(&reply.body_text()).expect("diagnostics are JSON");
    assert!(json_field(&json, "error")
        .as_str()
        .unwrap()
        .contains("lint"));
    assert_eq!(json_field(&json, "errors").as_usize(), Some(1));
    let diags = json_field(&json, "diagnostics").as_array().unwrap();
    assert_eq!(
        diags[0].get("code").and_then(rebert::json::Json::as_str),
        Some("undriven-net")
    );
    assert_eq!(
        diags[0]
            .get("nets")
            .and_then(rebert::json::Json::as_array)
            .and_then(|nets| nets[0].as_str()),
        Some("ghost")
    );

    // The refusal must not poison the session: a well-formed follow-up
    // request on the same daemon still recovers words.
    let good = "INPUT(a)\nINPUT(b)\nx = AND(a, b)\nq0 = DFF(x)\ny = OR(a, b)\nq1 = DFF(y)\nOUTPUT(q0)\nOUTPUT(q1)\n";
    let reply = submit_recover(addr, good, Some("bench"), None).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
    assert_eq!(json_field(&json, "bits").as_usize(), Some(2));
    // The pipeline's warning list rides along in the success payload.
    // A structurally clean netlist never reports invariant violations
    // (score-calibration warnings may still appear for a toy model).
    let warnings = json_field(&json, "warnings").as_array().unwrap();
    assert!(
        warnings
            .iter()
            .all(|w| !w.as_str().unwrap_or("").contains("invariant")),
        "{warnings:?}"
    );

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    let (model, circuit) = heavy_setup();
    let bench = write_bench(&circuit.netlist);
    let server = boot(model, 1, 4, None);
    let addr = server.addr();

    let submits: Vec<_> = (0..2)
        .map(|_| {
            let bench = bench.clone();
            std::thread::spawn(move || submit_recover(addr, &bench, Some("bench"), None))
        })
        .collect();

    // Wait until one job is in flight and the other is queued (falls
    // through after a generous timeout if recovery is unexpectedly
    // fast — both replies are still asserted below).
    let patience = Instant::now();
    while server.metrics().queue_depth.get() < 1 && patience.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }

    // Drain: both already-accepted jobs must complete with 200 even
    // though the daemon is shutting down around them.
    server.shutdown();
    for t in submits {
        let reply = t.join().unwrap().expect("transport");
        assert_eq!(reply.status, 200, "{}", reply.body_text());
    }

    // The listener is gone: nothing answers on that port any more.
    assert!(http_request(addr, "GET", "/healthz", &[], b"").is_err());
}

#[test]
fn shutdown_endpoint_flags_the_drain() {
    let server = boot(tiny_model(4), 1, 4, None);
    let addr = server.addr();
    assert!(!server.shutdown_requested());
    let reply = http_request(addr, "POST", "/shutdown", &[], b"").unwrap();
    assert_eq!(reply.status, 200);
    assert!(server.shutdown_requested());
    // Once the flag is up, new recoveries are refused.
    let reply = submit_recover(addr, "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n", None, None).unwrap();
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("Retry-After"), Some("5"));
    server.shutdown();
}

#[test]
fn debug_trace_correlates_requests_with_their_header_id() {
    let c = generate(&Profile::new("demo", 100, 8, 2), 11);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(9), 1, 4, None);
    let addr = server.addr();

    let reply = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let request_id = reply
        .header("X-Rebert-Request-Id")
        .expect("every response carries a request id")
        .to_owned();
    assert!(request_id.starts_with("req-"), "{request_id}");

    let trace = http_request(addr, "GET", "/debug/trace", &[], b"").unwrap();
    assert_eq!(trace.status, 200);
    assert!(trace.header("Content-Type").unwrap().contains("ndjson"));
    let body = trace.body_text();
    let mut lines = body.lines();
    let meta = rebert::json::Json::parse(lines.next().expect("meta line")).expect("meta parses");
    let drained = json_field(&meta, "drained").as_usize().unwrap();
    assert!(drained >= 1, "the recover request must be in the ring");
    assert!(meta.get("dropped_events").is_some());
    let records: Vec<rebert::json::Json> = lines
        .map(|l| rebert::json::Json::parse(l).expect("every line is one JSON record"))
        .collect();
    assert_eq!(records.len(), drained, "meta count matches the lines");

    let id_of = |r: &rebert::json::Json| {
        r.get("fields")
            .and_then(|f| f.get("request_id"))
            .and_then(rebert::json::Json::as_str)
            .map(str::to_owned)
    };
    // The request's root span is in the drain, tagged with the same id
    // the client saw in the header.
    let root = records
        .iter()
        .find(|r| {
            r.get("name").and_then(rebert::json::Json::as_str) == Some("request")
                && r.get("ph").and_then(rebert::json::Json::as_str) == Some("B")
                && id_of(r).as_deref() == Some(request_id.as_str())
        })
        .expect("root request span with the header's id");
    let root_span = root
        .get("span")
        .and_then(rebert::json::Json::as_usize)
        .unwrap();
    // The pipeline ran on the executor thread, yet its `recover` span
    // parents under that request root and inherits the id field.
    let recover = records
        .iter()
        .find(|r| {
            r.get("name").and_then(rebert::json::Json::as_str) == Some("recover")
                && r.get("ph").and_then(rebert::json::Json::as_str) == Some("B")
                && id_of(r).as_deref() == Some(request_id.as_str())
        })
        .expect("executor-side recover span carries the request id");
    assert_eq!(
        recover.get("parent").and_then(rebert::json::Json::as_usize),
        Some(root_span),
        "recovery parents under the request span"
    );

    // Draining is destructive: a second pull starts fresh, and error
    // responses carry ids too.
    let reply = submit_recover(addr, "garbage", None, None).unwrap();
    assert_eq!(reply.status, 400);
    let err_id = reply
        .header("X-Rebert-Request-Id")
        .expect("error responses carry a request id")
        .to_owned();
    assert_ne!(err_id, request_id, "ids are unique per request");
    let trace = http_request(addr, "GET", "/debug/trace", &[], b"").unwrap();
    let body = trace.body_text();
    assert!(
        body.lines().skip(1).any(|l| l.contains(&err_id)),
        "second drain holds only newer records, including the 400"
    );
    assert!(!body.contains(&request_id), "first drain emptied the ring");
    server.shutdown();
}

#[test]
fn score_cache_serves_hits_survives_restart_and_honors_no_cache() {
    let c = generate(&Profile::new("cached", 120, 12, 3), 14);
    let bench = write_bench(&c.netlist);
    let dir = std::env::temp_dir().join(format!("rebert_serve_cache_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let path = dir.join("score_cache.bin");
    let boot_cached = || {
        let session = RecoverySession::new(tiny_model(17), 1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let config = ServeConfig {
            cache_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        serve(session, listener, config).expect("serve")
    };
    let stat = |reply: &rebert_serve::HttpReply, key: &str| -> usize {
        let json = rebert::json::Json::parse(&reply.body_text()).expect("json body");
        json_field(json_field(&json, "stats"), key)
            .as_usize()
            .unwrap_or_else(|| panic!("stats.{key} missing"))
    };
    let words_of = |reply: &rebert_serve::HttpReply| -> String {
        let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
        json_field(&json, "words").to_string()
    };
    let fingerprint_of = |reply: &rebert_serve::HttpReply| -> String {
        let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
        json_field(&json, "model_fingerprint")
            .as_str()
            .expect("model_fingerprint is a string")
            .to_owned()
    };

    // First daemon lifetime: cold submit, warm resubmit, bypass.
    let server = boot_cached();
    let addr = server.addr();
    let first = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(stat(&first, "cache_hits"), 0, "fresh daemon has no entries");
    assert!(stat(&first, "cache_misses") > 0);
    let fingerprint = fingerprint_of(&first);
    assert_eq!(fingerprint.len(), 16, "{fingerprint}");

    let warm = submit_recover(addr, &bench, Some("bench"), None).expect("submit");
    assert_eq!(warm.status, 200);
    assert_eq!(stat(&warm, "cache_misses"), 0, "warm resubmit never misses");
    assert_eq!(stat(&warm, "cache_hits"), stat(&warm, "class_pairs_scored"));
    assert_eq!(words_of(&warm), words_of(&first), "identical words payload");

    // `X-Rebert-No-Cache` sidesteps the cache but not the answer.
    let bypass =
        submit_recover_opts(addr, &bench, Some("bench"), None, None, false).expect("submit");
    assert_eq!(bypass.status, 200);
    assert_eq!(stat(&bypass, "cache_hits"), 0);
    assert_eq!(stat(&bypass, "cache_misses"), 0);
    assert_eq!(words_of(&bypass), words_of(&first));

    // The exposition carries the cache series and the model identity.
    let metrics = http_request(addr, "GET", "/metrics", &[], b"").unwrap();
    let samples = parse_prometheus(&metrics.body_text());
    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .value
    };
    assert!(value("rebert_cache_hits_total") >= 1.0);
    assert!(value("rebert_cache_misses_total") >= 1.0);
    assert!(value("rebert_cache_entries") >= 1.0);
    assert!(value("rebert_cache_bytes") >= 1.0);
    assert!(samples.iter().any(|s| {
        s.name == "rebert_model_info"
            && s.labels
                .iter()
                .any(|(k, v)| k == "fingerprint" && *v == fingerprint)
    }));
    server.shutdown();
    assert!(path.exists(), "shutdown flushed the cache beside the model");

    // Second lifetime: the restarted daemon answers from the persisted
    // cache — zero misses — and bit-for-bit the same words.
    let server = boot_cached();
    let revived = submit_recover(server.addr(), &bench, Some("bench"), None).expect("submit");
    assert_eq!(revived.status, 200, "{}", revived.body_text());
    assert_eq!(stat(&revived, "cache_misses"), 0, "restart loads the file");
    assert_eq!(
        stat(&revived, "cache_hits"),
        stat(&revived, "class_pairs_scored")
    );
    assert_eq!(words_of(&revived), words_of(&first));
    assert_eq!(fingerprint_of(&revived), fingerprint);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_answers_ok() {
    let server = boot(tiny_model(5), 1, 4, None);
    let reply = http_request(server.addr(), "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body_text(), "ok\n");
    server.shutdown();
}

/// One parsed Prometheus sample: metric name, sorted label pairs, value.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A strict-enough parser for the Prometheus text exposition format:
/// every non-comment line must be `name[{labels}] value`, every sample's
/// family must have HELP and TYPE comments, and values must be finite.
fn parse_prometheus(text: &str) -> Vec<Sample> {
    let mut helps = std::collections::HashSet::new();
    let mut types = std::collections::HashSet::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helps.insert(rest.split(' ').next().unwrap().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap().to_owned();
            let kind = it.next().expect("TYPE line has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE `{kind}` in `{line}`"
            );
            types.insert(name);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment `{line}`");
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad sample `{line}`"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in `{line}`"));
        assert!(value.is_finite(), "non-finite value in `{line}`");
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed labels `{line}`"));
                let mut labels = Vec::new();
                for pair in rest.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("bad label `{pair}`"));
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .unwrap_or_else(|| panic!("unquoted label value `{pair}`"));
                    labels.push((k.to_owned(), v.to_owned()));
                }
                labels.sort();
                (name.to_owned(), labels)
            }
            None => (series.to_owned(), Vec::new()),
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    for s in &samples {
        let family = s
            .name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count")
            .to_owned();
        assert!(
            helps.contains(&s.name) || helps.contains(&family),
            "no HELP for `{}`",
            s.name
        );
        assert!(
            types.contains(&s.name) || types.contains(&family),
            "no TYPE for `{}`",
            s.name
        );
    }
    samples
}

#[test]
fn precision_header_selects_backend_and_rejects_unknown_values() {
    let c = generate(&Profile::new("prec", 100, 10, 2), 8);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(9), 1, 4, None);
    let addr = server.addr();

    // Each recognised label resolves to the backend the host supports
    // and the response reports the resolved label, not the requested one.
    let stats_backend = |reply: &rebert_serve::HttpReply| -> String {
        let json = rebert::json::Json::parse(&reply.body_text()).unwrap();
        json_field(json_field(&json, "stats"), "backend")
            .as_str()
            .expect("stats.backend is a string")
            .to_owned()
    };
    let reply = submit_recover_with(addr, &bench, Some("bench"), None, Some("int8")).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    assert_eq!(stats_backend(&reply), "int8");

    let reply = submit_recover_with(addr, &bench, Some("bench"), None, Some("f32-simd")).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    assert_eq!(
        stats_backend(&reply),
        rebert::Backend::F32Simd.effective().label()
    );

    // No header and an explicit `f32` both mean the scalar default.
    let reply = submit_recover(addr, &bench, Some("bench"), None).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(stats_backend(&reply), "f32-scalar");
    let reply = submit_recover_with(addr, &bench, Some("bench"), None, Some("f32")).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(stats_backend(&reply), "f32-scalar");

    // Unknown labels are a client error with a diagnostic body.
    let reply = submit_recover_with(addr, &bench, Some("bench"), None, Some("fp4")).unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    let body = reply.body_text();
    assert!(body.contains("X-Rebert-Precision"), "{body}");
    assert!(body.contains("fp4"), "{body}");
    assert!(body.contains("int8"), "{body}");

    // The per-backend series track which backends actually served work.
    let metrics = http_request(addr, "GET", "/metrics", &[], b"").unwrap();
    let samples = parse_prometheus(&metrics.body_text());
    let find = |name: &str, backend: &str| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == name && s.labels.iter().any(|(k, v)| k == "backend" && v == backend)
            })
            .unwrap_or_else(|| panic!("missing sample {name}{{backend={backend}}}"))
            .value
    };
    assert_eq!(find("rebert_backend_requests_total", "int8"), 1.0);
    assert!(find("rebert_backend_requests_total", "f32-scalar") >= 2.0);
    assert!(find("rebert_backend_pairs_per_sec", "int8") > 0.0);
    server.shutdown();
}

#[test]
fn metrics_exposition_is_well_formed_and_tracks_requests() {
    let c = generate(&Profile::new("demo", 100, 10, 2), 7);
    let bench = write_bench(&c.netlist);
    let server = boot(tiny_model(6), 1, 4, None);
    let addr = server.addr();

    assert_eq!(
        submit_recover(addr, &bench, None, None).unwrap().status,
        200
    );
    assert_eq!(
        submit_recover(addr, "garbage", None, None).unwrap().status,
        400
    );

    let reply = http_request(addr, "GET", "/metrics", &[], b"").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply
        .header("Content-Type")
        .unwrap()
        .starts_with("text/plain"));
    let samples = parse_prometheus(&reply.body_text());

    let find = |name: &str, want: &[(&str, &str)]| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && want
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("missing sample {name} {want:?}"))
            .value
    };

    assert_eq!(
        find(
            "rebert_requests_total",
            &[("endpoint", "recover"), ("outcome", "ok")]
        ),
        1.0
    );
    assert_eq!(
        find(
            "rebert_requests_total",
            &[("endpoint", "recover"), ("outcome", "bad_request")]
        ),
        1.0
    );
    assert_eq!(find("rebert_inflight", &[]), 0.0);
    assert_eq!(find("rebert_queue_depth", &[]), 0.0);
    assert!(find("rebert_pairs_scored_total", &[]) >= 1.0);
    assert!(find("rebert_pairs_per_sec", &[]) > 0.0);
    assert_eq!(
        find("rebert_phase_seconds_count", &[("phase", "score")]),
        1.0
    );

    // Histogram buckets are cumulative and end at +Inf == count, for
    // every phase.
    for phase in ["tokenize", "filter", "score", "group", "total"] {
        let mut buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|s| {
                s.name == "rebert_phase_seconds_bucket"
                    && s.labels.iter().any(|(k, v)| k == "phase" && v == phase)
            })
            .map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse().unwrap()
                        }
                    })
                    .expect("bucket has le");
                (le, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(!buckets.is_empty(), "no buckets for phase {phase}");
        for pair in buckets.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "non-cumulative buckets for {phase}");
        }
        let (last_le, last) = buckets[buckets.len() - 1];
        assert!(last_le.is_infinite());
        assert_eq!(
            last,
            find("rebert_phase_seconds_count", &[("phase", phase)])
        );
    }
    server.shutdown();
}
