//! Loopback tests for the model registry's serving surface: hot swaps
//! that never drop or mix requests, per-model routing with 404s that
//! list the residents, tenant quotas surfacing as 429 + metrics, the
//! `/batch` streaming endpoint, and client-supplied request ids echoed
//! on error responses.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rebert::{save_model, ReBertConfig, ReBertModel, RecoverySession};
use rebert_circuits::{generate, Profile};
use rebert_netlist::write_bench;
use rebert_serve::{
    batch_archive, http_request, list_models, load_model_remote, submit, submit_batch,
    submit_recover, ServeConfig, SubmitOptions,
};

fn tiny_model(seed: u64) -> ReBertModel {
    ReBertModel::new(ReBertConfig::tiny(), seed)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rebert_registry_serve_tests")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn boot_with(model: ReBertModel, threads: usize, config: ServeConfig) -> rebert_serve::Server {
    let session = RecoverySession::new(model, threads);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    rebert_serve::serve(session, listener, config).expect("serve")
}

fn json_parse(text: &str) -> rebert::json::Json {
    rebert::json::Json::parse(text).unwrap_or_else(|e| panic!("bad json `{text}`: {e}"))
}

fn fingerprint_of(reply_body: &str) -> String {
    json_parse(reply_body)
        .get("model_fingerprint")
        .and_then(rebert::json::Json::as_str)
        .expect("reply carries model_fingerprint")
        .to_owned()
}

/// The acceptance gate: continuous submissions during a hot load of a
/// new default-model version — zero failed requests, every reply
/// attributed to exactly one of the two valid fingerprints, and the
/// retired version's score cache flushed to disk.
#[test]
fn hot_swap_is_outage_free_and_never_mixes_models() {
    let cache_dir = tmp_dir("hot_swap");
    let model_a = tiny_model(40);
    let fp_a = model_a.fingerprint_hex();
    let model_b = tiny_model(41);
    let fp_b = model_b.fingerprint_hex();
    assert_ne!(fp_a, fp_b);
    let ckpt_b = cache_dir.join("model_b.json");
    save_model(&model_b, &ckpt_b).expect("save checkpoint");

    let server = boot_with(
        model_a,
        2,
        ServeConfig {
            queue_capacity: 64,
            cache_dir: Some(cache_dir.clone()),
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let bench = write_bench(&generate(&Profile::new("swap", 120, 10, 3), 7).netlist);

    let stop = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let bench = bench.clone();
            std::thread::spawn(move || {
                let mut fingerprints = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let reply = submit_recover(addr, &bench, Some("bench"), None)
                        .expect("transport must not fail during a swap");
                    assert_eq!(
                        reply.status,
                        200,
                        "swap dropped a request: {}",
                        reply.body_text()
                    );
                    fingerprints.push(fingerprint_of(&reply.body_text()));
                }
                fingerprints
            })
        })
        .collect();

    // Let the submitters get in flight, then publish the new version.
    std::thread::sleep(Duration::from_millis(150));
    let reply = load_model_remote(addr, "default", ckpt_b.to_str().unwrap()).expect("load");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let load_json = json_parse(&reply.body_text());
    assert_eq!(
        load_json
            .get("fingerprint")
            .and_then(rebert::json::Json::as_str),
        Some(fp_b.as_str())
    );
    assert_eq!(
        load_json
            .get("version")
            .and_then(rebert::json::Json::as_u64),
        Some(2)
    );
    // Keep submitting on the new version so the executor reaps the old.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);

    let mut all: Vec<String> = Vec::new();
    for s in submitters {
        all.extend(s.join().expect("submitter thread"));
    }
    assert!(!all.is_empty(), "the swap window saw no traffic");
    for fp in &all {
        assert!(
            *fp == fp_a || *fp == fp_b,
            "reply attributed to unknown model {fp}"
        );
    }
    assert!(
        all.last() == Some(&fp_b),
        "traffic after the swap must land on the new version"
    );
    server.shutdown();

    // Both versions' caches persisted: the retired A at reap time, the
    // resident B at shutdown.
    assert!(
        cache_dir.join(format!("score-cache-{fp_a}.bin")).exists(),
        "retired model's cache was not flushed"
    );
    assert!(
        cache_dir.join(format!("score-cache-{fp_b}.bin")).exists(),
        "resident model's cache was not flushed"
    );
}

/// A request admitted before a swap finishes on the model it was
/// admitted under, with results bitwise-identical to that model's
/// offline recovery.
#[test]
fn requests_admitted_before_a_swap_finish_on_the_old_model_bitwise() {
    let dir = tmp_dir("mid_swap");
    // A model slow enough (no Jaccard pre-filter) that a large request
    // visibly occupies the executor while the swap happens.
    let heavy_model = |seed: u64| {
        let mut cfg = ReBertConfig::small();
        cfg.jaccard_threshold = 0.0;
        ReBertModel::new(cfg, seed)
    };
    let model_a = heavy_model(50);
    let fp_a = model_a.fingerprint_hex();
    let ckpt_b = dir.join("model_b.json");
    save_model(&heavy_model(51), &ckpt_b).expect("save checkpoint");

    let target = generate(&Profile::new("pinned", 120, 12, 3), 9);
    let target_bench = write_bench(&target.netlist);
    let offline = heavy_model(50).recover_words_with(
        &rebert_netlist::parse_bench("request", &target_bench).expect("round-trip"),
        1,
    );

    // A slow request occupies the single executor; the target request
    // is then admitted (and pinned to v1) but still queued when the
    // swap publishes v2.
    let heavy_bench = write_bench(&generate(&Profile::new("heavy", 600, 48, 6), 21).netlist);
    let server = boot_with(
        model_a,
        1,
        ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let heavy = std::thread::spawn(move || submit_recover(addr, &heavy_bench, Some("bench"), None));
    // Wait until the heavy request is off the queue and executing.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = http_request(addr, "GET", "/metrics", &[], b"").expect("metrics");
        let body = metrics.body_text();
        let in_flight = body
            .lines()
            .find_map(|l| l.strip_prefix("rebert_inflight "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if in_flight >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "heavy request never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    let target_thread = {
        let bench = target_bench.clone();
        std::thread::spawn(move || submit_recover(addr, &bench, Some("bench"), None))
    };
    // Wait until the target is admitted (queued), then swap.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = http_request(addr, "GET", "/metrics", &[], b"").expect("metrics");
        let body = metrics.body_text();
        let depth = body
            .lines()
            .find_map(|l| l.strip_prefix("rebert_queue_depth "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if depth >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "target request never queued");
        std::thread::sleep(Duration::from_millis(5));
    }
    let reply = load_model_remote(addr, "default", ckpt_b.to_str().unwrap()).expect("load");
    assert_eq!(reply.status, 200, "{}", reply.body_text());

    let target_reply = target_thread.join().expect("join").expect("submit");
    assert_eq!(target_reply.status, 200, "{}", target_reply.body_text());
    let json = json_parse(&target_reply.body_text());
    assert_eq!(
        json.get("model_fingerprint")
            .and_then(rebert::json::Json::as_str),
        Some(fp_a.as_str()),
        "a request admitted under v1 must complete on v1"
    );
    let assignment: Vec<usize> = json
        .get("assignment")
        .and_then(rebert::json::Json::as_array)
        .expect("assignment")
        .iter()
        .filter_map(rebert::json::Json::as_usize)
        .collect();
    assert_eq!(
        assignment, offline.assignment,
        "old-model completion must be bitwise-identical to offline recovery"
    );
    heavy.join().expect("join").expect("heavy submit");
    server.shutdown();
}

#[test]
fn unknown_model_gets_404_listing_residents_and_echoes_request_id() {
    let server = boot_with(tiny_model(60), 1, ServeConfig::default());
    let addr = server.addr();
    let reply = submit(
        addr,
        "INPUT(a)\ny = NOT(a)\nq = DFF(y)\nOUTPUT(q)\n",
        &SubmitOptions {
            model: Some("nonesuch".to_owned()),
            request_id: Some("trace-me-42".to_owned()),
            ..SubmitOptions::default()
        },
    )
    .expect("submit");
    assert_eq!(reply.status, 404, "{}", reply.body_text());
    let json = json_parse(&reply.body_text());
    let residents: Vec<&str> = json
        .get("resident")
        .and_then(rebert::json::Json::as_array)
        .expect("404 lists resident models")
        .iter()
        .filter_map(rebert::json::Json::as_str)
        .collect();
    assert_eq!(residents, ["default"]);
    // Satellite: the client-chosen id comes back on the error response,
    // so the failure is findable in `/debug/trace`.
    assert_eq!(reply.header("x-rebert-request-id"), Some("trace-me-42"));

    let trace = http_request(addr, "GET", "/debug/trace", &[], b"").expect("trace");
    assert!(
        trace.body_text().contains("trace-me-42"),
        "the request id must appear in the trace ring"
    );
    server.shutdown();
}

#[test]
fn models_endpoint_lists_residents_and_load_bumps_versions() {
    let dir = tmp_dir("models_list");
    let model_a = tiny_model(70);
    let fp_a = model_a.fingerprint_hex();
    let aux = tiny_model(71);
    let fp_aux = aux.fingerprint_hex();
    let ckpt = dir.join("aux.json");
    save_model(&aux, &ckpt).expect("save checkpoint");

    let server = boot_with(model_a, 1, ServeConfig::default());
    let addr = server.addr();

    let reply = list_models(addr).expect("list");
    assert_eq!(reply.status, 200);
    let json = json_parse(&reply.body_text());
    let models = json
        .get("models")
        .and_then(rebert::json::Json::as_array)
        .expect("models array")
        .to_vec();
    assert_eq!(models.len(), 1);
    assert_eq!(
        models[0].get("name").and_then(rebert::json::Json::as_str),
        Some("default")
    );
    assert_eq!(
        models[0]
            .get("fingerprint")
            .and_then(rebert::json::Json::as_str),
        Some(fp_a.as_str())
    );

    // A second name is additive, not a swap.
    let reply = load_model_remote(addr, "aux", ckpt.to_str().unwrap()).expect("load");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let reply = list_models(addr).expect("list");
    let json = json_parse(&reply.body_text());
    let models = json
        .get("models")
        .and_then(rebert::json::Json::as_array)
        .expect("models array")
        .to_vec();
    assert_eq!(models.len(), 2, "{}", reply.body_text());

    // Routing honors X-Rebert-Model, and the metrics expose both.
    let bench = write_bench(&generate(&Profile::new("route", 90, 8, 2), 3).netlist);
    let reply = submit(
        addr,
        &bench,
        &SubmitOptions {
            format: Some("bench".to_owned()),
            model: Some("aux".to_owned()),
            ..SubmitOptions::default()
        },
    )
    .expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    assert_eq!(fingerprint_of(&reply.body_text()), fp_aux);

    let metrics = http_request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .body_text();
    assert!(
        metrics.contains(&format!(
            "rebert_model_info{{name=\"aux\",version=\"1\",fingerprint=\"{fp_aux}\"}} 1"
        )),
        "{metrics}"
    );
    assert!(
        metrics.contains(&format!(
            "rebert_model_info{{name=\"default\",version=\"1\",fingerprint=\"{fp_a}\"}} 1"
        )),
        "{metrics}"
    );

    // Bad load requests are client errors, not crashes.
    let reply = load_model_remote(addr, "aux", "/nonexistent/path.json").expect("load");
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    let reply = load_model_remote(addr, "bad name!", ckpt.to_str().unwrap()).expect("load");
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    server.shutdown();
}

#[test]
fn tenant_quotas_throttle_with_429_retry_after_and_metrics() {
    let server = boot_with(
        tiny_model(80),
        1,
        ServeConfig {
            // Refill is negligible within the test window; burst is 1.
            tenant_quota: Some(0.001),
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let bench = "INPUT(a)\ny = NOT(a)\nq = DFF(y)\nOUTPUT(q)\n";
    let as_tenant = |tenant: &str| SubmitOptions {
        format: Some("bench".to_owned()),
        tenant: Some(tenant.to_owned()),
        ..SubmitOptions::default()
    };

    let reply = submit(addr, bench, &as_tenant("alice")).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let reply = submit(addr, bench, &as_tenant("alice")).expect("submit");
    assert_eq!(reply.status, 429, "{}", reply.body_text());
    let retry_after: u64 = reply
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("integral Retry-After");
    assert!(retry_after >= 1);

    // A different tenant draws from its own bucket.
    let reply = submit(addr, bench, &as_tenant("bob")).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body_text());

    let metrics = http_request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .body_text();
    assert!(
        metrics.contains("rebert_tenant_requests_total{tenant=\"alice\",outcome=\"throttled\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("rebert_tenant_requests_total{tenant=\"alice\",outcome=\"ok\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("rebert_tenant_requests_total{tenant=\"bob\",outcome=\"ok\"} 1"),
        "{metrics}"
    );
    let throttled = metrics
        .lines()
        .find_map(|l| l.strip_prefix("rebert_throttled_total "))
        .and_then(|v| v.trim().parse::<u64>().ok());
    assert_eq!(throttled, Some(1), "{metrics}");
    server.shutdown();
}

#[test]
fn batch_streams_one_record_per_netlist_matching_single_submits() {
    let server = boot_with(tiny_model(90), 2, ServeConfig::default());
    let addr = server.addr();

    let circuits: Vec<_> = (0..3)
        .map(|i| {
            generate(
                &Profile::new(format!("bat{i}"), 100 + 10 * i, 8, 2),
                i as u64,
            )
        })
        .collect();
    let texts: Vec<(String, String)> = circuits
        .iter()
        .enumerate()
        .map(|(i, c)| (format!("design{i}"), write_bench(&c.netlist)))
        .collect();
    let archive = batch_archive(texts.iter().map(|(n, t)| (n.as_str(), t.as_str())));
    let reply = submit_batch(
        addr,
        &archive,
        &SubmitOptions {
            format: Some("bench".to_owned()),
            ..SubmitOptions::default()
        },
    )
    .expect("batch");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    assert_eq!(
        reply.header("content-type"),
        Some("application/x-ndjson"),
        "batch streams NDJSON"
    );

    let records: Vec<rebert::json::Json> = reply
        .body_text()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(json_parse)
        .collect();
    assert_eq!(records.len(), 3);
    for (i, record) in records.iter().enumerate() {
        assert_eq!(
            record.get("index").and_then(rebert::json::Json::as_usize),
            Some(i),
            "records arrive in archive order"
        );
        assert_eq!(
            record.get("name").and_then(rebert::json::Json::as_str),
            Some(format!("design{i}").as_str())
        );
        assert_eq!(
            record.get("ok").and_then(rebert::json::Json::as_bool),
            Some(true)
        );

        // Each record matches what a single /recover returns.
        let single = submit_recover(addr, &texts[i].1, Some("bench"), None).expect("single");
        assert_eq!(single.status, 200);
        let single_json = json_parse(&single.body_text());
        assert_eq!(
            record.get("assignment").map(ToString::to_string),
            single_json.get("assignment").map(ToString::to_string),
            "batch and single-submit assignments must agree"
        );
    }

    // A malformed entry becomes an inline error record; the good
    // entries still complete.
    let mixed = batch_archive([
        ("good", texts[0].1.as_str()),
        ("bad", "this is not a netlist\n"),
    ]);
    let reply = submit_batch(addr, &mixed, &SubmitOptions::default()).expect("batch");
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let records: Vec<rebert::json::Json> = reply
        .body_text()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(json_parse)
        .collect();
    assert_eq!(records.len(), 2);
    assert_eq!(
        records[0].get("ok").and_then(rebert::json::Json::as_bool),
        Some(true)
    );
    assert_eq!(
        records[1].get("ok").and_then(rebert::json::Json::as_bool),
        Some(false)
    );
    assert!(records[1].get("error").is_some());

    let metrics = http_request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .body_text();
    let batched = metrics
        .lines()
        .find_map(|l| l.strip_prefix("rebert_batch_netlists_total "))
        .and_then(|v| v.trim().parse::<u64>().ok());
    assert_eq!(batched, Some(5), "{metrics}");

    // A syntactically broken archive is rejected up front.
    let reply =
        submit_batch(addr, b"not-a-length header\n", &SubmitOptions::default()).expect("batch");
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    server.shutdown();
}
