//! # rebert-serve
//!
//! A resident word-recovery daemon for the ReBERT reproduction. The
//! one-shot `rebert recover` pays checkpoint load and scratch warm-up on
//! every invocation; this crate keeps a [`rebert::RecoverySession`]
//! alive behind a small dependency-free HTTP/1.1 server, so repeated
//! recoveries run against a warm model.
//!
//! ## Endpoints
//!
//! | Endpoint          | Semantics |
//! |-------------------|-----------|
//! | `POST /recover`   | Body is a `.bench` or Verilog netlist (`X-Rebert-Format: bench\|verilog`, sniffed otherwise). Optional `X-Rebert-Deadline-Ms` bounds the recovery; optional `X-Rebert-Precision: f32\|f32-simd\|int8` selects the scoring backend (unknown values get `400`); optional `X-Rebert-Model` picks a resident model by name (unknown names get `404` listing the residents). Returns recovered words + pipeline stats as JSON. |
//! | `POST /recover/stream` | Same body and headers as `/recover`, but the reply is live NDJSON: a `meta` record, `progress` records while the recovery runs (phase begin/end, scored-pairs percent, cache hits), then the final result record — byte-identical to the `/recover` payload and the only line without a `"type"` key. A client that disconnects mid-stream cancels the job; the warm session survives. |
//! | `POST /batch`     | Body is a length-prefixed archive of named netlists (`<len> <name>\n` + bytes per entry; see [`client::batch_archive`]). Streams one NDJSON record per netlist as each finishes; per-entry failures are records, not HTTP errors. Honors the same model/backend/deadline headers as `/recover`. |
//! | `GET /models`     | Lists resident models: name, version, checkpoint fingerprint, per-backend served counters, score-cache stats. |
//! | `POST /models/{name}/load` | Body `{"path": "ckpt.rbt"}`. Loads the checkpoint and atomically publishes it under `name`; in-flight requests finish on the old version, which is retired (cache flushed, memory dropped) once its refcount drains. |
//! | `GET /healthz`    | Liveness probe (`200 ok`). |
//! | `GET /metrics`    | Prometheus text exposition: request counters, queue depth, in-flight gauge, per-phase timing histograms, pairs/sec, cone-dedup counters, `rebert_model_info` per resident model, per-tenant request counters. |
//! | `POST /shutdown`  | Requests a graceful drain (also triggered by SIGINT/SIGTERM). |
//! | `GET /debug/trace`| Drains the in-memory trace ring as NDJSON: a meta line (`drained`, `dropped_events`) followed by one span/event record per line. `?request_id=<id>` narrows the output to one request's records. |
//! | `GET /debug/stats`| One JSON snapshot of the operator numbers: queue depth/capacity, inflight, cache hit rate, per-phase and per-endpoint latency quantiles (p50/p95/p99), per-backend pairs/sec, resident models. |
//! | `GET /`           | With [`ServeConfig::web`] (`rebert serve --web`): the embedded single-file dashboard — live stat tiles, a per-request phase waterfall fed by `/recover/stream`, and a recovered-word bit heatmap. No build step, no external assets. |
//!
//! ## Semantics
//!
//! * **Backpressure** — jobs flow through a bounded queue
//!   ([`queue::Bounded`]); when it is full, submissions get `503` with
//!   `Retry-After` instead of queueing invisibly.
//! * **Deadlines** — each request's deadline becomes a
//!   [`rebert::CancelToken`] threaded through the scoring work loops;
//!   overdue recoveries abort cooperatively with `504` and the session
//!   stays warm.
//! * **Graceful shutdown** — on SIGINT/SIGTERM (or `POST /shutdown`)
//!   the daemon stops accepting, drains queued work, answers every
//!   in-flight connection, and exits 0.
//! * **Multi-model residency** — a [`rebert_registry::ModelRegistry`]
//!   owns the resident models; each request pins the `Arc` of the model
//!   it resolved at admission, so a concurrent hot-load never mixes
//!   models mid-request. [`serve`] wraps a single session in a
//!   one-model registry; [`serve_registry`] serves a pre-populated one.
//! * **Tenant quotas** — with [`ServeConfig::tenant_quota`] set, each
//!   tenant (`X-Rebert-Tenant`, default `anonymous`) draws from its own
//!   token bucket; exhausted buckets get `429` with `Retry-After`, and
//!   per-tenant outcomes surface as `rebert_tenant_requests_total`.
//! * **Request correlation** — every response (including malformed-request
//!   `400`s) carries an `X-Rebert-Request-Id` header (a client-supplied
//!   id is echoed back, also on 4xx/5xx); the same id rides
//!   on every [`rebert_obs`] record the request produced, and the span
//!   tree (root `request` span → executor-side pipeline spans) survives
//!   the queue's thread hop via [`rebert_obs::TraceCtx`]. A bounded
//!   [`rebert_obs::RingSink`] buffers recent records without ever
//!   blocking the serving path; `GET /debug/trace` drains it.
//!
//! ```no_run
//! use rebert::{ReBertConfig, ReBertModel, RecoverySession};
//! use rebert_serve::{serve, ServeConfig};
//!
//! let model = ReBertModel::new(ReBertConfig::tiny(), 0);
//! let session = RecoverySession::new(model, 0);
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = serve(session, listener, ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! rebert_serve::run_until_shutdown(server);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
mod server;
mod web;

pub use client::{
    batch_archive, http_request, list_models, load_model_remote, submit, submit_batch,
    submit_recover, submit_recover_opts, submit_recover_with, submit_stream, HttpReply,
    SubmitOptions,
};
pub use metrics::Metrics;
pub use server::{run_until_shutdown, serve, serve_registry, signals, ServeConfig, Server};
