//! The daemon: accept loop, bounded job queue, single recovery
//! executor, and graceful shutdown.
//!
//! One connection thread per request (connections are short-lived:
//! `Connection: close`), all funneling into a [`Bounded`] queue consumed
//! by a single executor thread. Models live in a
//! [`rebert_registry::ModelRegistry`]: each job pins the resident
//! version it resolved at admission time, so a hot swap
//! (`POST /models/{name}/load`) never mixes models mid-request — old
//! jobs finish bitwise on the old version, which retires (score cache
//! flushed, memory dropped) once its refcount drains. The queue is the
//! backpressure boundary: when it is full the daemon answers `503` with
//! `Retry-After` instead of buffering unbounded work. Each job may carry
//! a deadline; the executor threads it into the session as a
//! [`CancelToken`], so an overdue recovery aborts cooperatively (`504`)
//! without poisoning the warm session.

use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rebert::json::Json;
use rebert::{Backend, CancelToken, Cancelled, RecoveredWords, RecoverySession};
use rebert_netlist::{parse_bench, parse_verilog, Netlist};
use rebert_obs as obs;
use rebert_obs::RingSink;
use rebert_registry::{ModelRegistry, RegistryConfig, ResidentModel, TenantQuotas, DEFAULT_MODEL};
use rebert_sync::Mutex;

use crate::http::{read_request, reason, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{Bounded, PushError};

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Jobs the queue holds before new submissions get `503`.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not set
    /// `X-Rebert-Deadline-Ms` themselves. `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Records the always-on trace ring holds for `GET /debug/trace`
    /// (oldest evicted first; recording never blocks).
    pub trace_capacity: usize,
    /// Most verbose level captured into the trace ring.
    pub trace_level: obs::Level,
    /// Byte budget for the shared cross-request score cache. `0`
    /// disables caching entirely (every request scores from scratch,
    /// as if `X-Rebert-No-Cache` were always set).
    pub cache_bytes: usize,
    /// Where the score cache persists across daemon restarts. `None`
    /// keeps the cache purely in-memory; with a path, the daemon loads
    /// it at startup (ignoring missing, corrupt, or stale-fingerprint
    /// files) and rewrites it atomically on shutdown and periodically.
    pub cache_path: Option<PathBuf>,
    /// Flush the persistent cache every this many completed recoveries
    /// (`0` = only at shutdown). Meaningless without `cache_path`.
    pub cache_flush_every: usize,
    /// Directory for per-model `score-cache-<fingerprint>.bin` files.
    /// Used by models hot-loaded through `POST /models/{name}/load`
    /// (and, when `cache_path` is unset, by the initial model too).
    pub cache_dir: Option<PathBuf>,
    /// Per-tenant request quota in requests/second (token bucket keyed
    /// by the `X-Rebert-Tenant` header; missing header = the shared
    /// `anonymous` bucket). `None` disables quota enforcement.
    pub tenant_quota: Option<f64>,
    /// Serve the embedded dashboard SPA at `GET /` (`rebert serve
    /// --web`). Off by default: the dashboard is an operator surface,
    /// not part of the API contract.
    pub web: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            default_deadline: None,
            trace_capacity: 4096,
            trace_level: obs::Level::Debug,
            cache_bytes: 64 << 20,
            cache_path: None,
            cache_flush_every: 64,
            cache_dir: None,
            tenant_quota: None,
            web: false,
        }
    }
}

/// One queued recovery: the parsed netlist, an optional absolute
/// deadline (measured from request arrival), and the reply channel back
/// to the connection thread.
struct Job {
    netlist: Arc<Netlist>,
    /// The registry version this request resolved at admission: pinned
    /// here so a hot swap between enqueue and execution can neither fail
    /// the request nor mix models — the job runs on exactly the version
    /// the client was told about.
    resident: Arc<ResidentModel>,
    deadline: Option<Instant>,
    /// A token shared with the submitting connection thread, so it can
    /// cancel the job from outside the executor (streaming clients that
    /// disconnect mid-recovery). `None` = the executor builds its own
    /// token from `deadline`.
    cancel: Option<CancelToken>,
    /// Inference backend requested via `X-Rebert-Precision` (validated
    /// on the connection thread; default scalar).
    backend: Backend,
    /// `false` when the client sent `X-Rebert-No-Cache`: this request
    /// neither reads nor writes the shared score cache.
    use_cache: bool,
    reply: mpsc::Sender<Result<RecoveredWords, Cancelled>>,
    /// Tracing context captured on the connection thread: the request's
    /// root span plus its `request_id` field. The executor adopts it so
    /// the pipeline's spans parent under the request that queued them.
    trace: obs::TraceCtx,
    /// Test-only fault injection: set when the daemon runs with
    /// `REBERT_TEST_PANIC=1` *and* the request carries an
    /// `x-rebert-test-panic` header. The executor panics mid-job, which
    /// is how the poison-recovery integration test proves a panicking
    /// recovery answers 500 instead of wedging every later request.
    test_panic: bool,
}

/// State shared by the accept loop, connection threads, the executor,
/// and the owning [`Server`] handle.
struct Shared {
    queue: Bounded<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
    config: ServeConfig,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Always-on bounded trace ring, drained by `GET /debug/trace`.
    trace: Arc<RingSink>,
    /// Live broadcast tap: `POST /recover/stream` connections subscribe
    /// per-request queues filtered by their request id.
    tap: Arc<obs::TapSink>,
    /// Resident models: name → current version, atomically hot-swappable.
    registry: Arc<ModelRegistry>,
    /// Per-tenant token buckets (`None` = quotas off).
    quotas: Option<TenantQuotas>,
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`])
/// drains in-flight work and stops every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    executor_thread: Option<JoinHandle<()>>,
    trace_sink: Option<obs::SinkId>,
    tap_sink: Option<obs::SinkId>,
}

/// Starts serving `session` on `listener` as the single resident model
/// (registered under [`DEFAULT_MODEL`]). The listener is switched to
/// non-blocking so the accept loop can observe shutdown requests.
///
/// This is the single-model convenience wrapper over
/// [`serve_registry`]: the session is adopted into a fresh registry
/// (int8 view warmed, per-fingerprint score cache attached per the
/// config), and further models can still be hot-loaded at runtime via
/// `POST /models/{name}/load`.
///
/// # Errors
///
/// Returns the [`std::io::Error`] if the listener cannot be configured.
pub fn serve(
    session: RecoverySession,
    listener: TcpListener,
    config: ServeConfig,
) -> std::io::Result<Server> {
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        threads: session.threads(),
        cache_bytes: config.cache_bytes,
        cache_dir: config.cache_dir.clone(),
    }));
    // The initial model persists its cache at the explicit `cache_path`
    // when given, else under `cache_dir` keyed by fingerprint (the same
    // scheme hot-loaded models use). The fingerprint keys both the
    // cache entries and the persisted file, so a re-trained checkpoint
    // can never be served stale scores.
    let cache_path = config.cache_path.clone().or_else(|| {
        config.cache_dir.as_ref().map(|d| {
            d.join(ModelRegistry::cache_file_name(
                &session.model().fingerprint_hex(),
            ))
        })
    });
    registry.adopt(DEFAULT_MODEL, session, cache_path);
    serve_registry(registry, listener, config)
}

/// Starts serving every model resident in `registry` on `listener`.
/// Requests pick a model with `X-Rebert-Model` (default: the first
/// installed name); `POST /models/{name}/load` publishes new versions
/// with an atomic hot swap while in-flight requests finish on the
/// version they pinned.
///
/// # Errors
///
/// Returns the [`std::io::Error`] if the listener cannot be configured.
pub fn serve_registry(
    registry: Arc<ModelRegistry>,
    listener: TcpListener,
    config: ServeConfig,
) -> std::io::Result<Server> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let quotas = config.tenant_quota.map(TenantQuotas::new);
    let trace = Arc::new(RingSink::new(config.trace_capacity, config.trace_level));
    // The tap taps at Debug regardless of the ring level: the scoring
    // percent comes from the scorer's Debug-level batch claims. With no
    // subscriber its record path is one uncontended try_lock.
    let tap = Arc::new(obs::TapSink::new(obs::Level::Debug));
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_capacity),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        config,
        conns: Mutex::new(Vec::new(), "serve.server.conns"),
        trace: Arc::clone(&trace),
        tap: Arc::clone(&tap),
        registry,
        quotas,
    });
    for resident in shared.registry.list() {
        shared.metrics.set_model_info(
            resident.name(),
            resident.version(),
            resident.fingerprint_hex(),
        );
    }
    observe_registry(&shared.metrics, &shared.registry);
    // The ring records every request for `GET /debug/trace`; it is
    // uninstalled (narrowing the global gate back) when the server stops.
    let trace_sink = obs::install(trace);
    let tap_sink = obs::install(tap);
    // A lock-order violation detected anywhere in the process (debug
    // builds / REBERT_SYNC_CHECK=1) lands in the daemon's own error log
    // with both acquisition paths before the offending thread panics.
    rebert_sync::set_report_hook(|report| obs::error!("sync", "{report}"));

    let executor_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rebert-executor".into())
            .spawn(move || executor_loop(&shared))?
    };
    let accept_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rebert-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(Server {
        shared,
        addr,
        accept_thread: Some(accept_thread),
        executor_thread: Some(executor_thread),
        trace_sink: Some(trace_sink),
        tap_sink: Some(tap_sink),
    })
}

/// Refreshes the aggregate score-cache gauges from every resident model
/// (swapped-out versions stop counting the moment they leave the slot).
fn observe_registry(metrics: &Metrics, registry: &ModelRegistry) {
    let (mut entries, mut bytes, mut evictions) = (0u64, 0u64, 0u64);
    for resident in registry.list() {
        if let Some(cache) = resident.cache() {
            entries += cache.len() as u64;
            bytes += cache.bytes() as u64;
            evictions += cache.evictions();
        }
    }
    metrics.cache_entries.set(entries);
    metrics.cache_bytes.set(bytes);
    metrics.cache_evictions.set(evictions);
}

impl Server {
    /// The bound address (useful with an ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The daemon's model registry (shared with the serving threads, so
    /// installs through this handle hot-swap live traffic).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Whether a shutdown was requested (signal handler, `POST
    /// /shutdown`, or [`Server::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flags the daemon to shut down without blocking; follow with
    /// [`Server::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, let queued jobs drain through
    /// the executor, answer every in-flight connection, and join all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // New pushes now fail Closed; queued jobs still drain.
        self.shared.queue.close();
        if let Some(t) = self.executor_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for c in conns {
            let _ = c.join();
        }
        if let Some(id) = self.trace_sink.take() {
            obs::uninstall(id);
        }
        if let Some(id) = self.tap_sink.take() {
            obs::uninstall(id);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pops jobs until the queue closes and drains; replies on each job's
/// channel. Each job runs on the resident version it pinned at
/// admission, so a hot swap mid-queue cannot mix models. A cancelled
/// recovery leaves the session warm and reusable. Persistent caches are
/// rewritten every `cache_flush_every` completed recoveries and once
/// more after the queue drains, so a SIGTERM'd daemon restarts warm;
/// swapped-out versions are reaped here (cache flushed, memory dropped)
/// as soon as their last in-flight handle is this executor's.
fn executor_loop(shared: &Shared) {
    let mut completed = 0usize;
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        shared.metrics.inflight.inc();
        // Every connection thread blocks on `rx.recv()`, so an executor
        // that dies mid-panic would turn each later request into a
        // forever-hang. Catch the panic instead: dropping the job drops
        // its reply sender, the waiting client's `recv()` fails into the
        // 500 path, and the loop keeps consuming the queue.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, job, &mut completed);
        }));
        shared.metrics.inflight.dec();
        if ran.is_err() {
            obs::error!(
                "serve",
                "recovery panicked; job dropped (client gets 500), executor continues"
            );
        }
        shared.registry.reap();
    }
    // Shutdown: flush every resident and still-draining retired cache.
    shared.registry.flush_all();
}

/// Runs one queued recovery to completion and replies on its channel.
/// Runs under the executor's `catch_unwind`: a panic anywhere in here
/// drops `job` (failing the client's `recv()` into a 500) without
/// taking the executor thread down.
fn execute_job(shared: &Shared, job: Job, completed: &mut usize) {
    // Streaming jobs ship their own token (the connection thread holds
    // a clone and cancels it when the client disconnects); everyone
    // else gets a fresh one carrying just the deadline.
    let token = match &job.cancel {
        Some(t) => t.clone(),
        None => match job.deadline {
            Some(d) => CancelToken::with_deadline_at(d),
            None => CancelToken::new(),
        },
    };
    // Adopt the request's context: the pipeline's `recover` span (and
    // everything under it) parents under the request's root span and
    // carries its `request_id` field, even though it runs over here.
    let _tracing = obs::enter_ctx(&job.trace);
    if job.test_panic {
        panic!("panic injected by x-rebert-test-panic (REBERT_TEST_PANIC=1)");
    }
    let result = job
        .resident
        .try_recover_opts(&job.netlist, &token, job.backend, job.use_cache);
    match &result {
        Ok(rec) => {
            shared.metrics.record_recovery(&rec.stats);
            *completed += 1;
        }
        Err(Cancelled) => shared.metrics.deadline_total.inc(),
    }
    observe_registry(&shared.metrics, &shared.registry);
    let every = shared.config.cache_flush_every;
    if every > 0 && *completed > 0 && completed.is_multiple_of(every) {
        if let Err(e) = job.resident.flush_cache() {
            obs::warn!("serve", "periodic cache flush failed: {e}");
        }
    }
    // A send error just means the client hung up; the work is done
    // either way.
    let _ = job.reply.send(result);
    // Retire versions whose in-flight work just drained. `job` still
    // holds its resident here, so the drop below is what lets the
    // caller's `reap` reclaim it after a swap.
    drop(job);
}

/// Accepts connections until shutdown, one short-lived thread each.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared_for_conn = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("rebert-conn".into())
                    .spawn(move || handle_connection(stream, &shared_for_conn));
                let mut conns = shared.conns.lock();
                conns.retain(|c| !c.is_finished());
                if let Ok(h) = handle {
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                // Transient accept failure (e.g. aborted handshake).
                obs::warn!("serve", "accept error: {e}");
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Allocates a process-unique request id, `req-{pid:x}-{counter}`.
fn next_request_id() -> String {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!(
        "req-{:x}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    )
}

/// Maps a response status to the outcome label used by the metrics, so
/// the `request_done` trace event and the counters agree.
fn outcome_label(status: u16) -> &'static str {
    match status {
        200 => "ok",
        400 | 405 | 413 => "bad_request",
        404 => "not_found",
        422 => "lint_rejected",
        429 => "throttled",
        503 => "rejected",
        504 => "deadline",
        500 => "error",
        _ => "other",
    }
}

/// The per-endpoint label the request-duration histograms key on. A
/// closed vocabulary (never the raw path) so an URL-scanning client
/// cannot explode label cardinality.
fn endpoint_of(path: &str) -> &'static str {
    match path {
        "/recover" => "recover",
        "/recover/stream" => "stream",
        "/batch" => "batch",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/debug/trace" => "trace",
        "/debug/stats" => "stats",
        "/shutdown" => "shutdown",
        "/" => "dashboard",
        p if p.starts_with("/models") => "models",
        _ => "other",
    }
}

/// Whether a client-supplied `X-Rebert-Request-Id` is safe to adopt:
/// short, printable, header- and JSON-safe. Anything else keeps the
/// server-generated id.
fn valid_request_id(id: &str) -> bool {
    (1..=64).contains(&id.len())
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

/// Serves exactly one request on `stream` and closes it.
///
/// Every answered request gets an `X-Rebert-Request-Id` header and a
/// root `serve/request` span whose `request_id` field matches it; child
/// spans (including the executor-side recovery) inherit the id as a
/// context field.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let arrival = Instant::now();
    let _ = stream.set_nodelay(true);
    let mut request_id = next_request_id();
    let response = match read_request(&mut BufReader::new(&stream)) {
        Ok(None) => return, // clean pre-request hang-up
        Ok(Some(req)) => {
            // Adopt a sane client-supplied id, so 4xx/5xx answers (404
            // unknown model, 429 quota, ...) correlate with the caller's
            // own logs and `GET /debug/trace`.
            if let Some(id) = req.header("x-rebert-request-id") {
                if valid_request_id(id) {
                    request_id = id.to_owned();
                }
            }
            let mut root = obs::span_with(
                obs::Level::Info,
                "serve",
                "request",
                vec![
                    ("request_id", request_id.clone().into()),
                    ("method", req.method.clone().into()),
                    ("path", req.path().to_owned().into()),
                ],
            );
            let ctx = obs::TraceCtx::default().with_field("request_id", request_id.clone());
            let ctx_guard = obs::enter_ctx(&ctx);
            // `POST /batch` and `POST /recover/stream` stream their
            // NDJSON responses themselves (no Content-Length;
            // close-delimited), so they get the raw stream. Everything
            // else goes through `route`.
            let streamed = if req.method == "POST" && req.path() == "/batch" {
                Some(handle_batch(&req, &stream, shared, &request_id))
            } else if req.method == "POST" && req.path() == "/recover/stream" {
                Some(handle_recover_stream(
                    &req,
                    &stream,
                    shared,
                    &request_id,
                    arrival,
                ))
            } else {
                None
            };
            let response = match streamed {
                Some(BatchOutcome::Reply(resp)) => Some(resp),
                Some(BatchOutcome::Streamed(status)) => {
                    obs::event_with(
                        obs::Level::Info,
                        "serve",
                        "request_done",
                        vec![
                            ("status", u64::from(status).into()),
                            ("outcome", outcome_label(status).into()),
                        ],
                    );
                    root.add_field("status", u64::from(status));
                    None
                }
                None => Some(route(&req, arrival, shared)),
            };
            // Wall-clock duration lands on the per-endpoint (and, where
            // a model is involved, per-resident-model) histogram for
            // every parsed request, streamed or not.
            {
                let endpoint = endpoint_of(req.path());
                let model = match endpoint {
                    "recover" | "stream" | "batch" => shared
                        .registry
                        .resolve(req.header("x-rebert-model"))
                        .map(|r| r.name().to_owned()),
                    _ => None,
                };
                shared.metrics.observe_request_duration(
                    endpoint,
                    model.as_deref(),
                    arrival.elapsed(),
                );
            }
            match response {
                Some(response) => {
                    obs::event_with(
                        obs::Level::Info,
                        "serve",
                        "request_done",
                        vec![
                            ("status", u64::from(response.status).into()),
                            ("outcome", outcome_label(response.status).into()),
                        ],
                    );
                    root.add_field("status", u64::from(response.status));
                    drop(ctx_guard);
                    root.end();
                    response
                }
                None => {
                    drop(ctx_guard);
                    root.end();
                    return; // batch already wrote the wire bytes
                }
            }
        }
        Err(HttpError::Io(_)) => return, // client died mid-request
        Err(HttpError::Malformed(m)) => {
            shared.metrics.count_request("other", "bad_request");
            error_response(400, &format!("malformed request: {m}"))
        }
        Err(HttpError::TooLarge(what)) => {
            shared.metrics.count_request("other", "bad_request");
            error_response(413, &format!("request {what} too large"))
        }
    };
    let mut stream = stream;
    let _ = response
        .header("X-Rebert-Request-Id", &request_id)
        .write_to(&mut stream);
}

/// A JSON `{"error": …}` body with the given status.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![("error".into(), Json::str(message))]),
    )
}

/// Dispatches one parsed request.
fn route(req: &Request, arrival: Instant, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz", "ok");
            Response::text(200, "ok\n")
        }
        ("GET", "/metrics") => {
            shared.metrics.queue_depth.set(shared.queue.len() as u64);
            shared
                .metrics
                .trace_dropped
                .set(shared.trace.dropped_events());
            observe_registry(&shared.metrics, &shared.registry);
            shared.metrics.count_request("metrics", "ok");
            let body = shared.metrics.render();
            Response {
                status: 200,
                headers: vec![(
                    "Content-Type".into(),
                    "text/plain; version=0.0.4; charset=utf-8".into(),
                )],
                body: body.into_bytes(),
            }
        }
        ("GET", "/debug/trace") => {
            shared.metrics.count_request("trace", "ok");
            handle_debug_trace(req, shared)
        }
        ("GET", "/debug/stats") => {
            shared.metrics.count_request("stats", "ok");
            handle_debug_stats(shared)
        }
        ("GET", "/") if shared.config.web => {
            shared.metrics.count_request("dashboard", "ok");
            Response {
                status: 200,
                headers: vec![("Content-Type".into(), "text/html; charset=utf-8".into())],
                body: crate::web::DASHBOARD_HTML.as_bytes().to_vec(),
            }
        }
        ("POST", "/recover") => handle_recover(req, arrival, shared),
        ("GET", "/models") => {
            shared.metrics.count_request("models", "ok");
            handle_models_list(shared)
        }
        ("POST", "/shutdown") => {
            shared.metrics.count_request("shutdown", "ok");
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::text(200, "draining\n")
        }
        ("POST", path)
            if path
                .strip_prefix("/models/")
                .and_then(|rest| rest.strip_suffix("/load"))
                .is_some() =>
        {
            let name = path
                .strip_prefix("/models/")
                .and_then(|rest| rest.strip_suffix("/load"))
                .unwrap_or_default();
            handle_model_load(req, name, shared)
        }
        (
            _,
            "/healthz" | "/metrics" | "/recover" | "/recover/stream" | "/shutdown" | "/debug/trace"
            | "/debug/stats" | "/models" | "/batch",
        ) => {
            shared.metrics.count_request("other", "bad_request");
            error_response(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => {
            shared.metrics.count_request("other", "not_found");
            error_response(404, &format!("no such endpoint: {path}"))
        }
    }
}

/// `GET /models`: every resident model's identity and serving stats.
fn handle_models_list(shared: &Shared) -> Response {
    let models = Json::Arr(
        shared
            .registry
            .list()
            .into_iter()
            .map(|resident| {
                let served = Json::Obj(
                    Backend::ALL
                        .iter()
                        .map(|&b| (b.label().to_owned(), Json::uint(resident.served(b))))
                        .collect(),
                );
                let mut fields = vec![
                    ("name".to_owned(), Json::str(resident.name())),
                    ("version".to_owned(), Json::uint(resident.version())),
                    (
                        "fingerprint".to_owned(),
                        Json::str(resident.fingerprint_hex()),
                    ),
                    (
                        "served_total".to_owned(),
                        Json::uint(resident.served_total()),
                    ),
                    ("served".to_owned(), served),
                ];
                if let Some(cache) = resident.cache() {
                    fields.push((
                        "cache".to_owned(),
                        Json::Obj(vec![
                            ("entries".to_owned(), Json::uint(cache.len() as u64)),
                            ("bytes".to_owned(), Json::uint(cache.bytes() as u64)),
                            ("hits".to_owned(), Json::uint(cache.hits())),
                            ("misses".to_owned(), Json::uint(cache.misses())),
                        ]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect(),
    );
    Response::json(
        200,
        &Json::Obj(vec![
            ("models".to_owned(), models),
            (
                "retired_draining".to_owned(),
                Json::uint(shared.registry.retired_len() as u64),
            ),
        ]),
    )
}

/// `POST /models/{name}/load`: loads a checkpoint from the daemon's
/// filesystem (JSON body `{"path": "..."}`) and publishes it under
/// `name` with an atomic hot swap. In-flight requests finish on the old
/// version; it retires once drained.
fn handle_model_load(req: &Request, name: &str, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.count_request("models", "rejected");
        return error_response(503, "daemon is shutting down").header("Retry-After", "5");
    }
    if !valid_request_id(name) {
        // Model names share the request-id charset rules: short,
        // printable, header- and JSON-safe.
        shared.metrics.count_request("models", "bad_request");
        return error_response(400, "model name must be 1-64 chars of [A-Za-z0-9._:-]");
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.count_request("models", "bad_request");
            return error_response(400, "load body is not valid utf-8");
        }
    };
    let path = match Json::parse(body)
        .ok()
        .as_ref()
        .and_then(|j| j.get("path"))
        .and_then(Json::as_str)
        .map(str::to_owned)
    {
        Some(p) => p,
        None => {
            shared.metrics.count_request("models", "bad_request");
            return error_response(400, "load body must be `{\"path\": \"<checkpoint>\"}`");
        }
    };
    let started = Instant::now();
    let model = match rebert::load_model(&path) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.count_request("models", "bad_request");
            return error_response(400, &format!("cannot load checkpoint `{path}`: {e}"));
        }
    };
    let resident = shared.registry.install(name, model);
    shared.metrics.set_model_info(
        resident.name(),
        resident.version(),
        resident.fingerprint_hex(),
    );
    observe_registry(&shared.metrics, &shared.registry);
    shared.metrics.count_request("models", "ok");
    let swap_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    Response::json(
        200,
        &Json::Obj(vec![
            ("name".to_owned(), Json::str(resident.name())),
            ("version".to_owned(), Json::uint(resident.version())),
            (
                "fingerprint".to_owned(),
                Json::str(resident.fingerprint_hex()),
            ),
            ("swap_us".to_owned(), Json::uint(swap_us)),
        ]),
    )
}

/// Extracts one query parameter from a request target. No
/// percent-decoding: every value we accept this way (request ids) is
/// already restricted to a URL-safe charset.
fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = target.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// `GET /debug/trace[?request_id=...]`: drains the trace ring as
/// NDJSON. The first line is a meta object (`drained`,
/// `dropped_events`); every following line is one trace record. With
/// `request_id`, only records whose context fields carry that id are
/// returned (the rest still drain — they are counted as
/// `filtered_out`). Draining is destructive — each record is reported
/// at most once across successive calls.
fn handle_debug_trace(req: &Request, shared: &Shared) -> Response {
    let want = query_param(&req.target, "request_id");
    let mut records = shared.trace.drain();
    let total = records.len();
    if let Some(id) = want {
        records.retain(|rec| {
            rec.fields
                .iter()
                .any(|(k, v)| *k == "request_id" && matches!(v, obs::Value::Str(s) if s == id))
        });
    }
    let dropped = shared.trace.dropped_events();
    shared.metrics.trace_dropped.set(dropped);
    let mut meta = vec![
        ("drained".to_owned(), Json::uint(records.len() as u64)),
        ("dropped_events".to_owned(), Json::uint(dropped)),
    ];
    if let Some(id) = want {
        meta.push(("request_id".to_owned(), Json::str(id)));
        meta.push((
            "filtered_out".to_owned(),
            Json::uint((total - records.len()) as u64),
        ));
    }
    let mut body = Json::Obj(meta).to_string();
    body.push('\n');
    for rec in &records {
        body.push_str(&obs::record_json(rec).to_string());
        body.push('\n');
    }
    Response {
        status: 200,
        headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
        body: body.into_bytes(),
    }
}

/// `GET /debug/stats`: one JSON snapshot of the numbers an operator
/// watches — queue, cache, latency quantiles, per-backend and per-model
/// throughput. This is the dashboard's data feed; everything here is
/// also exposed in Prometheus form at `/metrics`.
fn handle_debug_stats(shared: &Shared) -> Response {
    let m = &shared.metrics;
    m.queue_depth.set(shared.queue.len() as u64);
    m.trace_dropped.set(shared.trace.dropped_events());
    observe_registry(m, &shared.registry);

    let hits = m.cache_hits_total.get();
    let misses = m.cache_misses_total.get();
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let cache = Json::Obj(vec![
        ("hits".into(), Json::uint(hits)),
        ("misses".into(), Json::uint(misses)),
        ("hit_rate".into(), Json::num(hit_rate)),
        ("entries".into(), Json::uint(m.cache_entries.get())),
        ("bytes".into(), Json::uint(m.cache_bytes.get())),
        ("evictions".into(), Json::uint(m.cache_evictions.get())),
    ]);
    let trace = Json::Obj(vec![
        ("buffered".into(), Json::uint(shared.trace.len() as u64)),
        ("dropped".into(), Json::uint(shared.trace.dropped_events())),
    ]);
    let phases = Json::Arr(
        crate::metrics::PHASES
            .iter()
            .filter_map(|&phase| {
                let h = m.phase_histogram(phase)?;
                Some(Json::Obj(vec![
                    ("phase".into(), Json::str(phase)),
                    ("count".into(), Json::uint(h.count())),
                    ("p50".into(), Json::num(h.quantile(0.5))),
                    ("p95".into(), Json::num(h.quantile(0.95))),
                    ("p99".into(), Json::num(h.quantile(0.99))),
                ]))
            })
            .collect(),
    );
    let endpoints = Json::Arr(
        m.request_duration_stats()
            .into_iter()
            .map(|s| {
                let mut fields = vec![("endpoint".to_owned(), Json::str(s.endpoint))];
                if !s.model.is_empty() {
                    fields.push(("model".to_owned(), Json::str(&s.model)));
                }
                fields.extend([
                    ("count".to_owned(), Json::uint(s.count)),
                    ("p50".to_owned(), Json::num(s.quantiles[0])),
                    ("p95".to_owned(), Json::num(s.quantiles[1])),
                    ("p99".to_owned(), Json::num(s.quantiles[2])),
                ]);
                Json::Obj(fields)
            })
            .collect(),
    );
    let backends = Json::Arr(
        Backend::ALL
            .iter()
            .map(|&b| {
                Json::Obj(vec![
                    ("backend".into(), Json::str(b.label())),
                    ("requests".into(), Json::uint(m.backend_request_count(b))),
                    (
                        "pairs_per_sec".into(),
                        Json::num(m.backend_pairs_per_sec(b)),
                    ),
                ])
            })
            .collect(),
    );
    let models = Json::Arr(
        shared
            .registry
            .list()
            .into_iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::str(r.name())),
                    ("version".into(), Json::uint(r.version())),
                    ("fingerprint".into(), Json::str(r.fingerprint_hex())),
                    ("served_total".into(), Json::uint(r.served_total())),
                ])
            })
            .collect(),
    );
    Response::json(
        200,
        &Json::Obj(vec![
            ("queue_depth".into(), Json::uint(shared.queue.len() as u64)),
            (
                "queue_capacity".into(),
                Json::uint(shared.queue.capacity() as u64),
            ),
            ("inflight".into(), Json::uint(m.inflight.get())),
            (
                "pairs_scored_total".into(),
                Json::uint(m.pairs_scored_total.get()),
            ),
            ("pairs_per_sec".into(), Json::num(m.last_pairs_per_sec())),
            ("rejected_total".into(), Json::uint(m.rejected_total.get())),
            ("deadline_total".into(), Json::uint(m.deadline_total.get())),
            (
                "throttled_total".into(),
                Json::uint(m.throttled_total.get()),
            ),
            ("cache".into(), cache),
            ("trace".into(), trace),
            ("phases".into(), phases),
            ("endpoints".into(), endpoints),
            ("backends".into(), backends),
            ("models".into(), models),
        ]),
    )
}

/// Whether a netlist body looks like Verilog rather than `.bench`.
/// Used only when the client does not say via `X-Rebert-Format`.
fn sniff_verilog(body: &str) -> bool {
    body.lines()
        .map(str::trim_start)
        .any(|l| l.starts_with("module ") || l.starts_with("module\t"))
}

/// The tenant a request bills against: the `X-Rebert-Tenant` header,
/// with anonymous traffic pooled in one shared bucket.
fn tenant_of(req: &Request) -> &str {
    req.header("x-rebert-tenant").unwrap_or("anonymous")
}

/// Whether this request asked the executor to panic on purpose. Doubly
/// gated: the daemon must run with `REBERT_TEST_PANIC=1` *and* the
/// request must carry `x-rebert-test-panic`, so no production client
/// can trip it by accident.
fn test_panic_requested(req: &Request) -> bool {
    req.header("x-rebert-test-panic").is_some()
        && std::env::var("REBERT_TEST_PANIC").as_deref() == Ok("1")
}

/// Checks the per-tenant token bucket (when quotas are on). `Err` is
/// the ready-to-send 429 with `Retry-After`, already counted.
fn check_quota(req: &Request, endpoint: &'static str, shared: &Shared) -> Result<(), Response> {
    let Some(quotas) = &shared.quotas else {
        return Ok(());
    };
    let tenant = tenant_of(req);
    match quotas.try_acquire(tenant) {
        Ok(()) => Ok(()),
        Err(wait) => {
            shared.metrics.throttled_total.inc();
            shared.metrics.count_request(endpoint, "throttled");
            shared.metrics.count_tenant(tenant, "throttled");
            let retry_secs = wait.as_secs_f64().ceil().max(1.0) as u64;
            Err(
                error_response(429, &format!("tenant `{tenant}` is over its request quota"))
                    .header("Retry-After", retry_secs.to_string()),
            )
        }
    }
}

/// Resolves the request's model: the `X-Rebert-Model` header, or the
/// registry default when absent. `Err` is the 404 listing what *is*
/// resident, already counted against `endpoint`.
fn resolve_model(
    req: &Request,
    endpoint: &'static str,
    shared: &Shared,
) -> Result<Arc<ResidentModel>, Response> {
    let name = req.header("x-rebert-model");
    match shared.registry.resolve(name) {
        Some(resident) => Ok(resident),
        None => {
            shared.metrics.count_request(endpoint, "not_found");
            let resident_names = Json::Arr(
                shared
                    .registry
                    .names()
                    .into_iter()
                    .map(|n| Json::str(&n))
                    .collect(),
            );
            Err(Response::json(
                404,
                &Json::Obj(vec![
                    (
                        "error".to_owned(),
                        Json::str(format!(
                            "no resident model named `{}`",
                            name.unwrap_or("<default>")
                        )),
                    ),
                    ("resident".to_owned(), resident_names),
                ]),
            ))
        }
    }
}

/// Parses one netlist body per the explicit `X-Rebert-Format` value
/// (`bench`/`verilog`), sniffing the dialect when absent.
fn parse_netlist(name: &str, body: &str, format: Option<&str>) -> Result<Netlist, String> {
    match format {
        Some("bench") => parse_bench(name, body).map_err(|e| e.to_string()),
        Some("verilog") => parse_verilog(name, body).map_err(|e| e.to_string()),
        Some(other) => Err(format!(
            "unknown X-Rebert-Format `{other}` (expected `bench` or `verilog`)"
        )),
        None if sniff_verilog(body) => parse_verilog(name, body).map_err(|e| e.to_string()),
        None => parse_bench(name, body).map_err(|e| e.to_string()),
    }
}

/// `POST /recover`: quota gate, then parse, enqueue with backpressure,
/// and await the verdict. Tenant-level outcome accounting wraps the
/// whole thing (only when quotas are on — without them tenants are not
/// distinguished).
fn handle_recover(req: &Request, arrival: Instant, shared: &Shared) -> Response {
    if let Err(throttled) = check_quota(req, "recover", shared) {
        return throttled;
    }
    let response = handle_recover_inner(req, arrival, shared);
    if shared.quotas.is_some() {
        shared
            .metrics
            .count_tenant(tenant_of(req), outcome_label(response.status));
    }
    response
}

/// [`handle_recover`] past the quota gate.
fn handle_recover_inner(req: &Request, arrival: Instant, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.rejected_total.inc();
        shared.metrics.count_request("recover", "rejected");
        return error_response(503, "daemon is shutting down").header("Retry-After", "5");
    }
    let resident = match resolve_model(req, "recover", shared) {
        Ok(r) => r,
        Err(resp) => return resp,
    };

    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.count_request("recover", "bad_request");
            return error_response(400, "netlist body is not valid utf-8");
        }
    };
    let netlist = match parse_netlist("request", body, req.header("x-rebert-format")) {
        Ok(nl) => Arc::new(nl),
        Err(msg) => {
            shared.metrics.count_request("recover", "bad_request");
            return error_response(400, &msg);
        }
    };

    // Pre-flight: recovery on a structurally broken netlist produces
    // garbage words with no hint of why, so hard lint errors are
    // answered up front with the full diagnostics instead. Warnings
    // (dead logic, foldable constants, ...) do not block; they come
    // back in the success payload.
    let preflight = rebert_analyze::lint_netlist(&netlist);
    if preflight.has_errors() {
        shared.metrics.count_request("recover", "lint_rejected");
        let report = preflight.to_json();
        let mut fields = vec![(
            "error".to_owned(),
            Json::str("netlist failed lint pre-flight; see diagnostics"),
        )];
        if let Json::Obj(inner) = report {
            fields.extend(inner);
        }
        return Response::json(422, &Json::Obj(fields));
    }

    let backend = match req.header("x-rebert-precision") {
        Some(raw) => match Backend::parse(raw) {
            Some(b) => b,
            None => {
                shared.metrics.count_request("recover", "bad_request");
                return error_response(
                    400,
                    &format!(
                        "unknown X-Rebert-Precision `{raw}` (expected `f32`, `f32-simd`, or `int8`)"
                    ),
                );
            }
        },
        None => Backend::F32Scalar,
    };

    let deadline = match req.header("x-rebert-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(arrival + Duration::from_millis(ms)),
            Err(_) => {
                shared.metrics.count_request("recover", "bad_request");
                return error_response(400, &format!("bad X-Rebert-Deadline-Ms `{raw}`"));
            }
        },
        None => shared.config.default_deadline.map(|d| arrival + d),
    };

    // Any `X-Rebert-No-Cache` value opts this request out of the shared
    // score cache — useful for A/B-ing cache correctness in production
    // and for benchmarking cold-path latency against a warm daemon.
    let use_cache = req.header("x-rebert-no-cache").is_none();

    let (tx, rx) = mpsc::channel();
    let fingerprint_hex = resident.fingerprint_hex().to_owned();
    let job = Job {
        netlist: Arc::clone(&netlist),
        resident,
        deadline,
        cancel: None,
        backend,
        use_cache,
        reply: tx,
        trace: obs::current_ctx(),
        test_panic: test_panic_requested(req),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("recover", "rejected");
            return error_response(503, "recovery queue is full, retry shortly")
                .header("Retry-After", "1");
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("recover", "rejected");
            return error_response(503, "daemon is shutting down").header("Retry-After", "5");
        }
    }
    shared.metrics.queue_depth.set(shared.queue.len() as u64);

    match rx.recv() {
        Ok(Ok(rec)) => {
            shared.metrics.count_request("recover", "ok");
            Response::json(200, &recovery_json(&netlist, &rec, &fingerprint_hex))
        }
        Ok(Err(Cancelled)) => {
            shared.metrics.count_request("recover", "deadline");
            error_response(504, "recovery deadline exceeded")
        }
        Err(_) => {
            // The reply sender was dropped without an answer: either a
            // mid-shutdown race, or the recovery panicked and the
            // executor dropped the job to stay alive.
            shared.metrics.count_request("recover", "error");
            error_response(500, "executor unavailable")
        }
    }
}

/// Most netlists accepted in one `POST /batch` archive.
const MAX_BATCH_ENTRIES: usize = 1024;

/// How a batch request was answered: a conventional pre-stream reply
/// (error before any result was produced), or a streamed NDJSON body
/// already written to the socket.
enum BatchOutcome {
    Reply(Response),
    Streamed(u16),
}

/// Parses the `POST /batch` archive: a sequence of entries, each a
/// header line `<len> <name>\n` followed by exactly `len` bytes of
/// netlist text and an optional separator newline.
fn parse_batch_archive(body: &[u8]) -> Result<Vec<(String, String)>, String> {
    let mut entries = Vec::new();
    let mut at = 0usize;
    while at < body.len() {
        let line_end = body[at..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| format!("entry {}: missing header line", entries.len()))?;
        let header = std::str::from_utf8(&body[at..at + line_end])
            .map_err(|_| format!("entry {}: header is not utf-8", entries.len()))?
            .trim_end_matches('\r');
        at += line_end + 1;
        if header.is_empty() {
            continue; // tolerate blank lines between entries
        }
        let (len_text, name) = header
            .split_once(' ')
            .ok_or_else(|| format!("entry {}: header must be `<len> <name>`", entries.len()))?;
        let len: usize = len_text
            .parse()
            .map_err(|_| format!("entry {}: bad length `{len_text}`", entries.len()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("entry {}: empty name", entries.len()));
        }
        if at + len > body.len() {
            return Err(format!(
                "entry {} (`{name}`): length {len} overruns the archive",
                entries.len()
            ));
        }
        let text = std::str::from_utf8(&body[at..at + len])
            .map_err(|_| format!("entry {} (`{name}`): netlist is not utf-8", entries.len()))?
            .to_owned();
        at += len;
        if body.get(at) == Some(&b'\n') {
            at += 1; // the optional separator
        }
        entries.push((name.to_owned(), text));
        if entries.len() > MAX_BATCH_ENTRIES {
            return Err(format!("archive exceeds {MAX_BATCH_ENTRIES} entries"));
        }
    }
    Ok(entries)
}

/// One NDJSON failure record for a batch entry.
fn batch_error_record(index: usize, name: &str, error: &str) -> Json {
    Json::Obj(vec![
        ("index".to_owned(), Json::uint(index as u64)),
        ("name".to_owned(), Json::str(name)),
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::str(error)),
    ])
}

/// `POST /batch`: a length-prefixed archive of netlists in, one NDJSON
/// result record per netlist out, streamed as each recovery completes
/// (the response has no `Content-Length`; it is close-delimited). One
/// quota token covers the whole batch. Per-entry parse/lint failures
/// become failure records, not HTTP errors — the stream keeps going.
fn handle_batch(
    req: &Request,
    mut stream: &TcpStream,
    shared: &Shared,
    request_id: &str,
) -> BatchOutcome {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.rejected_total.inc();
        shared.metrics.count_request("batch", "rejected");
        return BatchOutcome::Reply(
            error_response(503, "daemon is shutting down").header("Retry-After", "5"),
        );
    }
    if let Err(throttled) = check_quota(req, "batch", shared) {
        return BatchOutcome::Reply(throttled);
    }
    let resident = match resolve_model(req, "batch", shared) {
        Ok(r) => r,
        Err(resp) => return BatchOutcome::Reply(resp),
    };
    let entries = match parse_batch_archive(&req.body) {
        Ok(e) if e.is_empty() => {
            shared.metrics.count_request("batch", "bad_request");
            return BatchOutcome::Reply(error_response(400, "empty batch archive"));
        }
        Ok(e) => e,
        Err(msg) => {
            shared.metrics.count_request("batch", "bad_request");
            return BatchOutcome::Reply(error_response(400, &format!("bad batch archive: {msg}")));
        }
    };
    let backend = match req.header("x-rebert-precision") {
        Some(raw) => match Backend::parse(raw) {
            Some(b) => b,
            None => {
                shared.metrics.count_request("batch", "bad_request");
                return BatchOutcome::Reply(error_response(
                    400,
                    &format!(
                        "unknown X-Rebert-Precision `{raw}` (expected `f32`, `f32-simd`, or `int8`)"
                    ),
                ));
            }
        },
        None => Backend::F32Scalar,
    };
    let per_entry_deadline = match req.header("x-rebert-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                shared.metrics.count_request("batch", "bad_request");
                return BatchOutcome::Reply(error_response(
                    400,
                    &format!("bad X-Rebert-Deadline-Ms `{raw}`"),
                ));
            }
        },
        None => shared.config.default_deadline,
    };
    let use_cache = req.header("x-rebert-no-cache").is_none();
    let fingerprint_hex = resident.fingerprint_hex().to_owned();

    // Point of no return: from here failures are per-record, inside the
    // stream.
    let head = format!(
        "HTTP/1.1 200 {}\r\nContent-Type: application/x-ndjson\r\nX-Rebert-Request-Id: {request_id}\r\nConnection: close\r\n\r\n",
        reason(200)
    );
    if stream.write_all(head.as_bytes()).is_err() {
        shared.metrics.count_request("batch", "error");
        return BatchOutcome::Streamed(200); // client is gone; nothing to salvage
    }

    let mut write_record = |record: &Json| -> bool {
        let mut line = record.to_string();
        line.push('\n');
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.flush())
            .is_ok()
    };

    for (index, (name, text)) in entries.iter().enumerate() {
        shared.metrics.batch_netlists_total.inc();
        let netlist = match parse_netlist(name, text, req.header("x-rebert-format")) {
            Ok(nl) => Arc::new(nl),
            Err(msg) => {
                if !write_record(&batch_error_record(index, name, &msg)) {
                    break;
                }
                continue;
            }
        };
        let preflight = rebert_analyze::lint_netlist(&netlist);
        if preflight.has_errors() {
            let record = batch_error_record(index, name, "netlist failed lint pre-flight");
            if !write_record(&record) {
                break;
            }
            continue;
        }
        let (tx, rx) = mpsc::channel();
        let mut job = Job {
            netlist: Arc::clone(&netlist),
            resident: Arc::clone(&resident),
            deadline: per_entry_deadline.map(|d| Instant::now() + d),
            cancel: None,
            backend,
            use_cache,
            reply: tx,
            trace: obs::current_ctx(),
            test_panic: test_panic_requested(req),
        };
        // Block (politely) for queue space: a batch is one client, so
        // it waits its turn instead of consuming a 503.
        let enqueued = loop {
            match shared.queue.try_push(job) {
                Ok(()) => break true,
                Err(PushError::Full(j)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break false;
                    }
                    job = j;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(PushError::Closed(_)) => break false,
            }
        };
        if !enqueued {
            let record = batch_error_record(index, name, "daemon is shutting down");
            let _ = write_record(&record);
            break;
        }
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        let record = match rx.recv() {
            Ok(Ok(rec)) => {
                let mut fields = vec![
                    ("index".to_owned(), Json::uint(index as u64)),
                    ("name".to_owned(), Json::str(name)),
                    ("ok".to_owned(), Json::Bool(true)),
                ];
                if let Json::Obj(inner) = recovery_json(&netlist, &rec, &fingerprint_hex) {
                    fields.extend(inner);
                }
                Json::Obj(fields)
            }
            Ok(Err(Cancelled)) => batch_error_record(index, name, "recovery deadline exceeded"),
            Err(_) => batch_error_record(index, name, "executor unavailable"),
        };
        if !write_record(&record) {
            break;
        }
    }
    shared.metrics.count_request("batch", "ok");
    if shared.quotas.is_some() {
        shared.metrics.count_tenant(tenant_of(req), "ok");
    }
    BatchOutcome::Streamed(200)
}

/// How often the streaming connection thread drains its tap queue and
/// checks for a client hang-up while the job runs.
const STREAM_POLL: Duration = Duration::from_millis(10);

/// Records one `POST /recover/stream` subscription buffers between
/// drains. Sized for the worst case — a large design's per-batch
/// scorer claims at Debug level — so a briefly stalled client socket
/// does not cost progress records.
const STREAM_TAP_CAPACITY: usize = 4096;

/// Writes one NDJSON line, flushing through to the socket. `false`
/// means the client is gone.
fn write_line(mut stream: &TcpStream, record: &Json) -> bool {
    let mut line = record.to_string();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
        .is_ok()
}

/// Whether the streaming client hung up. A `peek` (never a read — the
/// client sends nothing after its body, so any buffered byte is
/// protocol noise we must not consume) in non-blocking mode: EOF or a
/// hard error means gone; `WouldBlock` means the peer is simply quiet.
fn stream_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Turns the tap's raw trace records into client-facing NDJSON progress
/// records, accumulating scorer batch claims into a percent.
struct StreamProgress {
    /// Pairs the score phase said it would score (from the pipeline's
    /// `progress` event), the denominator for mid-score percent.
    to_score: u64,
    /// Pairs claimed by scorer batches so far.
    claimed: u64,
}

/// Reads a numeric field off a trace record.
fn field_u64(rec: &obs::Record, key: &str) -> Option<u64> {
    rec.fields.iter().find_map(|(k, v)| {
        (*k == key).then_some(match v {
            obs::Value::U64(n) => Some(*n),
            obs::Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })?
    })
}

impl StreamProgress {
    fn new() -> StreamProgress {
        StreamProgress {
            to_score: 0,
            claimed: 0,
        }
    }

    /// One `{"type":"progress", ...}` record carrying the trace
    /// record's own fields (minus the redundant `request_id`).
    fn progress_record(event: &str, rec: &obs::Record) -> Json {
        let mut fields = vec![
            ("type".to_owned(), Json::str("progress")),
            ("event".to_owned(), Json::str(event)),
            ("ts_us".to_owned(), Json::uint(rec.ts_micros)),
        ];
        if rec.name != "progress" {
            fields.push(("phase".to_owned(), Json::str(rec.name)));
        }
        for (k, v) in &rec.fields {
            if *k != "request_id" {
                fields.push(((*k).to_owned(), obs::value_json(v)));
            }
        }
        Json::Obj(fields)
    }

    /// Maps one tap record to a client record, or `None` for records
    /// the client has no use for (cache lookups, span internals).
    fn translate(&mut self, rec: &obs::Record) -> Option<Json> {
        match (rec.target, rec.name, rec.kind) {
            ("pipeline", "progress", obs::Kind::Instant) => {
                if let Some(n) = field_u64(rec, "to_score") {
                    self.to_score = n;
                }
                Some(Self::progress_record("update", rec))
            }
            ("pipeline", _, obs::Kind::Begin) => Some(Self::progress_record("begin", rec)),
            ("pipeline", _, obs::Kind::End) => Some(Self::progress_record("end", rec)),
            ("par", "batch", obs::Kind::Begin) => {
                self.claimed += field_u64(rec, "len").unwrap_or(0);
                let total = self.to_score.max(self.claimed);
                let percent = if total == 0 {
                    100.0
                } else {
                    self.claimed as f64 * 100.0 / total as f64
                };
                Some(Json::Obj(vec![
                    ("type".to_owned(), Json::str("progress")),
                    ("event".to_owned(), Json::str("scoring")),
                    ("phase".to_owned(), Json::str("score")),
                    ("ts_us".to_owned(), Json::uint(rec.ts_micros)),
                    ("done".to_owned(), Json::uint(self.claimed)),
                    ("total".to_owned(), Json::uint(total)),
                    ("percent".to_owned(), Json::num(percent)),
                ]))
            }
            _ => None,
        }
    }
}

/// `POST /recover/stream`: one netlist in, chunkless close-delimited
/// NDJSON out — a meta record, then live progress records while the
/// recovery runs, then the final result record (bitwise-identical to
/// the `POST /recover` payload; it is the only record without a
/// `"type"` key). A client that hangs up mid-stream cancels the job
/// through the shared [`CancelToken`]; the warm session survives.
fn handle_recover_stream(
    req: &Request,
    mut stream: &TcpStream,
    shared: &Shared,
    request_id: &str,
    arrival: Instant,
) -> BatchOutcome {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.rejected_total.inc();
        shared.metrics.count_request("stream", "rejected");
        return BatchOutcome::Reply(
            error_response(503, "daemon is shutting down").header("Retry-After", "5"),
        );
    }
    if let Err(throttled) = check_quota(req, "stream", shared) {
        return BatchOutcome::Reply(throttled);
    }
    let resident = match resolve_model(req, "stream", shared) {
        Ok(r) => r,
        Err(resp) => return BatchOutcome::Reply(resp),
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.count_request("stream", "bad_request");
            return BatchOutcome::Reply(error_response(400, "netlist body is not valid utf-8"));
        }
    };
    let netlist = match parse_netlist("request", body, req.header("x-rebert-format")) {
        Ok(nl) => Arc::new(nl),
        Err(msg) => {
            shared.metrics.count_request("stream", "bad_request");
            return BatchOutcome::Reply(error_response(400, &msg));
        }
    };
    let preflight = rebert_analyze::lint_netlist(&netlist);
    if preflight.has_errors() {
        shared.metrics.count_request("stream", "lint_rejected");
        let report = preflight.to_json();
        let mut fields = vec![(
            "error".to_owned(),
            Json::str("netlist failed lint pre-flight; see diagnostics"),
        )];
        if let Json::Obj(inner) = report {
            fields.extend(inner);
        }
        return BatchOutcome::Reply(Response::json(422, &Json::Obj(fields)));
    }
    let backend = match req.header("x-rebert-precision") {
        Some(raw) => match Backend::parse(raw) {
            Some(b) => b,
            None => {
                shared.metrics.count_request("stream", "bad_request");
                return BatchOutcome::Reply(error_response(
                    400,
                    &format!(
                        "unknown X-Rebert-Precision `{raw}` (expected `f32`, `f32-simd`, or `int8`)"
                    ),
                ));
            }
        },
        None => Backend::F32Scalar,
    };
    let deadline = match req.header("x-rebert-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(arrival + Duration::from_millis(ms)),
            Err(_) => {
                shared.metrics.count_request("stream", "bad_request");
                return BatchOutcome::Reply(error_response(
                    400,
                    &format!("bad X-Rebert-Deadline-Ms `{raw}`"),
                ));
            }
        },
        None => shared.config.default_deadline.map(|d| arrival + d),
    };
    let use_cache = req.header("x-rebert-no-cache").is_none();

    // The token is shared with the executor, so a client hang-up
    // observed here cancels the recovery over there.
    let token = match deadline {
        Some(d) => CancelToken::with_deadline_at(d),
        None => CancelToken::new(),
    };
    // Subscribe *before* enqueueing: the executor may pick the job up
    // immediately, and records emitted before the subscription exists
    // are simply never seen.
    let tap = shared.tap.subscribe(STREAM_TAP_CAPACITY, Some(request_id));

    let (tx, rx) = mpsc::channel();
    let fingerprint_hex = resident.fingerprint_hex().to_owned();
    let job = Job {
        netlist: Arc::clone(&netlist),
        resident,
        deadline,
        cancel: Some(token.clone()),
        backend,
        use_cache,
        reply: tx,
        trace: obs::current_ctx(),
        test_panic: test_panic_requested(req),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("stream", "rejected");
            return BatchOutcome::Reply(
                error_response(503, "recovery queue is full, retry shortly")
                    .header("Retry-After", "1"),
            );
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("stream", "rejected");
            return BatchOutcome::Reply(
                error_response(503, "daemon is shutting down").header("Retry-After", "5"),
            );
        }
    }
    shared.metrics.queue_depth.set(shared.queue.len() as u64);

    // Point of no return: the job is queued and the head goes on the
    // wire. From here every outcome is expressed inside the stream.
    let head = format!(
        "HTTP/1.1 200 {}\r\nContent-Type: application/x-ndjson\r\nX-Rebert-Request-Id: {request_id}\r\nConnection: close\r\n\r\n",
        reason(200)
    );
    let mut client_gone = stream.write_all(head.as_bytes()).is_err();
    let mut cancelled_by_client = false;
    if !client_gone {
        let meta = Json::Obj(vec![
            ("type".to_owned(), Json::str("meta")),
            ("request_id".to_owned(), Json::str(request_id)),
            ("design".to_owned(), Json::str(netlist.name())),
            ("model_fingerprint".to_owned(), Json::str(&fingerprint_hex)),
            ("bits".to_owned(), Json::uint(netlist.bits().len() as u64)),
        ]);
        client_gone = !write_line(stream, &meta);
    }

    let mut progress = StreamProgress::new();
    let verdict = loop {
        if !client_gone {
            for rec in tap.drain() {
                if let Some(record) = progress.translate(&rec) {
                    if !write_line(stream, &record) {
                        client_gone = true;
                        break;
                    }
                }
            }
        }
        if !client_gone && stream_disconnected(stream) {
            client_gone = true;
        }
        if client_gone && !cancelled_by_client {
            cancelled_by_client = true;
            token.cancel();
            obs::event_with(
                obs::Level::Info,
                "serve",
                "stream_client_gone",
                vec![("request_id", request_id.into())],
            );
        }
        match rx.recv_timeout(STREAM_POLL) {
            Ok(v) => break Some(v),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break None,
        }
    };

    // Flush whatever progress arrived between the last drain and the
    // verdict, so the final record really is final.
    if !client_gone {
        for rec in tap.drain() {
            if let Some(record) = progress.translate(&rec) {
                if !write_line(stream, &record) {
                    client_gone = true;
                    break;
                }
            }
        }
    }

    let status = match verdict {
        Some(Ok(rec)) => {
            shared.metrics.count_request("stream", "ok");
            if !client_gone {
                let _ = write_line(stream, &recovery_json(&netlist, &rec, &fingerprint_hex));
            }
            200
        }
        Some(Err(Cancelled)) => {
            let outcome = if cancelled_by_client {
                "cancelled"
            } else {
                "deadline"
            };
            shared.metrics.count_request("stream", outcome);
            if !client_gone {
                let _ = write_line(
                    stream,
                    &Json::Obj(vec![
                        ("type".to_owned(), Json::str("error")),
                        ("error".to_owned(), Json::str("recovery deadline exceeded")),
                    ]),
                );
            }
            504
        }
        None => {
            shared.metrics.count_request("stream", "error");
            if !client_gone {
                let _ = write_line(
                    stream,
                    &Json::Obj(vec![
                        ("type".to_owned(), Json::str("error")),
                        ("error".to_owned(), Json::str("executor unavailable")),
                    ]),
                );
            }
            500
        }
    };
    if shared.quotas.is_some() {
        shared
            .metrics
            .count_tenant(tenant_of(req), outcome_label(status));
    }
    BatchOutcome::Streamed(status)
}

/// The `POST /recover` success payload. `fingerprint_hex` identifies
/// the checkpoint that produced the scores, so clients can correlate
/// answers with deployed model versions.
pub(crate) fn recovery_json(nl: &Netlist, rec: &RecoveredWords, fingerprint_hex: &str) -> Json {
    let bits = nl.bits();
    let names = Json::Arr(bits.iter().map(|&b| Json::str(nl.net_name(b))).collect());
    let words = Json::Arr(
        rec.words()
            .into_iter()
            .map(|w| Json::Arr(w.into_iter().map(|b| Json::uint(b as u64)).collect()))
            .collect(),
    );
    let assignment = Json::Arr(
        rec.assignment
            .iter()
            .map(|&w| Json::uint(w as u64))
            .collect(),
    );
    let s = &rec.stats;
    let micros = |d: Duration| Json::uint(d.as_micros().min(u64::MAX as u128) as u64);
    let stats = Json::Obj(vec![
        ("pairs_total".into(), Json::uint(s.pairs_total as u64)),
        ("pairs_filtered".into(), Json::uint(s.pairs_filtered as u64)),
        ("pairs_scored".into(), Json::uint(s.pairs_scored as u64)),
        ("classes".into(), Json::uint(s.classes as u64)),
        (
            "class_pairs_scored".into(),
            Json::uint(s.class_pairs_scored as u64),
        ),
        ("pairs_memoized".into(), Json::uint(s.pairs_memoized as u64)),
        ("cache_hits".into(), Json::uint(s.cache_hits as u64)),
        ("cache_misses".into(), Json::uint(s.cache_misses as u64)),
        ("pairs_per_sec".into(), Json::num(s.pairs_per_sec)),
        ("backend".into(), Json::str(s.backend.label())),
        ("tokenize_us".into(), micros(s.tokenize_time)),
        ("filter_us".into(), micros(s.filter_time)),
        ("score_us".into(), micros(s.score_time)),
        ("group_us".into(), micros(s.group_time)),
        ("elapsed_us".into(), micros(s.elapsed)),
    ]);
    let warnings = Json::Arr(s.warnings.iter().map(Json::str).collect());
    Json::Obj(vec![
        ("design".into(), Json::str(nl.name())),
        ("model_fingerprint".into(), Json::str(fingerprint_hex)),
        ("bits".into(), Json::uint(bits.len() as u64)),
        ("words".into(), words),
        ("assignment".into(), assignment),
        ("names".into(), names),
        ("stats".into(), stats),
        ("warnings".into(), warnings),
    ])
}

/// Process-wide signal plumbing: SIGINT/SIGTERM set a flag the serve
/// loop polls, so the daemon drains instead of dying mid-request.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGINT or SIGTERM arrived since [`install`].
    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Test/support hook: mark the flag as if a signal had arrived.
    pub fn trigger() {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    /// Installs handlers for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }

    #[cfg(not(unix))]
    /// No-op off unix; `POST /shutdown` still works.
    pub fn install() {}
}

/// Blocks until a signal or a `POST /shutdown` arrives, then drains the
/// daemon gracefully. This is the `rebert serve` main loop.
pub fn run_until_shutdown(server: Server) {
    signals::install();
    while !server.shutdown_requested() && !signals::signalled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert::{ReBertConfig, ReBertModel};
    use rebert_circuits::{generate, Profile};

    #[test]
    fn sniffer_separates_dialects() {
        assert!(sniff_verilog("module top(a);\nendmodule\n"));
        assert!(sniff_verilog("  \n\tmodule x;\n"));
        assert!(!sniff_verilog("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"));
        // `module` inside a net name must not trigger the sniffer.
        assert!(!sniff_verilog("INPUT(module_clk_a)\n"));
    }

    #[test]
    fn recovery_json_shape() {
        let c = generate(&Profile::new("demo", 80, 8, 2), 9);
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let fp = model.fingerprint_hex();
        let rec = model.recover_words(&c.netlist);
        let json = recovery_json(&c.netlist, &rec, &fp);
        assert_eq!(json.get("bits").and_then(Json::as_usize), Some(8));
        assert_eq!(json.get("design").and_then(Json::as_str), Some("demo"));
        assert_eq!(
            json.get("model_fingerprint").and_then(Json::as_str),
            Some(fp.as_str())
        );
        assert_eq!(fp.len(), 16, "fingerprint is 16 hex digits");
        let assignment = json.get("assignment").and_then(Json::as_array).unwrap();
        assert_eq!(assignment.len(), 8);
        let names = json.get("names").and_then(Json::as_array).unwrap();
        assert_eq!(names.len(), 8);
        let stats = json.get("stats").unwrap();
        assert_eq!(
            stats.get("pairs_total").and_then(Json::as_usize),
            Some(rec.stats.pairs_total)
        );
        assert_eq!(
            stats.get("pairs_memoized").and_then(Json::as_usize),
            Some(rec.stats.pairs_memoized)
        );
        // Round-trips through the parser.
        let text = json.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("bits").and_then(Json::as_usize), Some(8));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.default_deadline.is_none());
        assert!(cfg.trace_capacity >= 1);
        assert!(cfg.trace_level >= obs::Level::Info, "requests are traced");
        assert!(cfg.cache_bytes > 0, "score cache is on by default");
        assert!(cfg.cache_path.is_none(), "persistence is opt-in");
        assert!(cfg.cache_flush_every > 0);
    }

    #[test]
    fn request_ids_are_unique_and_prefixed() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        let prefix = format!("req-{:x}-", std::process::id());
        assert!(a.starts_with(&prefix), "{a}");
        assert!(b.starts_with(&prefix), "{b}");
    }

    #[test]
    fn outcome_labels_match_metrics_vocabulary() {
        for (status, label) in [
            (200, "ok"),
            (400, "bad_request"),
            (404, "not_found"),
            (405, "bad_request"),
            (413, "bad_request"),
            (422, "lint_rejected"),
            (429, "throttled"),
            (500, "error"),
            (503, "rejected"),
            (504, "deadline"),
            (302, "other"),
        ] {
            assert_eq!(outcome_label(status), label, "status {status}");
        }
    }

    #[test]
    fn client_request_ids_validate_conservatively() {
        assert!(valid_request_id("req-1f3a-42"));
        assert!(valid_request_id("trace:abc_DEF.9"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("new\nline"));
        assert!(!valid_request_id("quote\"inject"));
    }

    #[test]
    fn batch_archive_round_trips() {
        let a = "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n";
        let b = "module t(x);\nendmodule\n";
        let mut archive = Vec::new();
        for (name, text) in [("one.bench", a), ("two.v", b)] {
            archive.extend_from_slice(format!("{} {name}\n", text.len()).as_bytes());
            archive.extend_from_slice(text.as_bytes());
            archive.push(b'\n');
        }
        let entries = parse_batch_archive(&archive).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], ("one.bench".to_owned(), a.to_owned()));
        assert_eq!(entries[1], ("two.v".to_owned(), b.to_owned()));
        // Without the optional separator newline it still parses.
        let mut tight = Vec::new();
        tight.extend_from_slice(format!("{} solo\n", a.len()).as_bytes());
        tight.extend_from_slice(a.as_bytes());
        assert_eq!(parse_batch_archive(&tight).expect("parses").len(), 1);
        assert!(parse_batch_archive(b"").expect("empty ok").is_empty());
    }

    #[test]
    fn batch_archive_rejects_malformed_framing() {
        assert!(parse_batch_archive(b"no newline header").is_err());
        assert!(parse_batch_archive(b"12 name\nshort").is_err(), "overrun");
        assert!(parse_batch_archive(b"cow name\nbody\n").is_err(), "bad len");
        assert!(parse_batch_archive(b"4\nabcd\n").is_err(), "missing name");
        assert!(parse_batch_archive(b"3 \nabc\n").is_err(), "empty name");
    }
}
