//! The daemon: accept loop, bounded job queue, single recovery
//! executor, and graceful shutdown.
//!
//! One connection thread per request (connections are short-lived:
//! `Connection: close`), all funneling into a [`Bounded`] queue consumed
//! by a single executor thread that owns the [`RecoverySession`]. The
//! queue is the backpressure boundary: when it is full the daemon
//! answers `503` with `Retry-After` instead of buffering unbounded work.
//! Each job may carry a deadline; the executor threads it into the
//! session as a [`CancelToken`], so an overdue recovery aborts
//! cooperatively (`504`) without poisoning the warm session.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rebert::json::Json;
use rebert::{Backend, CancelToken, Cancelled, RecoveredWords, RecoverySession, ScoreCache};
use rebert_netlist::{parse_bench, parse_verilog, Netlist};
use rebert_obs as obs;
use rebert_obs::RingSink;

use crate::http::{read_request, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{Bounded, PushError};

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Jobs the queue holds before new submissions get `503`.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not set
    /// `X-Rebert-Deadline-Ms` themselves. `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Records the always-on trace ring holds for `GET /debug/trace`
    /// (oldest evicted first; recording never blocks).
    pub trace_capacity: usize,
    /// Most verbose level captured into the trace ring.
    pub trace_level: obs::Level,
    /// Byte budget for the shared cross-request score cache. `0`
    /// disables caching entirely (every request scores from scratch,
    /// as if `X-Rebert-No-Cache` were always set).
    pub cache_bytes: usize,
    /// Where the score cache persists across daemon restarts. `None`
    /// keeps the cache purely in-memory; with a path, the daemon loads
    /// it at startup (ignoring missing, corrupt, or stale-fingerprint
    /// files) and rewrites it atomically on shutdown and periodically.
    pub cache_path: Option<PathBuf>,
    /// Flush the persistent cache every this many completed recoveries
    /// (`0` = only at shutdown). Meaningless without `cache_path`.
    pub cache_flush_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            default_deadline: None,
            trace_capacity: 4096,
            trace_level: obs::Level::Debug,
            cache_bytes: 64 << 20,
            cache_path: None,
            cache_flush_every: 64,
        }
    }
}

/// One queued recovery: the parsed netlist, an optional absolute
/// deadline (measured from request arrival), and the reply channel back
/// to the connection thread.
struct Job {
    netlist: Arc<Netlist>,
    deadline: Option<Instant>,
    /// Inference backend requested via `X-Rebert-Precision` (validated
    /// on the connection thread; default scalar).
    backend: Backend,
    /// `false` when the client sent `X-Rebert-No-Cache`: this request
    /// neither reads nor writes the shared score cache.
    use_cache: bool,
    reply: mpsc::Sender<Result<RecoveredWords, Cancelled>>,
    /// Tracing context captured on the connection thread: the request's
    /// root span plus its `request_id` field. The executor adopts it so
    /// the pipeline's spans parent under the request that queued them.
    trace: obs::TraceCtx,
}

/// State shared by the accept loop, connection threads, the executor,
/// and the owning [`Server`] handle.
struct Shared {
    queue: Bounded<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
    config: ServeConfig,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Always-on bounded trace ring, drained by `GET /debug/trace`.
    trace: Arc<RingSink>,
    /// The shared cross-request score cache (absent when disabled).
    cache: Option<Arc<ScoreCache>>,
    /// Hex fingerprint of the serving checkpoint, echoed in every
    /// `POST /recover` success payload and the `/metrics` info series.
    fingerprint_hex: String,
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`])
/// drains in-flight work and stops every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    executor_thread: Option<JoinHandle<()>>,
    trace_sink: Option<obs::SinkId>,
}

/// Starts serving `session` on `listener`. The listener is switched to
/// non-blocking so the accept loop can observe shutdown requests.
///
/// # Errors
///
/// Returns the [`std::io::Error`] if the listener cannot be configured.
pub fn serve(
    mut session: RecoverySession,
    listener: TcpListener,
    config: ServeConfig,
) -> std::io::Result<Server> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // Warm the int8 weight view before accepting traffic, so the first
    // `X-Rebert-Precision: int8` request does not pay the one-off
    // quantization pass inside its own deadline.
    session.model().int8_view();
    let fingerprint_hex = session.model().fingerprint_hex();
    // Wire in the daemon-owned score cache unless the caller attached
    // one already or the config disables it. The fingerprint keys both
    // the cache entries and the persisted file, so a re-trained
    // checkpoint can never be served stale scores.
    let cache = session.cache().cloned().or_else(|| {
        if config.cache_bytes == 0 {
            return None;
        }
        let fp = session.model().fingerprint();
        let cache = Arc::new(match &config.cache_path {
            Some(p) => ScoreCache::load_or_new(p, config.cache_bytes, fp),
            None => ScoreCache::new(config.cache_bytes, fp),
        });
        session.attach_cache(Arc::clone(&cache));
        Some(cache)
    });
    let trace = Arc::new(RingSink::new(config.trace_capacity, config.trace_level));
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_capacity),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        config,
        conns: Mutex::new(Vec::new()),
        trace: Arc::clone(&trace),
        cache,
        fingerprint_hex,
    });
    shared
        .metrics
        .set_model_fingerprint(shared.fingerprint_hex.clone());
    if let Some(cache) = &shared.cache {
        shared.metrics.observe_cache(cache);
    }
    // The ring records every request for `GET /debug/trace`; it is
    // uninstalled (narrowing the global gate back) when the server stops.
    let trace_sink = obs::install(trace);

    let executor_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rebert-executor".into())
            .spawn(move || executor_loop(&session, &shared))?
    };
    let accept_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rebert-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(Server {
        shared,
        addr,
        accept_thread: Some(accept_thread),
        executor_thread: Some(executor_thread),
        trace_sink: Some(trace_sink),
    })
}

impl Server {
    /// The bound address (useful with an ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Whether a shutdown was requested (signal handler, `POST
    /// /shutdown`, or [`Server::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flags the daemon to shut down without blocking; follow with
    /// [`Server::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, let queued jobs drain through
    /// the executor, answer every in-flight connection, and join all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // New pushes now fail Closed; queued jobs still drain.
        self.shared.queue.close();
        if let Some(t) = self.executor_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conn list lock"));
        for c in conns {
            let _ = c.join();
        }
        if let Some(id) = self.trace_sink.take() {
            obs::uninstall(id);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pops jobs until the queue closes and drains; replies on each job's
/// channel. A cancelled recovery leaves the session warm and reusable.
/// With a persistent cache path configured, the cache is rewritten
/// every `cache_flush_every` completed recoveries and once more after
/// the queue drains, so a SIGTERM'd daemon restarts warm.
fn executor_loop(session: &RecoverySession, shared: &Shared) {
    let mut completed = 0usize;
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        shared.metrics.inflight.inc();
        let token = match job.deadline {
            Some(d) => CancelToken::with_deadline_at(d),
            None => CancelToken::new(),
        };
        // Adopt the request's context: the pipeline's `recover` span (and
        // everything under it) parents under the request's root span and
        // carries its `request_id` field, even though it runs over here.
        let _tracing = obs::enter_ctx(&job.trace);
        let result = session.try_recover_opts(&job.netlist, &token, job.backend, job.use_cache);
        match &result {
            Ok(rec) => {
                shared.metrics.record_recovery(&rec.stats);
                completed += 1;
            }
            Err(Cancelled) => shared.metrics.deadline_total.inc(),
        }
        if let Some(cache) = &shared.cache {
            shared.metrics.observe_cache(cache);
            if let Some(path) = &shared.config.cache_path {
                let every = shared.config.cache_flush_every;
                if every > 0 && completed > 0 && completed.is_multiple_of(every) {
                    if let Err(e) = cache.flush(path) {
                        obs::warn!("serve", "periodic cache flush failed: {e}");
                    }
                }
            }
        }
        shared.metrics.inflight.dec();
        // A send error just means the client hung up; the work is done
        // either way.
        let _ = job.reply.send(result);
    }
    if let (Some(cache), Some(path)) = (&shared.cache, &shared.config.cache_path) {
        if let Err(e) = cache.flush(path) {
            obs::warn!("serve", "shutdown cache flush failed: {e}");
        }
    }
}

/// Accepts connections until shutdown, one short-lived thread each.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared_for_conn = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("rebert-conn".into())
                    .spawn(move || handle_connection(stream, &shared_for_conn));
                let mut conns = shared.conns.lock().expect("conn list lock");
                conns.retain(|c| !c.is_finished());
                if let Ok(h) = handle {
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                // Transient accept failure (e.g. aborted handshake).
                obs::warn!("serve", "accept error: {e}");
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Allocates a process-unique request id, `req-{pid:x}-{counter}`.
fn next_request_id() -> String {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!(
        "req-{:x}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    )
}

/// Maps a response status to the outcome label used by the metrics, so
/// the `request_done` trace event and the counters agree.
fn outcome_label(status: u16) -> &'static str {
    match status {
        200 => "ok",
        400 | 405 | 413 => "bad_request",
        404 => "not_found",
        422 => "lint_rejected",
        503 => "rejected",
        504 => "deadline",
        500 => "error",
        _ => "other",
    }
}

/// Serves exactly one request on `stream` and closes it.
///
/// Every answered request gets an `X-Rebert-Request-Id` header and a
/// root `serve/request` span whose `request_id` field matches it; child
/// spans (including the executor-side recovery) inherit the id as a
/// context field.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let arrival = Instant::now();
    let _ = stream.set_nodelay(true);
    let request_id = next_request_id();
    let response = match read_request(&mut BufReader::new(&stream)) {
        Ok(None) => return, // clean pre-request hang-up
        Ok(Some(req)) => {
            let mut root = obs::span_with(
                obs::Level::Info,
                "serve",
                "request",
                vec![
                    ("request_id", request_id.clone().into()),
                    ("method", req.method.clone().into()),
                    ("path", req.path().to_owned().into()),
                ],
            );
            let ctx = obs::TraceCtx::default().with_field("request_id", request_id.clone());
            let ctx_guard = obs::enter_ctx(&ctx);
            let response = route(&req, arrival, shared);
            obs::event_with(
                obs::Level::Info,
                "serve",
                "request_done",
                vec![
                    ("status", u64::from(response.status).into()),
                    ("outcome", outcome_label(response.status).into()),
                ],
            );
            drop(ctx_guard);
            root.add_field("status", u64::from(response.status));
            root.end();
            response
        }
        Err(HttpError::Io(_)) => return, // client died mid-request
        Err(HttpError::Malformed(m)) => {
            shared.metrics.count_request("other", "bad_request");
            error_response(400, &format!("malformed request: {m}"))
        }
        Err(HttpError::TooLarge(what)) => {
            shared.metrics.count_request("other", "bad_request");
            error_response(413, &format!("request {what} too large"))
        }
    };
    let mut stream = stream;
    let _ = response
        .header("X-Rebert-Request-Id", &request_id)
        .write_to(&mut stream);
}

/// A JSON `{"error": …}` body with the given status.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![("error".into(), Json::str(message))]),
    )
}

/// Dispatches one parsed request.
fn route(req: &Request, arrival: Instant, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz", "ok");
            Response::text(200, "ok\n")
        }
        ("GET", "/metrics") => {
            shared.metrics.queue_depth.set(shared.queue.len() as u64);
            if let Some(cache) = &shared.cache {
                shared.metrics.observe_cache(cache);
            }
            shared.metrics.count_request("metrics", "ok");
            let body = shared.metrics.render();
            Response {
                status: 200,
                headers: vec![(
                    "Content-Type".into(),
                    "text/plain; version=0.0.4; charset=utf-8".into(),
                )],
                body: body.into_bytes(),
            }
        }
        ("GET", "/debug/trace") => {
            shared.metrics.count_request("trace", "ok");
            handle_debug_trace(shared)
        }
        ("POST", "/recover") => handle_recover(req, arrival, shared),
        ("POST", "/shutdown") => {
            shared.metrics.count_request("shutdown", "ok");
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::text(200, "draining\n")
        }
        (_, "/healthz" | "/metrics" | "/recover" | "/shutdown" | "/debug/trace") => {
            shared.metrics.count_request("other", "bad_request");
            error_response(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => {
            shared.metrics.count_request("other", "not_found");
            error_response(404, &format!("no such endpoint: {path}"))
        }
    }
}

/// `GET /debug/trace`: drains the trace ring as NDJSON. The first line
/// is a meta object (`drained`, `dropped_events`); every following line
/// is one trace record. Draining is destructive — each record is
/// reported exactly once across successive calls.
fn handle_debug_trace(shared: &Shared) -> Response {
    let records = shared.trace.drain();
    let dropped = shared.trace.dropped_events();
    let meta = Json::Obj(vec![
        ("drained".into(), Json::uint(records.len() as u64)),
        ("dropped_events".into(), Json::uint(dropped)),
    ]);
    let mut body = meta.to_string();
    body.push('\n');
    for rec in &records {
        body.push_str(&obs::record_json(rec).to_string());
        body.push('\n');
    }
    Response {
        status: 200,
        headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
        body: body.into_bytes(),
    }
}

/// Whether a netlist body looks like Verilog rather than `.bench`.
/// Used only when the client does not say via `X-Rebert-Format`.
fn sniff_verilog(body: &str) -> bool {
    body.lines()
        .map(str::trim_start)
        .any(|l| l.starts_with("module ") || l.starts_with("module\t"))
}

/// `POST /recover`: parse, enqueue with backpressure, await the verdict.
fn handle_recover(req: &Request, arrival: Instant, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.rejected_total.inc();
        shared.metrics.count_request("recover", "rejected");
        return error_response(503, "daemon is shutting down").header("Retry-After", "5");
    }

    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.count_request("recover", "bad_request");
            return error_response(400, "netlist body is not valid utf-8");
        }
    };
    let format = req.header("x-rebert-format");
    let netlist = match format {
        Some("bench") => parse_bench("request", body).map_err(|e| e.to_string()),
        Some("verilog") => parse_verilog("request", body).map_err(|e| e.to_string()),
        Some(other) => Err(format!(
            "unknown X-Rebert-Format `{other}` (expected `bench` or `verilog`)"
        )),
        None if sniff_verilog(body) => parse_verilog("request", body).map_err(|e| e.to_string()),
        None => parse_bench("request", body).map_err(|e| e.to_string()),
    };
    let netlist = match netlist {
        Ok(nl) => Arc::new(nl),
        Err(msg) => {
            shared.metrics.count_request("recover", "bad_request");
            return error_response(400, &msg);
        }
    };

    // Pre-flight: recovery on a structurally broken netlist produces
    // garbage words with no hint of why, so hard lint errors are
    // answered up front with the full diagnostics instead. Warnings
    // (dead logic, foldable constants, ...) do not block; they come
    // back in the success payload.
    let preflight = rebert_analyze::lint_netlist(&netlist);
    if preflight.has_errors() {
        shared.metrics.count_request("recover", "lint_rejected");
        let report = preflight.to_json();
        let mut fields = vec![(
            "error".to_owned(),
            Json::str("netlist failed lint pre-flight; see diagnostics"),
        )];
        if let Json::Obj(inner) = report {
            fields.extend(inner);
        }
        return Response::json(422, &Json::Obj(fields));
    }

    let backend = match req.header("x-rebert-precision") {
        Some(raw) => match Backend::parse(raw) {
            Some(b) => b,
            None => {
                shared.metrics.count_request("recover", "bad_request");
                return error_response(
                    400,
                    &format!(
                        "unknown X-Rebert-Precision `{raw}` (expected `f32`, `f32-simd`, or `int8`)"
                    ),
                );
            }
        },
        None => Backend::F32Scalar,
    };

    let deadline = match req.header("x-rebert-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(arrival + Duration::from_millis(ms)),
            Err(_) => {
                shared.metrics.count_request("recover", "bad_request");
                return error_response(400, &format!("bad X-Rebert-Deadline-Ms `{raw}`"));
            }
        },
        None => shared.config.default_deadline.map(|d| arrival + d),
    };

    // Any `X-Rebert-No-Cache` value opts this request out of the shared
    // score cache — useful for A/B-ing cache correctness in production
    // and for benchmarking cold-path latency against a warm daemon.
    let use_cache = req.header("x-rebert-no-cache").is_none();

    let (tx, rx) = mpsc::channel();
    let job = Job {
        netlist: Arc::clone(&netlist),
        deadline,
        backend,
        use_cache,
        reply: tx,
        trace: obs::current_ctx(),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("recover", "rejected");
            return error_response(503, "recovery queue is full, retry shortly")
                .header("Retry-After", "1");
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.rejected_total.inc();
            shared.metrics.count_request("recover", "rejected");
            return error_response(503, "daemon is shutting down").header("Retry-After", "5");
        }
    }
    shared.metrics.queue_depth.set(shared.queue.len() as u64);

    match rx.recv() {
        Ok(Ok(rec)) => {
            shared.metrics.count_request("recover", "ok");
            Response::json(200, &recovery_json(&netlist, &rec, &shared.fingerprint_hex))
        }
        Ok(Err(Cancelled)) => {
            shared.metrics.count_request("recover", "deadline");
            error_response(504, "recovery deadline exceeded")
        }
        Err(_) => {
            // The executor is gone — only possible mid-shutdown race.
            shared.metrics.count_request("recover", "error");
            error_response(500, "executor unavailable")
        }
    }
}

/// The `POST /recover` success payload. `fingerprint_hex` identifies
/// the checkpoint that produced the scores, so clients can correlate
/// answers with deployed model versions.
pub(crate) fn recovery_json(nl: &Netlist, rec: &RecoveredWords, fingerprint_hex: &str) -> Json {
    let bits = nl.bits();
    let names = Json::Arr(bits.iter().map(|&b| Json::str(nl.net_name(b))).collect());
    let words = Json::Arr(
        rec.words()
            .into_iter()
            .map(|w| Json::Arr(w.into_iter().map(|b| Json::uint(b as u64)).collect()))
            .collect(),
    );
    let assignment = Json::Arr(
        rec.assignment
            .iter()
            .map(|&w| Json::uint(w as u64))
            .collect(),
    );
    let s = &rec.stats;
    let micros = |d: Duration| Json::uint(d.as_micros().min(u64::MAX as u128) as u64);
    let stats = Json::Obj(vec![
        ("pairs_total".into(), Json::uint(s.pairs_total as u64)),
        ("pairs_filtered".into(), Json::uint(s.pairs_filtered as u64)),
        ("pairs_scored".into(), Json::uint(s.pairs_scored as u64)),
        ("classes".into(), Json::uint(s.classes as u64)),
        (
            "class_pairs_scored".into(),
            Json::uint(s.class_pairs_scored as u64),
        ),
        ("pairs_memoized".into(), Json::uint(s.pairs_memoized as u64)),
        ("cache_hits".into(), Json::uint(s.cache_hits as u64)),
        ("cache_misses".into(), Json::uint(s.cache_misses as u64)),
        ("pairs_per_sec".into(), Json::num(s.pairs_per_sec)),
        ("backend".into(), Json::str(s.backend.label())),
        ("tokenize_us".into(), micros(s.tokenize_time)),
        ("filter_us".into(), micros(s.filter_time)),
        ("score_us".into(), micros(s.score_time)),
        ("group_us".into(), micros(s.group_time)),
        ("elapsed_us".into(), micros(s.elapsed)),
    ]);
    let warnings = Json::Arr(s.warnings.iter().map(Json::str).collect());
    Json::Obj(vec![
        ("design".into(), Json::str(nl.name())),
        ("model_fingerprint".into(), Json::str(fingerprint_hex)),
        ("bits".into(), Json::uint(bits.len() as u64)),
        ("words".into(), words),
        ("assignment".into(), assignment),
        ("names".into(), names),
        ("stats".into(), stats),
        ("warnings".into(), warnings),
    ])
}

/// Process-wide signal plumbing: SIGINT/SIGTERM set a flag the serve
/// loop polls, so the daemon drains instead of dying mid-request.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGINT or SIGTERM arrived since [`install`].
    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Test/support hook: mark the flag as if a signal had arrived.
    pub fn trigger() {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    /// Installs handlers for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }

    #[cfg(not(unix))]
    /// No-op off unix; `POST /shutdown` still works.
    pub fn install() {}
}

/// Blocks until a signal or a `POST /shutdown` arrives, then drains the
/// daemon gracefully. This is the `rebert serve` main loop.
pub fn run_until_shutdown(server: Server) {
    signals::install();
    while !server.shutdown_requested() && !signals::signalled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert::{ReBertConfig, ReBertModel};
    use rebert_circuits::{generate, Profile};

    #[test]
    fn sniffer_separates_dialects() {
        assert!(sniff_verilog("module top(a);\nendmodule\n"));
        assert!(sniff_verilog("  \n\tmodule x;\n"));
        assert!(!sniff_verilog("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"));
        // `module` inside a net name must not trigger the sniffer.
        assert!(!sniff_verilog("INPUT(module_clk_a)\n"));
    }

    #[test]
    fn recovery_json_shape() {
        let c = generate(&Profile::new("demo", 80, 8, 2), 9);
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let fp = model.fingerprint_hex();
        let rec = model.recover_words(&c.netlist);
        let json = recovery_json(&c.netlist, &rec, &fp);
        assert_eq!(json.get("bits").and_then(Json::as_usize), Some(8));
        assert_eq!(json.get("design").and_then(Json::as_str), Some("demo"));
        assert_eq!(
            json.get("model_fingerprint").and_then(Json::as_str),
            Some(fp.as_str())
        );
        assert_eq!(fp.len(), 16, "fingerprint is 16 hex digits");
        let assignment = json.get("assignment").and_then(Json::as_array).unwrap();
        assert_eq!(assignment.len(), 8);
        let names = json.get("names").and_then(Json::as_array).unwrap();
        assert_eq!(names.len(), 8);
        let stats = json.get("stats").unwrap();
        assert_eq!(
            stats.get("pairs_total").and_then(Json::as_usize),
            Some(rec.stats.pairs_total)
        );
        assert_eq!(
            stats.get("pairs_memoized").and_then(Json::as_usize),
            Some(rec.stats.pairs_memoized)
        );
        // Round-trips through the parser.
        let text = json.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("bits").and_then(Json::as_usize), Some(8));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.default_deadline.is_none());
        assert!(cfg.trace_capacity >= 1);
        assert!(cfg.trace_level >= obs::Level::Info, "requests are traced");
        assert!(cfg.cache_bytes > 0, "score cache is on by default");
        assert!(cfg.cache_path.is_none(), "persistence is opt-in");
        assert!(cfg.cache_flush_every > 0);
    }

    #[test]
    fn request_ids_are_unique_and_prefixed() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        let prefix = format!("req-{:x}-", std::process::id());
        assert!(a.starts_with(&prefix), "{a}");
        assert!(b.starts_with(&prefix), "{b}");
    }

    #[test]
    fn outcome_labels_match_metrics_vocabulary() {
        for (status, label) in [
            (200, "ok"),
            (400, "bad_request"),
            (404, "not_found"),
            (405, "bad_request"),
            (413, "bad_request"),
            (422, "lint_rejected"),
            (500, "error"),
            (503, "rejected"),
            (504, "deadline"),
            (302, "other"),
        ] {
            assert_eq!(outcome_label(status), label, "status {status}");
        }
    }
}
