//! A bounded MPSC job queue built on `Mutex` + `Condvar`.
//!
//! Producers (connection threads) never block: [`Bounded::try_push`]
//! fails fast when the queue is full so the caller can answer 503 with
//! `Retry-After` instead of building an invisible backlog. The single
//! consumer (the executor) blocks in [`Bounded::pop`]; after
//! [`Bounded::close`] it drains whatever is already queued and then
//! observes `None`.

use std::collections::VecDeque;

// The `rebert_sync` wrappers do the std-vs-loom switch internally: the
// loom models below exhaustively explore interleavings through the same
// wrapper code production runs, and debug builds additionally feed the
// queue lock into the workspace lock-order graph. The wrapper exposes
// only `wait_while` — there is no bare `wait` — so every blocking wait
// in this file re-checks its predicate and is spurious-wakeup-proof by
// construction.
use rebert_sync::{Condvar, Mutex};

/// Why a push was refused. The job is handed back so the caller can
/// reply to its client.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure, retry later.
    Full(T),
    /// The queue is shutting down and takes no new work.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue with a blocking consumer.
#[derive(Debug)]
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    wakeup: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(
                State {
                    items: VecDeque::new(),
                    closed: false,
                },
                "serve.queue.state",
            ),
            wakeup: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking, or reports why it cannot.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` only once the queue is
    /// closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        // `wait_while` owns the re-check loop: it only returns once an
        // item is queued or the queue is closed, with the lock held, so
        // a spurious wakeup can never surface a phantom `None` here.
        let mut state = self
            .wakeup
            .wait_while(self.state.lock(), |s| s.items.is_empty() && !s.closed);
        state.items.pop_front() // empty ⇒ closed ⇒ None
    }

    /// Stops accepting new items; queued items still drain via
    /// [`Bounded::pop`].
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.wakeup.notify_all();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let q = Bounded::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Bounded::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert_eq!(q.try_push('c'), Err(PushError::Full('c')));
        assert_eq!(q.pop(), Some('a'));
        q.try_push('c').unwrap();
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn spurious_wakeup_does_not_yield_phantom_pop() {
        // Regression test for the bare-`wait` loop this queue used to
        // have: poke the condvar with *no* state change (exactly what a
        // spurious wakeup looks like) and the consumer must keep
        // blocking rather than return a phantom `None`.
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.wakeup.notify_all();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !consumer.is_finished(),
            "consumer returned on a wakeup with nothing queued and the queue open"
        );
        q.try_push(9).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(9));
    }

    #[test]
    fn push_wakes_a_blocked_consumer() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}

/// Exhaustive interleaving checks, run with
/// `RUSTFLAGS="--cfg loom" cargo test -p rebert-serve --lib loom`.
///
/// Each model spawns at most two helper threads (loom's scheduler caps
/// at four total) and asserts the queue invariants the serve loop leans
/// on: no lost or duplicated items, close-wakes-consumers, and refusal
/// semantics while full or closed.
#[cfg(all(test, loom))]
mod loom_models {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn loom_push_then_pop_hands_the_item_over() {
        loom::model(|| {
            let q = Arc::new(Bounded::<u32>::new(1));
            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(7).expect("capacity 1, one push"))
            };
            // The consumer may block before or after the push lands;
            // either way the wakeup must deliver exactly the item.
            let got = q.pop();
            producer.join().unwrap();
            assert_eq!(got, Some(7));
        });
    }

    #[test]
    fn loom_shutdown_while_full_loses_nothing() {
        loom::model(|| {
            let q = Arc::new(Bounded::<u32>::new(1));
            q.try_push(1).expect("pre-filled to capacity");
            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(2))
            };
            let closer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.close())
            };
            let refused = producer.join().unwrap();
            closer.join().unwrap();
            // The racing push must be refused one way or the other and
            // must hand the job back for a 503 reply.
            match refused {
                Err(PushError::Full(2)) | Err(PushError::Closed(2)) => {}
                other => panic!("racing push must be refused, got {other:?}"),
            }
            // The queued item still drains after close.
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn loom_close_wakes_a_blocked_consumer() {
        loom::model(|| {
            let q = Arc::new(Bounded::<u32>::new(1));
            let closer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.close())
            };
            // Whether the consumer blocks first or the close lands
            // first, pop must return None rather than sleep forever.
            assert_eq!(q.pop(), None);
            closer.join().unwrap();
        });
    }

    #[test]
    fn loom_concurrent_producers_neither_lose_nor_duplicate() {
        loom::model(|| {
            let q = Arc::new(Bounded::<u32>::new(2));
            let p1 = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(1).expect("capacity 2, two pushes"))
            };
            let p2 = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(2).expect("capacity 2, two pushes"))
            };
            p1.join().unwrap();
            p2.join().unwrap();
            q.close();
            let mut drained = vec![q.pop(), q.pop()];
            drained.sort();
            assert_eq!(drained, vec![Some(1), Some(2)]);
            assert_eq!(q.pop(), None);
        });
    }
}
