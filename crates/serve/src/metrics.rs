//! Daemon telemetry rendered in the Prometheus text exposition format.
//!
//! Everything is lock-free atomics except the request-counter map (one
//! short mutex per finished request), so recording never contends with
//! the scoring threads. Phase timings land in fixed-bucket histograms;
//! the pairs counters mirror [`rebert::PipelineStats`] cumulatively
//! across requests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rebert::{Backend, PipelineStats};
use rebert_sync::Mutex;

/// Histogram bucket upper bounds, in seconds. Spans sub-millisecond
/// grouping up to multi-second scoring runs; `+Inf` is implicit.
pub const BUCKETS: [f64; 9] = [0.001, 0.005, 0.02, 0.1, 0.25, 1.0, 2.5, 10.0, 60.0];

/// The quantiles every histogram exports as companion gauges:
/// `(q, label)` pairs, rendered with a `quantile` label like a
/// Prometheus summary.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        // Self-contained scrape value — rebert-lint: allow(relaxed-publication-store)
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket duration histogram ([`BUCKETS`] plus `+Inf`). The sum
/// is tracked in integer microseconds so recording stays a pair of
/// atomic adds.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [Counter; BUCKETS.len() + 1],
    sum_micros: Counter,
    count: Counter,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let slot = BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(BUCKETS.len());
        self.counts[slot].inc();
        self.sum_micros
            .add(d.as_micros().min(u64::MAX as u128) as u64);
        self.count.inc();
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts
    /// by linear interpolation inside the owning bucket — the same
    /// estimate PromQL's `histogram_quantile` computes. Observations in
    /// the `+Inf` bucket clamp to the largest finite bound, and an
    /// empty histogram reports `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count.get();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        let mut lower = 0.0f64;
        for (i, &le) in BUCKETS.iter().enumerate() {
            let here = self.counts[i].get();
            if here > 0 && cumulative + here >= rank {
                let into = (rank - cumulative) as f64 / here as f64;
                return lower + (le - lower) * into;
            }
            cumulative += here;
            lower = le;
        }
        BUCKETS[BUCKETS.len() - 1]
    }

    /// Renders the [`QUANTILES`] companion gauges for this histogram.
    fn render_quantiles(&self, out: &mut String, name: &str, labels: &str) {
        for (q, label) in QUANTILES {
            let _ = writeln!(
                out,
                "{name}_quantile{{{labels}quantile=\"{label}\"}} {}",
                self.quantile(q)
            );
        }
    }

    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, le) in BUCKETS.iter().enumerate() {
            cumulative += self.counts[i].get();
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.counts[BUCKETS.len()].get();
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_micros.get() as f64 / 1e6;
        let _ = writeln!(
            out,
            "{name}_sum{{{trim}}} {sum}",
            trim = labels.trim_end_matches(',')
        );
        let _ = writeln!(
            out,
            "{name}_count{{{trim}}} {count}",
            trim = labels.trim_end_matches(','),
            count = self.count.get()
        );
    }
}

/// The pipeline phases exported as histogram label values, in order.
pub const PHASES: [&str; 5] = ["tokenize", "filter", "score", "group", "total"];

/// All daemon metrics. One instance lives for the life of the server and
/// is shared by the connection threads, the executor, and the `/metrics`
/// handler.
#[derive(Debug)]
pub struct Metrics {
    /// `(endpoint, outcome)` → finished-request count.
    requests: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
    /// Jobs waiting in the bounded queue right now.
    pub queue_depth: Gauge,
    /// Recoveries executing right now (0 or 1 with a single executor).
    pub inflight: Gauge,
    /// Jobs refused with 503 because the queue was full.
    pub rejected_total: Counter,
    /// Jobs aborted by their deadline (504).
    pub deadline_total: Counter,
    /// Cumulative bit pairs scored (memoized broadcasts included).
    pub pairs_scored_total: Counter,
    /// Cumulative unique class-pair model calls.
    pub class_pairs_scored_total: Counter,
    /// Cumulative bit pairs served from the class-pair memo.
    pub pairs_memoized_total: Counter,
    /// Cumulative cone classes observed across requests.
    pub classes_total: Counter,
    /// Cumulative score-cache hits across recoveries.
    pub cache_hits_total: Counter,
    /// Cumulative score-cache misses across recoveries.
    pub cache_misses_total: Counter,
    /// Score-cache evictions since startup (snapshot of the cache's own
    /// monotone counter, refreshed by [`Metrics::observe_cache`]).
    pub cache_evictions: Gauge,
    /// Bytes resident in the score cache right now (snapshot).
    pub cache_bytes: Gauge,
    /// Entries resident in the score cache right now (snapshot).
    pub cache_entries: Gauge,
    /// Resident model identities, name → (version, hex fingerprint),
    /// exported as the `rebert_model_info` series — one sample per
    /// resident name, refreshed on every install/hot-swap.
    models: Mutex<BTreeMap<String, (u64, String)>>,
    /// `(tenant, outcome)` → finished-request count, exported as
    /// `rebert_tenant_requests_total`. Only populated when quotas are
    /// on (otherwise tenants are not distinguished).
    tenants: Mutex<BTreeMap<(String, &'static str), u64>>,
    /// Requests refused with 429 because a tenant ran out of tokens.
    pub throttled_total: Counter,
    /// Netlists processed through `POST /batch` archives.
    pub batch_netlists_total: Counter,
    /// Scoring throughput of the most recent completed recovery,
    /// stored as `f64::to_bits`.
    last_pairs_per_sec: AtomicU64,
    /// Completed recoveries per inference backend, indexed like
    /// [`Backend::ALL`]. The label is the *resolved* backend — what
    /// actually scored the pairs, not what the client requested.
    backend_requests: [Counter; Backend::ALL.len()],
    /// Most recent scoring throughput per backend (`f64::to_bits`; zero
    /// bits until that backend has completed a recovery).
    backend_pairs_per_sec: [AtomicU64; Backend::ALL.len()],
    /// Per-phase recovery timing histograms, indexed like [`PHASES`].
    phase: [Histogram; PHASES.len()],
    /// `(endpoint, model)` → wall-clock request-duration histogram,
    /// exported as `rebert_request_duration_seconds`. The model label
    /// is empty for endpoints where no model is involved.
    durations: Mutex<BTreeMap<(&'static str, String), Arc<Histogram>>>,
    /// Trace-ring records lost to overflow eviction or write
    /// contention — a snapshot of the ring's monotone counter,
    /// refreshed before every render and exported as
    /// `rebert_trace_dropped_total`.
    pub trace_dropped: Gauge,
}

/// One `(endpoint, model)` duration series snapshot, for
/// `GET /debug/stats`.
#[derive(Debug, Clone)]
pub struct DurationStat {
    /// Endpoint label (`recover`, `stream`, `batch`, …).
    pub endpoint: &'static str,
    /// Model label; empty when the endpoint has no model dimension.
    pub model: String,
    /// Observations recorded.
    pub count: u64,
    /// Estimated `[p50, p95, p99]` in seconds, in [`QUANTILES`] order.
    pub quantiles: [f64; QUANTILES.len()],
}

/// Index of `backend` into the [`Backend::ALL`]-shaped metric arrays.
fn backend_slot(backend: Backend) -> usize {
    Backend::ALL
        .iter()
        .position(|b| *b == backend)
        .expect("Backend::ALL covers every variant")
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Mutex::new(BTreeMap::new(), "serve.metrics.requests"),
            queue_depth: Gauge::default(),
            inflight: Gauge::default(),
            rejected_total: Counter::default(),
            deadline_total: Counter::default(),
            pairs_scored_total: Counter::default(),
            class_pairs_scored_total: Counter::default(),
            pairs_memoized_total: Counter::default(),
            classes_total: Counter::default(),
            cache_hits_total: Counter::default(),
            cache_misses_total: Counter::default(),
            cache_evictions: Gauge::default(),
            cache_bytes: Gauge::default(),
            cache_entries: Gauge::default(),
            models: Mutex::new(BTreeMap::new(), "serve.metrics.models"),
            tenants: Mutex::new(BTreeMap::new(), "serve.metrics.tenants"),
            throttled_total: Counter::default(),
            batch_netlists_total: Counter::default(),
            last_pairs_per_sec: AtomicU64::new(0),
            backend_requests: Default::default(),
            backend_pairs_per_sec: Default::default(),
            phase: Default::default(),
            durations: Mutex::new(BTreeMap::new(), "serve.metrics.durations"),
            trace_dropped: Gauge::default(),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one finished request against `(endpoint, outcome)`.
    pub fn count_request(&self, endpoint: &'static str, outcome: &'static str) {
        *self.requests.lock().entry((endpoint, outcome)).or_insert(0) += 1;
    }

    /// The count recorded for `(endpoint, outcome)`.
    pub fn request_count(&self, endpoint: &str, outcome: &str) -> u64 {
        self.requests
            .lock()
            .iter()
            .filter(|((e, o), _)| *e == endpoint && *o == outcome)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Folds one completed recovery's stats into the counters and
    /// histograms.
    pub fn record_recovery(&self, stats: &PipelineStats) {
        self.pairs_scored_total.add(stats.pairs_scored as u64);
        self.class_pairs_scored_total
            .add(stats.class_pairs_scored as u64);
        self.pairs_memoized_total.add(stats.pairs_memoized as u64);
        self.classes_total.add(stats.classes as u64);
        self.cache_hits_total.add(stats.cache_hits as u64);
        self.cache_misses_total.add(stats.cache_misses as u64);
        // Scrape-only f64 bit patterns, no cross-field ordering needed.
        self.last_pairs_per_sec
            // rebert-lint: allow(relaxed-publication-store)
            .store(stats.pairs_per_sec.to_bits(), Ordering::Relaxed);
        let slot = backend_slot(stats.backend);
        self.backend_requests[slot].inc();
        // rebert-lint: allow(relaxed-publication-store)
        self.backend_pairs_per_sec[slot].store(stats.pairs_per_sec.to_bits(), Ordering::Relaxed);
        let durations = [
            stats.tokenize_time,
            stats.filter_time,
            stats.score_time,
            stats.group_time,
            stats.elapsed,
        ];
        for (h, d) in self.phase.iter().zip(durations) {
            h.observe(d);
        }
    }

    /// Refreshes the point-in-time score-cache gauges from the shared
    /// cache. Called after each recovery and before every render so the
    /// exposition reflects the cache as scraped.
    pub fn observe_cache(&self, cache: &rebert::ScoreCache) {
        self.cache_evictions.set(cache.evictions());
        self.cache_bytes.set(cache.bytes() as u64);
        self.cache_entries.set(cache.len() as u64);
    }

    /// Records (or refreshes, after a hot swap) one resident model's
    /// identity for the `rebert_model_info` series.
    pub fn set_model_info(
        &self,
        name: impl Into<String>,
        version: u64,
        fingerprint: impl Into<String>,
    ) {
        self.models
            .lock()
            .insert(name.into(), (version, fingerprint.into()));
    }

    /// The recorded identity for `name`: `(version, fingerprint)`.
    pub fn model_info(&self, name: &str) -> Option<(u64, String)> {
        self.models.lock().get(name).cloned()
    }

    /// The recorded checkpoint fingerprint of the *only* resident model,
    /// if exactly one is registered (the single-model deployment shape).
    pub fn model_fingerprint(&self) -> Option<String> {
        let models = self.models.lock();
        if models.len() == 1 {
            models.values().next().map(|(_, fp)| fp.clone())
        } else {
            None
        }
    }

    /// Counts one finished request against `(tenant, outcome)`. Only
    /// called when tenant quotas are enabled.
    pub fn count_tenant(&self, tenant: &str, outcome: &'static str) {
        *self
            .tenants
            .lock()
            .entry((tenant.to_owned(), outcome))
            .or_insert(0) += 1;
    }

    /// The count recorded for `(tenant, outcome)`.
    pub fn tenant_count(&self, tenant: &str, outcome: &str) -> u64 {
        self.tenants
            .lock()
            .iter()
            .filter(|((t, o), _)| t == tenant && *o == outcome)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Completed recoveries recorded for `backend`.
    pub fn backend_request_count(&self, backend: Backend) -> u64 {
        self.backend_requests[backend_slot(backend)].get()
    }

    /// Most recent scoring throughput recorded for `backend` (0.0 until
    /// that backend completes a recovery).
    pub fn backend_pairs_per_sec(&self, backend: Backend) -> f64 {
        f64::from_bits(self.backend_pairs_per_sec[backend_slot(backend)].load(Ordering::Relaxed))
    }

    /// The per-phase histogram for one of [`PHASES`].
    pub fn phase_histogram(&self, phase: &str) -> Option<&Histogram> {
        PHASES
            .iter()
            .position(|p| *p == phase)
            .map(|i| &self.phase[i])
    }

    /// Scoring throughput of the most recent completed recovery
    /// (pairs/sec; `0.0` until one completes).
    pub fn last_pairs_per_sec(&self) -> f64 {
        f64::from_bits(self.last_pairs_per_sec.load(Ordering::Relaxed))
    }

    /// Records one finished request's wall-clock duration against its
    /// `(endpoint, model)` series. `model = None` for endpoints with no
    /// model dimension (health, metrics, debug).
    pub fn observe_request_duration(
        &self,
        endpoint: &'static str,
        model: Option<&str>,
        d: Duration,
    ) {
        let histogram = {
            let mut map = self.durations.lock();
            Arc::clone(
                map.entry((endpoint, model.unwrap_or("").to_owned()))
                    .or_default(),
            )
        };
        histogram.observe(d);
    }

    /// The duration histogram recorded for `(endpoint, model)`, if any
    /// request has landed there.
    pub fn request_duration(&self, endpoint: &str, model: Option<&str>) -> Option<Arc<Histogram>> {
        let want_model = model.unwrap_or("");
        self.durations
            .lock()
            .iter()
            .find(|((e, m), _)| *e == endpoint && m == want_model)
            .map(|(_, h)| Arc::clone(h))
    }

    /// Snapshot of every `(endpoint, model)` duration series with its
    /// estimated quantiles, for `GET /debug/stats`.
    pub fn request_duration_stats(&self) -> Vec<DurationStat> {
        self.durations
            .lock()
            .iter()
            .map(|((endpoint, model), h)| DurationStat {
                endpoint,
                model: model.clone(),
                count: h.count(),
                quantiles: QUANTILES.map(|(q, _)| h.quantile(q)),
            })
            .collect()
    }

    /// Renders everything in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP rebert_requests_total Finished HTTP requests by endpoint and outcome.\n# TYPE rebert_requests_total counter\n");
        for ((endpoint, outcome), count) in self.requests.lock().iter() {
            let _ = writeln!(
                out,
                "rebert_requests_total{{endpoint=\"{endpoint}\",outcome=\"{outcome}\"}} {count}"
            );
        }

        let gauges_and_counters: [(&str, &str, &str, u64); 16] = [
            (
                "rebert_queue_depth",
                "gauge",
                "Jobs waiting in the bounded queue.",
                self.queue_depth.get(),
            ),
            (
                "rebert_inflight",
                "gauge",
                "Recoveries executing right now.",
                self.inflight.get(),
            ),
            (
                "rebert_rejected_total",
                "counter",
                "Jobs refused with 503 (queue full or shutting down).",
                self.rejected_total.get(),
            ),
            (
                "rebert_deadline_exceeded_total",
                "counter",
                "Jobs aborted by their deadline (504).",
                self.deadline_total.get(),
            ),
            (
                "rebert_throttled_total",
                "counter",
                "Requests refused with 429 by the per-tenant quota.",
                self.throttled_total.get(),
            ),
            (
                "rebert_batch_netlists_total",
                "counter",
                "Netlists processed through POST /batch archives.",
                self.batch_netlists_total.get(),
            ),
            (
                "rebert_pairs_scored_total",
                "counter",
                "Cumulative bit pairs scored, memoized broadcasts included.",
                self.pairs_scored_total.get(),
            ),
            (
                "rebert_class_pairs_scored_total",
                "counter",
                "Cumulative unique class-pair model calls.",
                self.class_pairs_scored_total.get(),
            ),
            (
                "rebert_pairs_memoized_total",
                "counter",
                "Cumulative bit pairs served from the class-pair memo.",
                self.pairs_memoized_total.get(),
            ),
            (
                "rebert_cone_classes_total",
                "counter",
                "Cumulative cone classes across recoveries.",
                self.classes_total.get(),
            ),
            (
                "rebert_cache_hits_total",
                "counter",
                "Cumulative class-pair scores served from the score cache.",
                self.cache_hits_total.get(),
            ),
            (
                "rebert_cache_misses_total",
                "counter",
                "Cumulative class-pair scores computed and inserted into the score cache.",
                self.cache_misses_total.get(),
            ),
            (
                "rebert_cache_evictions_total",
                "counter",
                "Score-cache entries evicted to stay within the byte budget.",
                self.cache_evictions.get(),
            ),
            (
                "rebert_cache_bytes",
                "gauge",
                "Bytes resident in the score cache.",
                self.cache_bytes.get(),
            ),
            (
                "rebert_cache_entries",
                "gauge",
                "Entries resident in the score cache.",
                self.cache_entries.get(),
            ),
            (
                "rebert_trace_dropped_total",
                "counter",
                "Trace-ring records lost to overflow eviction or write contention.",
                self.trace_dropped.get(),
            ),
        ];
        for (name, kind, help, value) in gauges_and_counters {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}"
            );
        }

        {
            let models = self.models.lock();
            if !models.is_empty() {
                out.push_str("# HELP rebert_model_info Identity of each resident checkpoint (value is always 1).\n# TYPE rebert_model_info gauge\n");
                for (name, (version, fp)) in models.iter() {
                    let _ = writeln!(
                        out,
                        "rebert_model_info{{name=\"{name}\",version=\"{version}\",fingerprint=\"{fp}\"}} 1"
                    );
                }
            }
        }

        {
            let tenants = self.tenants.lock();
            if !tenants.is_empty() {
                out.push_str("# HELP rebert_tenant_requests_total Finished requests by tenant and outcome (quota mode only).\n# TYPE rebert_tenant_requests_total counter\n");
                for ((tenant, outcome), count) in tenants.iter() {
                    let _ = writeln!(
                        out,
                        "rebert_tenant_requests_total{{tenant=\"{tenant}\",outcome=\"{outcome}\"}} {count}"
                    );
                }
            }
        }

        let pps = f64::from_bits(self.last_pairs_per_sec.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "# HELP rebert_pairs_per_sec Scoring throughput of the most recent recovery.\n# TYPE rebert_pairs_per_sec gauge\nrebert_pairs_per_sec {pps}"
        );

        out.push_str("# HELP rebert_backend_requests_total Completed recoveries by resolved inference backend.\n# TYPE rebert_backend_requests_total counter\n");
        for backend in Backend::ALL {
            let _ = writeln!(
                out,
                "rebert_backend_requests_total{{backend=\"{}\"}} {}",
                backend.label(),
                self.backend_request_count(backend)
            );
        }
        out.push_str("# HELP rebert_backend_pairs_per_sec Most recent scoring throughput by resolved inference backend.\n# TYPE rebert_backend_pairs_per_sec gauge\n");
        for backend in Backend::ALL {
            let _ = writeln!(
                out,
                "rebert_backend_pairs_per_sec{{backend=\"{}\"}} {}",
                backend.label(),
                self.backend_pairs_per_sec(backend)
            );
        }

        // Per-site lock telemetry from the rebert-sync wrappers. The
        // stats vector is empty in release builds (the wrappers compile
        // to transparent newtypes), so the series only appears when a
        // debug daemon runs — scrapers must treat it as optional.
        let lock_sites = rebert_sync::site_stats();
        if !lock_sites.is_empty() {
            out.push_str("# HELP rebert_lock_acquisitions_total Lock acquisitions by site (debug builds only).\n# TYPE rebert_lock_acquisitions_total counter\n");
            for s in &lock_sites {
                let _ = writeln!(
                    out,
                    "rebert_lock_acquisitions_total{{site=\"{}\"}} {}",
                    s.name, s.acquisitions
                );
            }
            out.push_str("# HELP rebert_lock_contended_total Lock acquisitions that had to block (debug builds only).\n# TYPE rebert_lock_contended_total counter\n");
            for s in &lock_sites {
                let _ = writeln!(
                    out,
                    "rebert_lock_contended_total{{site=\"{}\"}} {}",
                    s.name, s.contended
                );
            }
            out.push_str("# HELP rebert_lock_wait_seconds_total Time spent blocked waiting for a lock by site (debug builds only).\n# TYPE rebert_lock_wait_seconds_total counter\n");
            for s in &lock_sites {
                let _ = writeln!(
                    out,
                    "rebert_lock_wait_seconds_total{{site=\"{}\"}} {}",
                    s.name,
                    s.wait_ns as f64 / 1e9
                );
            }
            out.push_str("# HELP rebert_lock_hold_seconds_total Time a lock was held by site (debug builds only).\n# TYPE rebert_lock_hold_seconds_total counter\n");
            for s in &lock_sites {
                let _ = writeln!(
                    out,
                    "rebert_lock_hold_seconds_total{{site=\"{}\"}} {}",
                    s.name,
                    s.hold_ns as f64 / 1e9
                );
            }
        }

        out.push_str("# HELP rebert_phase_seconds Recovery pipeline phase durations.\n# TYPE rebert_phase_seconds histogram\n");
        for (phase, h) in PHASES.iter().zip(&self.phase) {
            h.render(
                &mut out,
                "rebert_phase_seconds",
                &format!("phase=\"{phase}\","),
            );
        }
        out.push_str("# HELP rebert_phase_seconds_quantile Estimated phase-duration quantiles, interpolated from the histogram buckets.\n# TYPE rebert_phase_seconds_quantile gauge\n");
        for (phase, h) in PHASES.iter().zip(&self.phase) {
            h.render_quantiles(
                &mut out,
                "rebert_phase_seconds",
                &format!("phase=\"{phase}\","),
            );
        }

        {
            let durations = self.durations.lock();
            if !durations.is_empty() {
                out.push_str("# HELP rebert_request_duration_seconds Wall-clock request duration by endpoint (and model where one is involved).\n# TYPE rebert_request_duration_seconds histogram\n");
                for ((endpoint, model), h) in durations.iter() {
                    h.render(
                        &mut out,
                        "rebert_request_duration_seconds",
                        &duration_labels(endpoint, model),
                    );
                }
                out.push_str("# HELP rebert_request_duration_seconds_quantile Estimated request-duration quantiles, interpolated from the histogram buckets.\n# TYPE rebert_request_duration_seconds_quantile gauge\n");
                for ((endpoint, model), h) in durations.iter() {
                    h.render_quantiles(
                        &mut out,
                        "rebert_request_duration_seconds",
                        &duration_labels(endpoint, model),
                    );
                }
            }
        }
        out
    }
}

/// Label prefix for one `(endpoint, model)` duration series; the model
/// label is omitted when empty.
fn duration_labels(endpoint: &str, model: &str) -> String {
    if model.is_empty() {
        format!("endpoint=\"{endpoint}\",")
    } else {
        format!("endpoint=\"{endpoint}\",model=\"{model}\",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> PipelineStats {
        PipelineStats {
            pairs_total: 10,
            pairs_filtered: 4,
            pairs_scored: 6,
            classes: 3,
            class_pairs_scored: 4,
            pairs_memoized: 2,
            cache_hits: 3,
            cache_misses: 1,
            pairs_per_sec: 123.5,
            backend: Backend::F32Scalar,
            tokenize_time: Duration::from_micros(800),
            filter_time: Duration::from_millis(3),
            score_time: Duration::from_millis(40),
            group_time: Duration::from_micros(90),
            elapsed: Duration::from_millis(44),
            warnings: Vec::new(),
        }
    }

    #[test]
    fn counters_and_gauges_move() {
        let m = Metrics::new();
        m.count_request("recover", "ok");
        m.count_request("recover", "ok");
        m.count_request("metrics", "ok");
        assert_eq!(m.request_count("recover", "ok"), 2);
        assert_eq!(m.request_count("metrics", "ok"), 1);
        assert_eq!(m.request_count("recover", "rejected"), 0);
        m.inflight.inc();
        assert_eq!(m.inflight.get(), 1);
        m.inflight.dec();
        m.inflight.dec(); // saturates
        assert_eq!(m.inflight.get(), 0);
        m.queue_depth.set(7);
        assert_eq!(m.queue_depth.get(), 7);
    }

    #[test]
    fn recovery_stats_accumulate() {
        let m = Metrics::new();
        m.record_recovery(&sample_stats());
        m.record_recovery(&sample_stats());
        assert_eq!(m.pairs_scored_total.get(), 12);
        assert_eq!(m.class_pairs_scored_total.get(), 8);
        assert_eq!(m.pairs_memoized_total.get(), 4);
        assert_eq!(m.classes_total.get(), 6);
        assert_eq!(m.cache_hits_total.get(), 6);
        assert_eq!(m.cache_misses_total.get(), 2);
        assert_eq!(m.phase_histogram("score").unwrap().count(), 2);
        assert_eq!(m.phase_histogram("nonsense").map(Histogram::count), None);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(500)); // ≤ 0.001
        h.observe(Duration::from_millis(50)); // ≤ 0.1
        h.observe(Duration::from_secs(120)); // +Inf only
        let mut out = String::new();
        h.render(&mut out, "x", "");
        let mut last = 0u64;
        let mut inf = 0u64;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("x_bucket{") {
                let v: u64 = rest.split(' ').nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "buckets must be cumulative: {out}");
                last = v;
                inf = v;
            }
        }
        assert_eq!(inf, 3, "+Inf bucket counts every observation");
        assert!(out.contains("x_count{} 3"));
    }

    #[test]
    fn render_emits_help_and_type_for_every_family() {
        let m = Metrics::new();
        m.count_request("recover", "ok");
        m.record_recovery(&sample_stats());
        let text = m.render();
        for family in [
            "rebert_requests_total",
            "rebert_queue_depth",
            "rebert_inflight",
            "rebert_rejected_total",
            "rebert_deadline_exceeded_total",
            "rebert_pairs_scored_total",
            "rebert_class_pairs_scored_total",
            "rebert_pairs_memoized_total",
            "rebert_cone_classes_total",
            "rebert_pairs_per_sec",
            "rebert_phase_seconds",
            "rebert_cache_hits_total",
            "rebert_cache_misses_total",
            "rebert_cache_evictions_total",
            "rebert_cache_bytes",
            "rebert_cache_entries",
        ] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
        assert!(text.contains("rebert_phase_seconds_bucket{phase=\"score\",le=\"+Inf\"} 1"));
        assert!(text.contains("rebert_phase_seconds_count{phase=\"total\"} 1"));
        assert!(text.contains("rebert_pairs_per_sec 123.5"));
        for family in [
            "rebert_backend_requests_total",
            "rebert_backend_pairs_per_sec",
        ] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
        }
        assert!(text.contains("rebert_backend_requests_total{backend=\"f32-scalar\"} 1"));
        assert!(text.contains("rebert_backend_requests_total{backend=\"int8\"} 0"));
        assert!(text.contains("rebert_backend_pairs_per_sec{backend=\"f32-scalar\"} 123.5"));
    }

    #[test]
    fn cache_snapshot_and_model_info_series() {
        let m = Metrics::new();
        assert_eq!(m.model_fingerprint(), None);
        assert!(
            !m.render().contains("rebert_model_info"),
            "no info series until a fingerprint is recorded"
        );
        m.set_model_info("default", 1, "00c0ffee00c0ffee");
        let cache = rebert::ScoreCache::new(rebert::ScoreCache::ENTRY_BYTES, 7);
        cache.insert(
            rebert::ScoreCache::pair_key(7, Backend::F32Scalar, 1, 2),
            0.5,
        );
        cache.insert(
            rebert::ScoreCache::pair_key(7, Backend::F32Scalar, 3, 4),
            0.25,
        );
        m.observe_cache(&cache);
        assert_eq!(m.cache_entries.get(), 1, "one-entry budget evicts");
        assert_eq!(m.cache_bytes.get(), rebert::ScoreCache::ENTRY_BYTES as u64);
        assert_eq!(m.cache_evictions.get(), cache.evictions());
        let text = m.render();
        assert!(text.contains(
            "rebert_model_info{name=\"default\",version=\"1\",fingerprint=\"00c0ffee00c0ffee\"} 1"
        ));
        assert!(text.contains(&format!(
            "rebert_cache_bytes {}",
            rebert::ScoreCache::ENTRY_BYTES
        )));
        assert!(text.contains("rebert_cache_entries 1"));
    }

    #[test]
    fn model_info_tracks_versions_per_name() {
        let m = Metrics::new();
        m.set_model_info("default", 1, "aaaa");
        assert_eq!(m.model_fingerprint(), Some("aaaa".to_owned()));
        m.set_model_info("default", 2, "bbbb");
        assert_eq!(m.model_info("default"), Some((2, "bbbb".to_owned())));
        m.set_model_info("lut", 1, "cccc");
        assert_eq!(m.model_fingerprint(), None, "ambiguous with two residents");
        let text = m.render();
        assert!(text
            .contains("rebert_model_info{name=\"default\",version=\"2\",fingerprint=\"bbbb\"} 1"));
        assert!(
            text.contains("rebert_model_info{name=\"lut\",version=\"1\",fingerprint=\"cccc\"} 1")
        );
        assert!(!text.contains("\"aaaa\""), "swapped-out identity dropped");
    }

    #[test]
    fn tenant_counters_render_only_when_populated() {
        let m = Metrics::new();
        assert!(!m.render().contains("rebert_tenant_requests_total"));
        m.count_tenant("acme", "ok");
        m.count_tenant("acme", "ok");
        m.count_tenant("acme", "throttled");
        assert_eq!(m.tenant_count("acme", "ok"), 2);
        assert_eq!(m.tenant_count("acme", "throttled"), 1);
        assert_eq!(m.tenant_count("globex", "ok"), 0);
        let text = m.render();
        assert!(text.contains("rebert_tenant_requests_total{tenant=\"acme\",outcome=\"ok\"} 2"));
        assert!(
            text.contains("rebert_tenant_requests_total{tenant=\"acme\",outcome=\"throttled\"} 1")
        );
        assert!(text.contains("# HELP rebert_throttled_total "));
        assert!(text.contains("# HELP rebert_batch_netlists_total "));
    }

    /// Debug builds carry the rebert-sync lock tracker, so `/metrics`
    /// must expose the per-site lock counters; release builds compile
    /// the wrappers to transparent newtypes and must omit the series.
    #[test]
    fn lock_site_series_match_the_build_profile() {
        let m = Metrics::new();
        m.count_request("recover", "ok"); // takes serve.metrics.requests
        let text = m.render();
        if cfg!(debug_assertions) {
            assert!(
                text.contains("rebert_lock_acquisitions_total{site=\"serve.metrics.requests\"}"),
                "debug build must export lock telemetry: {text}"
            );
            assert!(text.contains("# TYPE rebert_lock_wait_seconds_total counter"));
            assert!(text.contains("# TYPE rebert_lock_hold_seconds_total counter"));
            assert!(text.contains("# TYPE rebert_lock_contended_total counter"));
        } else {
            assert!(
                !text.contains("rebert_lock_"),
                "release build must not export lock telemetry: {text}"
            );
        }
    }

    #[test]
    fn quantiles_interpolate_within_the_owning_bucket() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reports zero");
        // Ten observations in the (0.02, 0.1] bucket: p50 ranks 5th of
        // 10, landing 50% into the bucket's width.
        for _ in 0..10 {
            h.observe(Duration::from_millis(50));
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 0.06).abs() < 1e-9, "p50 = {p50}");
        // p99 ranks ceil(9.9) = 10th of 10 — the top of the bucket.
        assert!((h.quantile(0.99) - 0.1).abs() < 1e-9);
        // A +Inf outlier clamps to the largest finite bound.
        h.observe(Duration::from_secs(600));
        assert_eq!(h.quantile(1.0), BUCKETS[BUCKETS.len() - 1]);
        // Quantiles never decrease in q.
        assert!(h.quantile(0.95) >= h.quantile(0.5));
    }

    #[test]
    fn every_histogram_family_renders_quantile_gauges() {
        let m = Metrics::new();
        m.record_recovery(&sample_stats());
        m.observe_request_duration("recover", Some("default"), Duration::from_millis(44));
        m.observe_request_duration("metrics", None, Duration::from_micros(300));
        let text = m.render();
        for family in [
            "rebert_phase_seconds_quantile",
            "rebert_request_duration_seconds",
            "rebert_request_duration_seconds_quantile",
        ] {
            assert!(
                text.contains(&format!("# HELP {family} "))
                    && text.contains(&format!("# TYPE {family} ")),
                "missing HELP/TYPE for {family}"
            );
        }
        for (_, q) in QUANTILES {
            assert!(
                text.contains(&format!(
                    "rebert_phase_seconds_quantile{{phase=\"score\",quantile=\"{q}\"}}"
                )),
                "missing score p{q}: {text}"
            );
        }
        assert!(text.contains(
            "rebert_request_duration_seconds_bucket{endpoint=\"recover\",model=\"default\",le=\"0.1\"} 1"
        ));
        assert!(text.contains("rebert_request_duration_seconds_count{endpoint=\"metrics\"} 1"));
        assert!(text.contains(
            "rebert_request_duration_seconds_quantile{endpoint=\"recover\",model=\"default\",quantile=\"0.99\"}"
        ));
    }

    #[test]
    fn duration_series_are_queryable_and_snapshot() {
        let m = Metrics::new();
        assert!(m.request_duration("recover", None).is_none());
        assert!(m.request_duration_stats().is_empty());
        m.observe_request_duration("recover", Some("default"), Duration::from_millis(10));
        m.observe_request_duration("recover", Some("default"), Duration::from_millis(12));
        let h = m
            .request_duration("recover", Some("default"))
            .expect("series exists");
        assert_eq!(h.count(), 2);
        let stats = m.request_duration_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].endpoint, "recover");
        assert_eq!(stats[0].model, "default");
        assert_eq!(stats[0].count, 2);
        assert!(stats[0].quantiles[0] > 0.0);
        assert!(stats[0].quantiles[2] >= stats[0].quantiles[0]);
    }

    #[test]
    fn trace_dropped_snapshot_renders_as_counter() {
        let m = Metrics::new();
        m.trace_dropped.set(7);
        let text = m.render();
        assert!(text.contains("# TYPE rebert_trace_dropped_total counter"));
        assert!(text.contains("rebert_trace_dropped_total 7"));
    }

    #[test]
    fn backend_metrics_track_each_backend_separately() {
        let m = Metrics::new();
        let mut stats = sample_stats();
        m.record_recovery(&stats);
        stats.backend = Backend::Int8;
        stats.pairs_per_sec = 500.0;
        m.record_recovery(&stats);
        m.record_recovery(&stats);
        assert_eq!(m.backend_request_count(Backend::F32Scalar), 1);
        assert_eq!(m.backend_request_count(Backend::Int8), 2);
        assert_eq!(m.backend_request_count(Backend::F32Simd), 0);
        assert_eq!(m.backend_pairs_per_sec(Backend::F32Scalar), 123.5);
        assert_eq!(m.backend_pairs_per_sec(Backend::Int8), 500.0);
        assert_eq!(m.backend_pairs_per_sec(Backend::F32Simd), 0.0);
    }
}
