//! The embedded dashboard: one self-contained HTML page served at
//! `GET /` when the daemon runs with [`crate::ServeConfig::web`].
//!
//! Deliberately dependency-free — no framework, no bundler, no CDN
//! fetch — so `rebert serve --web` works on an air-gapped bench
//! machine. The page polls `GET /debug/stats` for the tiles and tables,
//! and drives `POST /recover/stream` for the live phase waterfall and
//! the recovered-word bit heatmap.

/// The whole dashboard, inlined at compile time.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>rebert · live</title>
<style>
  :root {
    --bg: #0d1117; --panel: #161b22; --edge: #30363d; --ink: #c9d1d9;
    --dim: #8b949e; --accent: #58a6ff; --ok: #3fb950; --warn: #d29922;
    --bad: #f85149; --mono: ui-monospace, SFMono-Regular, Menlo, monospace;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--ink);
         font: 14px/1.45 var(--mono); }
  header { display: flex; align-items: baseline; gap: 12px;
           padding: 14px 20px; border-bottom: 1px solid var(--edge); }
  header h1 { margin: 0; font-size: 16px; font-weight: 600; }
  header .sub { color: var(--dim); font-size: 12px; }
  main { padding: 16px 20px; max-width: 1180px; margin: 0 auto; }
  section { margin-bottom: 22px; }
  h2 { font-size: 12px; font-weight: 600; text-transform: uppercase;
       letter-spacing: .08em; color: var(--dim); margin: 0 0 8px; }
  .tiles { display: grid; gap: 10px;
           grid-template-columns: repeat(auto-fill, minmax(150px, 1fr)); }
  .tile { background: var(--panel); border: 1px solid var(--edge);
          border-radius: 6px; padding: 10px 12px; }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .k { color: var(--dim); font-size: 11px; margin-top: 2px; }
  table { border-collapse: collapse; width: 100%;
          background: var(--panel); border: 1px solid var(--edge);
          border-radius: 6px; overflow: hidden; }
  th, td { text-align: left; padding: 5px 10px; font-size: 12px;
           border-bottom: 1px solid var(--edge); }
  th { color: var(--dim); font-weight: 600; }
  tr:last-child td { border-bottom: none; }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  textarea { width: 100%; min-height: 130px; background: var(--panel);
             color: var(--ink); border: 1px solid var(--edge);
             border-radius: 6px; padding: 8px; font: 12px var(--mono);
             resize: vertical; }
  button { background: var(--accent); color: #0d1117; border: 0;
           border-radius: 6px; padding: 7px 16px; font: 600 13px var(--mono);
           cursor: pointer; margin-top: 8px; }
  button:disabled { opacity: .4; cursor: default; }
  #waterfall { margin-top: 12px; }
  .wf-row { display: flex; align-items: center; gap: 8px; margin: 3px 0; }
  .wf-name { width: 80px; color: var(--dim); font-size: 12px; }
  .wf-track { flex: 1; height: 14px; background: var(--panel);
              border: 1px solid var(--edge); border-radius: 3px;
              position: relative; overflow: hidden; }
  .wf-bar { position: absolute; top: 0; bottom: 0; border-radius: 2px;
            background: var(--accent); opacity: .85; min-width: 2px; }
  .wf-bar.live { background: var(--warn); }
  .wf-us { width: 90px; text-align: right; color: var(--dim);
           font-size: 11px; }
  #scorebar { height: 8px; background: var(--panel);
              border: 1px solid var(--edge); border-radius: 4px;
              overflow: hidden; margin-top: 8px; }
  #scorebar > div { height: 100%; width: 0; background: var(--ok);
                    transition: width .15s; }
  #streamlog { max-height: 160px; overflow-y: auto; font-size: 11px;
               color: var(--dim); background: var(--panel);
               border: 1px solid var(--edge); border-radius: 6px;
               padding: 6px 10px; margin-top: 10px;
               white-space: pre-wrap; }
  #heatmap { display: grid; gap: 2px; margin-top: 10px; }
  .hm-row { display: flex; gap: 2px; align-items: center; }
  .hm-label { width: 60px; font-size: 10px; color: var(--dim);
              text-align: right; padding-right: 6px; }
  .hm-cell { width: 14px; height: 14px; border-radius: 2px;
             background: #21262d; }
  .hm-cell.on { background: var(--ok); }
  .err { color: var(--bad); }
  .muted { color: var(--dim); }
</style>
</head>
<body>
<header>
  <h1>rebert</h1>
  <div class="sub">gate-level → word-level recovery · live plane</div>
  <div class="sub" id="conn" style="margin-left:auto">connecting…</div>
</header>
<main>
  <section>
    <h2>Daemon</h2>
    <div class="tiles" id="tiles"></div>
  </section>
  <section>
    <h2>Latency quantiles (seconds)</h2>
    <table id="phases"><thead><tr>
      <th>phase</th><th class="num">count</th>
      <th class="num">p50</th><th class="num">p95</th><th class="num">p99</th>
    </tr></thead><tbody></tbody></table>
  </section>
  <section>
    <h2>Endpoints</h2>
    <table id="endpoints"><thead><tr>
      <th>endpoint</th><th>model</th><th class="num">count</th>
      <th class="num">p50</th><th class="num">p95</th><th class="num">p99</th>
    </tr></thead><tbody></tbody></table>
  </section>
  <section>
    <h2>Watch a recovery</h2>
    <textarea id="netlist" spellcheck="false"
      placeholder="# paste a .bench or Verilog netlist, then Recover&#10;INPUT(a0)&#10;INPUT(b0)&#10;s0 = XOR(a0, b0)&#10;OUTPUT(s0)"></textarea>
    <button id="go">Recover (streaming)</button>
    <div id="scorebar"><div></div></div>
    <div id="waterfall"></div>
    <div id="streamlog" hidden></div>
    <div id="result"></div>
    <div id="heatmap"></div>
  </section>
</main>
<script>
"use strict";
const $ = (s) => document.querySelector(s);
const fmt = (v) => v >= 1e6 ? (v / 1e6).toFixed(1) + "M"
  : v >= 1e3 ? (v / 1e3).toFixed(1) + "k" : String(v);
const secs = (v) => v >= 1 ? v.toFixed(2) + "s"
  : v >= 1e-3 ? (v * 1e3).toFixed(1) + "ms" : (v * 1e6).toFixed(0) + "µs";

function tile(value, label) {
  return '<div class="tile"><div class="v">' + value +
    '</div><div class="k">' + label + "</div></div>";
}

async function poll() {
  try {
    const r = await fetch("/debug/stats");
    const s = await r.json();
    $("#conn").textContent = "live";
    $("#conn").className = "sub";
    const hitPct = (s.cache.hit_rate * 100).toFixed(1) + "%";
    $("#tiles").innerHTML =
      tile(s.queue_depth + "/" + s.queue_capacity, "queue") +
      tile(String(s.inflight), "inflight") +
      tile(fmt(s.pairs_scored_total), "pairs scored") +
      tile(fmt(Math.round(s.pairs_per_sec)), "pairs/sec") +
      tile(hitPct, "cache hit rate") +
      tile(fmt(s.cache.entries), "cache entries") +
      tile(String(s.deadline_total), "deadlines") +
      tile(String(s.rejected_total), "rejected") +
      tile(String(s.trace.dropped), "trace drops");
    $("#phases tbody").innerHTML = s.phases.map((p) =>
      "<tr><td>" + p.phase + '</td><td class="num">' + p.count +
      '</td><td class="num">' + secs(p.p50) +
      '</td><td class="num">' + secs(p.p95) +
      '</td><td class="num">' + secs(p.p99) + "</td></tr>").join("");
    $("#endpoints tbody").innerHTML = s.endpoints.map((e) =>
      "<tr><td>" + e.endpoint + '</td><td class="muted">' + (e.model || "—") +
      '</td><td class="num">' + e.count +
      '</td><td class="num">' + secs(e.p50) +
      '</td><td class="num">' + secs(e.p95) +
      '</td><td class="num">' + secs(e.p99) + "</td></tr>").join("");
  } catch (err) {
    $("#conn").textContent = "unreachable";
    $("#conn").className = "sub err";
  }
}
poll();
setInterval(poll, 2000);

// --- streaming recovery -------------------------------------------------
const phases = ["tokenize", "filter", "score", "group"];
let wf = null;

function resetWaterfall() {
  wf = { t0: null, spans: {} };
  $("#waterfall").innerHTML = phases.map((p) =>
    '<div class="wf-row"><div class="wf-name">' + p +
    '</div><div class="wf-track" id="wf-' + p +
    '"></div><div class="wf-us" id="us-' + p + '"></div></div>').join("");
  $("#scorebar > div").style.width = "0";
  $("#result").textContent = "";
  $("#heatmap").innerHTML = "";
  $("#streamlog").hidden = false;
  $("#streamlog").textContent = "";
}

function logLine(text) {
  const el = $("#streamlog");
  el.textContent += text + "\n";
  el.scrollTop = el.scrollHeight;
}

function drawWaterfall(now) {
  const span = Math.max(now - wf.t0, 1);
  for (const p of phases) {
    const s = wf.spans[p];
    if (!s) continue;
    const end = s.end == null ? now : s.end;
    const left = ((s.begin - wf.t0) / span) * 100;
    const width = Math.max(((end - s.begin) / span) * 100, 0.5);
    $("#wf-" + p).innerHTML = '<div class="wf-bar' +
      (s.end == null ? " live" : "") + '" style="left:' + left +
      "%;width:" + width + '%"></div>';
    $("#us-" + p).textContent = s.end == null
      ? "…" : ((s.end - s.begin) / 1000).toFixed(1) + "ms";
  }
}

function onRecord(rec) {
  if (rec.type === "meta") {
    logLine("meta: " + rec.design + " · " + rec.bits + " bits · model " +
      rec.model_fingerprint.slice(0, 12));
    return;
  }
  if (rec.type === "error") {
    logLine("error: " + rec.error);
    $("#result").innerHTML = '<span class="err">' + rec.error + "</span>";
    return;
  }
  if (rec.type !== "progress") return;
  if (wf.t0 == null) wf.t0 = rec.ts_us;
  if (rec.event === "begin" && phases.includes(rec.phase)) {
    wf.spans[rec.phase] = { begin: rec.ts_us, end: null };
  } else if (rec.event === "end" && wf.spans[rec.phase]) {
    wf.spans[rec.phase].end = rec.ts_us;
  } else if (rec.event === "scoring") {
    $("#scorebar > div").style.width = rec.percent.toFixed(1) + "%";
    logLine("scoring " + rec.done + "/" + rec.total + " pairs (" +
      rec.percent.toFixed(1) + "%)");
  } else if (rec.event === "update") {
    logLine("progress: " + rec.phase + " " + rec.pct + "%" +
      (rec.cache_hits != null
        ? " · cache " + rec.cache_hits + " hits / " + rec.cache_misses +
          " misses" : ""));
  }
  drawWaterfall(rec.ts_us);
}

function drawHeatmap(result) {
  const words = result.words || [];
  const names = result.names || [];
  const bits = result.bits || 0;
  if (!words.length) return;
  const index = {};
  names.forEach((n, i) => { index[i] = n; });
  let html = "";
  words.forEach((word, w) => {
    const on = new Set(word);
    let cells = "";
    for (let b = 0; b < bits; b++) {
      const hit = on.has(b);
      cells += '<div class="hm-cell' + (hit ? " on" : "") + '" title="' +
        (index[b] || "bit " + b) + (hit ? " ∈ " : " ∉ ") + "word " + w +
        '"></div>';
    }
    html += '<div class="hm-row"><div class="hm-label">w' + w +
      "</div>" + cells + "</div>";
  });
  $("#heatmap").innerHTML = html;
}

$("#go").addEventListener("click", async () => {
  const text = $("#netlist").value;
  if (!text.trim()) return;
  $("#go").disabled = true;
  resetWaterfall();
  try {
    const resp = await fetch("/recover/stream", { method: "POST", body: text });
    if (!resp.ok) {
      $("#result").innerHTML = '<span class="err">HTTP ' + resp.status +
        ": " + (await resp.text()) + "</span>";
      return;
    }
    const reader = resp.body.getReader();
    const decoder = new TextDecoder();
    let buf = "";
    let final = null;
    for (;;) {
      const { done, value } = await reader.read();
      if (done) break;
      buf += decoder.decode(value, { stream: true });
      let nl;
      while ((nl = buf.indexOf("\n")) >= 0) {
        const line = buf.slice(0, nl).trim();
        buf = buf.slice(nl + 1);
        if (!line) continue;
        const rec = JSON.parse(line);
        if (rec.type) onRecord(rec);
        else final = rec;
      }
    }
    if (final) {
      const st = final.stats;
      $("#result").textContent = "recovered " + final.words.length +
        " words from " + final.bits + " bits in " +
        (st.elapsed_us / 1000).toFixed(1) + "ms (" + st.backend + ", " +
        fmt(Math.round(st.pairs_per_sec)) + " pairs/sec)";
      drawHeatmap(final);
      $("#scorebar > div").style.width = "100%";
    }
  } catch (err) {
    $("#result").innerHTML = '<span class="err">' + err + "</span>";
  } finally {
    $("#go").disabled = false;
  }
});
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained() {
        // No external fetches: everything the page needs ships in the
        // one constant, so `--web` works without network or assets.
        assert!(DASHBOARD_HTML.starts_with("<!doctype html>"));
        for forbidden in ["http://", "https://", "<link", "src=\"//"] {
            assert!(
                !DASHBOARD_HTML.contains(forbidden),
                "dashboard must not reference external resources (found `{forbidden}`)"
            );
        }
        // And it talks to the two live endpoints it documents.
        assert!(DASHBOARD_HTML.contains("/debug/stats"));
        assert!(DASHBOARD_HTML.contains("/recover/stream"));
    }
}
