//! A minimal HTTP/1.1 server/message layer over `std::io` — just enough
//! for the daemon's request/response cycle (one request per connection,
//! `Connection: close`), with hard limits on header and body sizes so a
//! misbehaving client cannot exhaust the process.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body (netlists are text; 64 MiB is generous).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (or client hang-up mid-request).
    Io(io::Error),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The request exceeds a size limit (maps to 413).
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http request: {m}"),
            HttpError::TooLarge(what) => write!(f, "request {what} too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request: method, target (path plus optional query), headers
/// in arrival order, and the raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target, e.g. `/recover?format=bench`.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Err(HttpError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            )));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                buf.extend_from_slice(&available[..i]);
                r.consume(i + 1);
                break;
            }
            None => {
                let n = available.len();
                buf.extend_from_slice(available);
                r.consume(n);
            }
        }
        if buf.len() > MAX_LINE {
            return Err(HttpError::TooLarge("header line"));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > MAX_LINE {
        return Err(HttpError::TooLarge("header line"));
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-utf8 header line".into()))
}

/// Reads one request. Returns `Ok(None)` if the client closed the
/// connection cleanly before sending anything.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    // Peek for clean EOF before the request line.
    if r.fill_buf()?.is_empty() {
        return Ok(None);
    }
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line lacks a target".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// The canonical reason phrase for the handful of statuses the daemon
/// emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Connection` are added on write).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: &rebert::json::Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.to_string().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response (HTTP/1.1, `Connection: close`).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(
            w,
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /recover?x=1 HTTP/1.1\r\nHost: localhost\r\nX-Rebert-Deadline-Ms: 250\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/recover");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("X-REBERT-DEADLINE-MS"), Some("250"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/healthz");
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: cow\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n")
            .header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
