//! A tiny blocking HTTP client for talking to the daemon — used by
//! `rebert submit` and the integration tests. One request per
//! connection, mirroring the server's `Connection: close` discipline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed daemon reply.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw response body.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_reply(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// A parsed reply head: the reader (positioned at the body), the
/// status code, and the response headers in arrival order.
type ReplyHead = (BufReader<TcpStream>, u16, Vec<(String, String)>);

/// Sends one request and parses the reply head (status line + headers),
/// leaving the body unread behind the returned reader.
fn send_request(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<ReplyHead> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: rebert\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_reply(format!("bad status line `{}`", status_line.trim_end())))?;

    let mut reply_headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_reply(format!("bad reply header `{line}`")))?;
        reply_headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok((reader, status, reply_headers))
}

/// Sends one request and reads the full reply.
///
/// # Errors
///
/// Returns the connect/transport error, or `InvalidData` if the reply
/// is not parseable HTTP.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpReply> {
    let (mut reader, status, reply_headers) = send_request(addr, method, target, headers, body)?;
    // The server always closes after one response, so read to EOF.
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(HttpReply {
        status,
        headers: reply_headers,
        body,
    })
}

/// Submits a netlist to `POST /recover`.
///
/// `format` is `Some("bench")`/`Some("verilog")` to pin the parser, or
/// `None` to let the daemon sniff. `deadline_ms` bounds the recovery.
///
/// # Errors
///
/// Transport or reply-parse failure; HTTP-level errors (400/503/504)
/// come back as a normal [`HttpReply`].
pub fn submit_recover(
    addr: impl ToSocketAddrs,
    netlist_text: &str,
    format: Option<&str>,
    deadline_ms: Option<u64>,
) -> std::io::Result<HttpReply> {
    submit_recover_with(addr, netlist_text, format, deadline_ms, None)
}

/// Submits a netlist to `POST /recover` with an explicit backend.
///
/// `precision` is a backend label (`f32`, `f32-simd`, `int8`) sent as
/// `X-Rebert-Precision`, or `None` for the daemon's default (scalar).
/// The label is passed through verbatim — an unknown value earns a 400
/// reply with a diagnostic body rather than a client-side error.
///
/// # Errors
///
/// Transport or reply-parse failure; HTTP-level errors (400/503/504)
/// come back as a normal [`HttpReply`].
pub fn submit_recover_with(
    addr: impl ToSocketAddrs,
    netlist_text: &str,
    format: Option<&str>,
    deadline_ms: Option<u64>,
    precision: Option<&str>,
) -> std::io::Result<HttpReply> {
    submit_recover_opts(addr, netlist_text, format, deadline_ms, precision, true)
}

/// [`submit_recover_with`] plus the cache switch: `use_cache: false`
/// sends `X-Rebert-No-Cache: 1`, making the daemon score this request
/// from scratch without reading or writing its shared score cache.
///
/// # Errors
///
/// Transport or reply-parse failure; HTTP-level errors (400/503/504)
/// come back as a normal [`HttpReply`].
pub fn submit_recover_opts(
    addr: impl ToSocketAddrs,
    netlist_text: &str,
    format: Option<&str>,
    deadline_ms: Option<u64>,
    precision: Option<&str>,
    use_cache: bool,
) -> std::io::Result<HttpReply> {
    submit(
        addr,
        netlist_text,
        &SubmitOptions {
            format: format.map(str::to_owned),
            deadline_ms,
            precision: precision.map(str::to_owned),
            use_cache,
            ..SubmitOptions::default()
        },
    )
}

/// Everything a `POST /recover` (or `/batch`) request can carry. The
/// positional `submit_recover*` helpers cover the common shapes; this
/// struct is the full surface: model selection, tenant attribution, and
/// client-chosen request ids.
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// `Some("bench")`/`Some("verilog")` pins the parser; `None` lets
    /// the daemon sniff.
    pub format: Option<String>,
    /// Recovery deadline, sent as `X-Rebert-Deadline-Ms`.
    pub deadline_ms: Option<u64>,
    /// Backend label (`f32`, `f32-simd`, `int8`) for `X-Rebert-Precision`.
    pub precision: Option<String>,
    /// `false` sends `X-Rebert-No-Cache: 1` (score from scratch).
    pub use_cache: bool,
    /// Registry model name for `X-Rebert-Model` (`None` = daemon default).
    pub model: Option<String>,
    /// Tenant id for `X-Rebert-Tenant` quota attribution.
    pub tenant: Option<String>,
    /// Client-chosen `X-Rebert-Request-Id` (echoed on every response,
    /// including 4xx/5xx, and threaded through `GET /debug/trace`).
    pub request_id: Option<String>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            format: None,
            deadline_ms: None,
            precision: None,
            use_cache: true,
            model: None,
            tenant: None,
            request_id: None,
        }
    }
}

impl SubmitOptions {
    fn headers(&self) -> Vec<(&str, String)> {
        let mut headers: Vec<(&str, String)> = Vec::new();
        if let Some(f) = &self.format {
            headers.push(("X-Rebert-Format", f.clone()));
        }
        if let Some(d) = self.deadline_ms {
            headers.push(("X-Rebert-Deadline-Ms", d.to_string()));
        }
        if let Some(p) = &self.precision {
            headers.push(("X-Rebert-Precision", p.clone()));
        }
        if !self.use_cache {
            headers.push(("X-Rebert-No-Cache", "1".to_owned()));
        }
        if let Some(m) = &self.model {
            headers.push(("X-Rebert-Model", m.clone()));
        }
        if let Some(t) = &self.tenant {
            headers.push(("X-Rebert-Tenant", t.clone()));
        }
        if let Some(id) = &self.request_id {
            headers.push(("X-Rebert-Request-Id", id.clone()));
        }
        headers
    }
}

/// Submits a netlist to `POST /recover` with the full option surface.
///
/// # Errors
///
/// Transport or reply-parse failure; HTTP-level errors (400/404/429/
/// 503/504) come back as a normal [`HttpReply`].
pub fn submit(
    addr: impl ToSocketAddrs,
    netlist_text: &str,
    opts: &SubmitOptions,
) -> std::io::Result<HttpReply> {
    let owned = opts.headers();
    let headers: Vec<(&str, &str)> = owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
    http_request(addr, "POST", "/recover", &headers, netlist_text.as_bytes())
}

/// Submits a netlist to `POST /recover/stream` and follows the NDJSON
/// stream live: every interim record (they all carry a `"type"` key —
/// `meta`, `progress`, `error`) is handed to `on_record` as it arrives;
/// the final result record (the one line *without* a `"type"` key,
/// byte-identical to the plain `POST /recover` body) becomes the
/// returned reply's body. Pre-stream rejections (400/404/429/503) come
/// back as a normal [`HttpReply`] with `on_record` never called.
///
/// An empty returned body on a 200 reply means the stream ended with
/// an `error` record (deadline, executor loss) instead of a result.
///
/// # Errors
///
/// Transport or reply-parse failure.
pub fn submit_stream(
    addr: impl ToSocketAddrs,
    netlist_text: &str,
    opts: &SubmitOptions,
    mut on_record: impl FnMut(&str),
) -> std::io::Result<HttpReply> {
    let owned = opts.headers();
    let headers: Vec<(&str, &str)> = owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
    let (mut reader, status, reply_headers) = send_request(
        addr,
        "POST",
        "/recover/stream",
        &headers,
        netlist_text.as_bytes(),
    )?;
    if status != 200 {
        let mut body = Vec::new();
        reader.read_to_end(&mut body)?;
        return Ok(HttpReply {
            status,
            headers: reply_headers,
            body,
        });
    }
    let mut final_record = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF: the server closed the stream
        }
        let record = line.trim_end_matches(['\r', '\n']);
        if record.is_empty() {
            continue;
        }
        if record.starts_with("{\"type\":") {
            on_record(record);
        } else {
            final_record = record.to_owned();
        }
    }
    Ok(HttpReply {
        status,
        headers: reply_headers,
        body: final_record.into_bytes(),
    })
}

/// Serializes named netlists into the `POST /batch` archive format:
/// per entry a header line `<len> <name>\n`, the raw netlist bytes, and
/// a separator newline.
pub fn batch_archive<'a>(entries: impl IntoIterator<Item = (&'a str, &'a str)>) -> Vec<u8> {
    let mut archive = Vec::new();
    for (name, text) in entries {
        archive.extend_from_slice(format!("{} {name}\n", text.len()).as_bytes());
        archive.extend_from_slice(text.as_bytes());
        archive.push(b'\n');
    }
    archive
}

/// Submits a batch archive (see [`batch_archive`]) to `POST /batch` and
/// reads the whole NDJSON stream. The reply body holds one JSON record
/// per line, in archive order, each with `index`, `name`, `ok`, and on
/// success the full `/recover` payload fields.
///
/// # Errors
///
/// Transport or reply-parse failure; pre-stream rejections (400/404/
/// 429/503) come back as a normal [`HttpReply`].
pub fn submit_batch(
    addr: impl ToSocketAddrs,
    archive: &[u8],
    opts: &SubmitOptions,
) -> std::io::Result<HttpReply> {
    let owned = opts.headers();
    let headers: Vec<(&str, &str)> = owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
    http_request(addr, "POST", "/batch", &headers, archive)
}

/// Lists the daemon's resident models (`GET /models`).
///
/// # Errors
///
/// Transport or reply-parse failure.
pub fn list_models(addr: impl ToSocketAddrs) -> std::io::Result<HttpReply> {
    http_request(addr, "GET", "/models", &[], b"")
}

/// Hot-loads a checkpoint (a path on the daemon's filesystem) under
/// `name` via `POST /models/{name}/load`. Existing versions of `name`
/// are atomically swapped out; in-flight requests finish on them.
///
/// # Errors
///
/// Transport or reply-parse failure; load errors come back as a 400
/// [`HttpReply`].
pub fn load_model_remote(
    addr: impl ToSocketAddrs,
    name: &str,
    checkpoint_path: &str,
) -> std::io::Result<HttpReply> {
    let body = rebert::json::Json::Obj(vec![(
        "path".to_owned(),
        rebert::json::Json::str(checkpoint_path),
    )])
    .to_string();
    http_request(
        addr,
        "POST",
        &format!("/models/{name}/load"),
        &[("Content-Type", "application/json")],
        body.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_header_lookup_is_case_insensitive() {
        let reply = HttpReply {
            status: 503,
            headers: vec![("retry-after".into(), "1".into())],
            body: b"{}".to_vec(),
        };
        assert_eq!(reply.header("Retry-After"), Some("1"));
        assert_eq!(reply.header("RETRY-AFTER"), Some("1"));
        assert_eq!(reply.header("missing"), None);
        assert_eq!(reply.body_text(), "{}");
    }

    #[test]
    fn connect_to_dead_port_fails_with_io_error() {
        // Port 1 on localhost is essentially never listening.
        assert!(http_request("127.0.0.1:1", "GET", "/healthz", &[], b"").is_err());
    }
}
