//! The [`Sink`] trait and the three built-in sinks: a level-filtered
//! human stderr logger, a JSONL exporter, and a Chrome trace-event
//! exporter whose output loads in Perfetto / `chrome://tracing`.
//!
//! Sinks receive finished [`Record`]s only and must be `Send + Sync`.
//! They must not trace (directly or indirectly) — the dispatcher holds
//! its registry lock while calling them.

use std::collections::HashMap;
use std::io::Write;

use rebert_sync::Mutex;

use crate::json::Json;
use crate::record::{Kind, Level, Record, Value};

/// A destination for tracing records.
pub trait Sink: Send + Sync {
    /// Consumes one record. Called with the dispatcher's registry lock
    /// held; must be fast and must never block on tracing itself.
    fn record(&self, rec: &Record);

    /// The most verbose level this sink wants. The dispatcher only
    /// builds records at all if *some* installed sink wants them, and
    /// only delivers a record to sinks whose `max_level` admits it.
    fn max_level(&self) -> Level {
        Level::Trace
    }

    /// Flushes any buffered output. Called on uninstall.
    fn flush(&self) {}
}

/// Renders a field value as JSON, preserving type.
pub fn value_json(v: &Value) -> Json {
    match v {
        Value::Bool(b) => Json::Bool(*b),
        Value::U64(n) => Json::uint(*n),
        Value::I64(n) => Json::Num(n.to_string()),
        Value::F64(n) => Json::num(*n),
        Value::Str(s) => Json::str(s.clone()),
    }
}

/// Renders a record as one flat JSON object — the JSONL line format
/// produced by [`JsonlSink`] and by serve's `GET /debug/trace`.
pub fn record_json(rec: &Record) -> Json {
    let fields: Vec<(String, Json)> = rec
        .fields
        .iter()
        .map(|(k, v)| (k.to_string(), value_json(v)))
        .collect();
    Json::Obj(vec![
        ("ts_us".to_string(), Json::uint(rec.ts_micros)),
        ("ph".to_string(), Json::str(rec.kind.phase())),
        ("level".to_string(), Json::str(rec.level.as_str())),
        ("target".to_string(), Json::str(rec.target)),
        ("name".to_string(), Json::str(rec.name)),
        ("tid".to_string(), Json::uint(rec.thread)),
        ("span".to_string(), Json::uint(rec.span)),
        ("parent".to_string(), Json::uint(rec.parent)),
        ("fields".to_string(), Json::Obj(fields)),
    ])
}

/// Human-readable stderr logger with a level ceiling, in the style of
/// `env_logger`'s default format.
pub struct StderrSink {
    level: Level,
}

impl StderrSink {
    /// A stderr logger admitting records up to `level`.
    pub fn new(level: Level) -> StderrSink {
        StderrSink { level }
    }

    /// Reads the ceiling from the `REBERT_LOG` environment variable
    /// (`error` / `warn` / `info` / `debug` / `trace`), falling back
    /// to `default` when unset or unparseable.
    pub fn from_env(default: Level) -> StderrSink {
        let level = std::env::var("REBERT_LOG")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(default);
        StderrSink { level }
    }

    fn render(rec: &Record) -> String {
        let secs = rec.ts_micros as f64 / 1e6;
        let marker = match rec.kind {
            Kind::Begin => ">",
            Kind::End => "<",
            Kind::Instant => "",
        };
        let mut line = format!(
            "[{secs:11.6}s {:5} {}] {marker}{}",
            rec.level.as_str(),
            rec.target,
            rec.name
        );
        for (k, v) in &rec.fields {
            if *k == "message" {
                line.push_str(&format!(" {v}"));
            } else {
                line.push_str(&format!(" {k}={v}"));
            }
        }
        line
    }
}

impl Sink for StderrSink {
    fn record(&self, rec: &Record) {
        if rec.level <= self.level {
            eprintln!("{}", Self::render(rec));
        }
    }

    fn max_level(&self) -> Level {
        self.level
    }
}

/// Writes one [`record_json`] line per record to an arbitrary writer.
pub struct JsonlSink<W: Write + Send> {
    level: Level,
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A JSONL exporter admitting records up to `level`.
    pub fn new(out: W, level: Level) -> JsonlSink<W> {
        JsonlSink {
            level,
            out: Mutex::new(out, "obs.sink.jsonl"),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, rec: &Record) {
        // Telemetry never takes the process down: I/O errors are
        // swallowed here and surface as missing lines.
        let mut out = self.out.lock();
        let _ = writeln!(out, "{}", record_json(rec));
    }

    fn max_level(&self) -> Level {
        self.level
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

/// Accumulates Chrome trace-event JSON (`{"traceEvents": [...]}`),
/// loadable in Perfetto or `chrome://tracing`, with one duration track
/// per thread.
///
/// Structural guarantees, relied on by tests and the acceptance
/// criteria:
/// - every `E` event closes a `B` previously emitted for the same span
///   (an `End` whose `Begin` predates the sink is discarded);
/// - [`finish_json`] synthesizes `E` events for still-open spans at
///   the maximum observed timestamp, so B/E counts balance per thread;
/// - within one `tid` track, timestamps are non-decreasing in emission
///   order (records are appended under one lock).
///
/// [`finish_json`]: ChromeTraceSink::finish_json
pub struct ChromeTraceSink {
    level: Level,
    state: Mutex<ChromeState>,
}

struct ChromeState {
    events: Vec<Json>,
    /// Open span id → (name, target, tid), for synthesizing balanced
    /// `E` events at finish time.
    open: HashMap<u64, (&'static str, &'static str, u64)>,
    max_ts: u64,
}

fn chrome_event(
    ph: &str,
    name: &str,
    cat: &str,
    ts: u64,
    tid: u64,
    args: Vec<(String, Json)>,
) -> Json {
    let mut ev = vec![
        ("ph".to_string(), Json::str(ph)),
        ("name".to_string(), Json::str(name)),
        ("cat".to_string(), Json::str(cat)),
        ("ts".to_string(), Json::uint(ts)),
        ("pid".to_string(), Json::uint(1)),
        ("tid".to_string(), Json::uint(tid)),
    ];
    if ph == "i" {
        // Thread-scoped instant marker.
        ev.push(("s".to_string(), Json::str("t")));
    }
    if !args.is_empty() {
        ev.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(ev)
}

impl ChromeTraceSink {
    /// A Chrome-trace exporter admitting records up to `level`.
    pub fn new(level: Level) -> ChromeTraceSink {
        ChromeTraceSink {
            level,
            state: Mutex::new(
                ChromeState {
                    events: Vec::new(),
                    open: HashMap::new(),
                    max_ts: 0,
                },
                "obs.sink.chrome",
            ),
        }
    }

    /// Number of trace events accumulated so far.
    pub fn len(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Whether no events have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the accumulated trace as a Chrome trace-event document,
    /// closing any still-open spans so B/E events balance. Does not
    /// consume the accumulated events.
    pub fn finish_json(&self) -> Json {
        let st = self.state.lock();
        let mut events = st.events.clone();
        // Deterministic order for the synthesized closers.
        let mut open: Vec<_> = st.open.iter().collect();
        open.sort_by_key(|(id, _)| **id);
        for (_, (name, cat, tid)) in open {
            events.push(chrome_event("E", name, cat, st.max_ts, *tid, Vec::new()));
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::str("ms")),
        ])
    }

    /// Writes [`finish_json`] to a file.
    ///
    /// [`finish_json`]: ChromeTraceSink::finish_json
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.finish_json()))
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, rec: &Record) {
        let args: Vec<(String, Json)> = rec
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), value_json(v)))
            .collect();
        let mut st = self.state.lock();
        st.max_ts = st.max_ts.max(rec.ts_micros);
        match rec.kind {
            Kind::Begin => {
                st.open.insert(rec.span, (rec.name, rec.target, rec.thread));
                let ev = chrome_event("B", rec.name, rec.target, rec.ts_micros, rec.thread, args);
                st.events.push(ev);
            }
            Kind::End => {
                // Only close spans we saw open; a stray End (sink
                // installed mid-span) would unbalance the track.
                if st.open.remove(&rec.span).is_some() {
                    let ev =
                        chrome_event("E", rec.name, rec.target, rec.ts_micros, rec.thread, args);
                    st.events.push(ev);
                }
            }
            Kind::Instant => {
                let ev = chrome_event("i", rec.name, rec.target, rec.ts_micros, rec.thread, args);
                st.events.push(ev);
            }
        }
    }

    fn max_level(&self) -> Level {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Kind;

    fn rec(
        kind: Kind,
        name: &'static str,
        ts: u64,
        tid: u64,
        span: u64,
        fields: Vec<(&'static str, Value)>,
    ) -> Record {
        Record {
            ts_micros: ts,
            kind,
            level: Level::Info,
            target: "test",
            name,
            thread: tid,
            span,
            parent: 0,
            fields,
        }
    }

    #[test]
    fn record_json_lines_parse_and_keep_typed_fields() {
        let r = rec(
            Kind::Instant,
            "tick",
            42,
            3,
            9,
            vec![
                ("count", Value::U64(5)),
                ("loss", Value::F64(0.25)),
                ("ok", Value::Bool(true)),
                ("id", Value::Str("req \"7\"\n".to_string())),
            ],
        );
        let line = record_json(&r).to_string();
        let back = Json::parse(&line).expect("JSONL line must parse");
        assert_eq!(back.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(back.get("name").and_then(Json::as_str), Some("tick"));
        assert_eq!(back.get("tid").and_then(Json::as_u64), Some(3));
        let fields = back.get("fields").unwrap();
        assert_eq!(fields.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(fields.get("loss").and_then(Json::as_f64), Some(0.25));
        assert_eq!(fields.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(fields.get("id").and_then(Json::as_str), Some("req \"7\"\n"));
    }

    #[test]
    fn jsonl_sink_writes_one_parsable_line_per_record() {
        let sink = JsonlSink::new(Vec::new(), Level::Trace);
        for i in 0..4u64 {
            sink.record(&rec(
                Kind::Instant,
                "tick",
                i,
                1,
                0,
                vec![("i", Value::U64(i))],
            ));
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("each JSONL line parses");
            assert_eq!(v.get("ts_us").and_then(Json::as_u64), Some(i as u64));
        }
    }

    #[test]
    fn stderr_render_is_level_tagged_and_message_flattened() {
        let line = StderrSink::render(&rec(
            Kind::Instant,
            "log",
            1_500_000,
            2,
            0,
            vec![
                ("message", Value::Str("hello".to_string())),
                ("request_id", Value::Str("req-1".to_string())),
            ],
        ));
        assert!(line.contains("info"), "level missing: {line}");
        assert!(line.contains("test"), "target missing: {line}");
        assert!(line.contains(" hello"), "message not flattened: {line}");
        assert!(line.contains("request_id=req-1"), "field missing: {line}");
        assert!(line.contains("1.500000s"), "timestamp missing: {line}");
    }

    #[test]
    fn stderr_from_env_parses_rebert_log() {
        // Env vars are process-global; poke and restore carefully.
        std::env::set_var("REBERT_LOG", "debug");
        assert_eq!(StderrSink::from_env(Level::Warn).level, Level::Debug);
        std::env::set_var("REBERT_LOG", "not-a-level");
        assert_eq!(StderrSink::from_env(Level::Warn).level, Level::Warn);
        std::env::remove_var("REBERT_LOG");
        assert_eq!(StderrSink::from_env(Level::Info).level, Level::Info);
    }

    /// Splits a Chrome trace document into (ph, ts, tid, name) tuples.
    fn chrome_events(doc: &Json) -> Vec<(String, u64, u64, String)> {
        doc.get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array")
            .iter()
            .map(|e| {
                (
                    e.get("ph").and_then(Json::as_str).unwrap().to_string(),
                    e.get("ts").and_then(Json::as_u64).unwrap(),
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                    e.get("name").and_then(Json::as_str).unwrap().to_string(),
                )
            })
            .collect()
    }

    /// The structural acceptance checks: the document parses with the
    /// workspace JSON parser, B/E events balance per thread (never
    /// going negative), and timestamps are non-decreasing per track.
    fn assert_well_formed_chrome(doc_text: &str) {
        let doc = Json::parse(doc_text).expect("Chrome trace JSON parses");
        let events = chrome_events(&doc);
        let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        let mut last_ts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (ph, ts, tid, name) in &events {
            let last = last_ts.entry(*tid).or_insert(0);
            assert!(
                ts >= last,
                "track {tid} went backwards at {name}: {ts} < {last}"
            );
            *last = *ts;
            match ph.as_str() {
                "B" => *depth.entry(*tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(*tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "track {tid}: E without matching B at {name}");
                }
                "i" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "track {tid} finished with {d} unclosed B events");
        }
    }

    #[test]
    fn chrome_balances_and_orders_a_simple_nested_trace() {
        let sink = ChromeTraceSink::new(Level::Trace);
        sink.record(&rec(Kind::Begin, "outer", 10, 1, 1, vec![]));
        sink.record(&rec(
            Kind::Begin,
            "inner",
            20,
            1,
            2,
            vec![("k", Value::U64(1))],
        ));
        sink.record(&rec(Kind::Instant, "tick", 25, 1, 2, vec![]));
        sink.record(&rec(Kind::End, "inner", 30, 1, 2, vec![]));
        sink.record(&rec(Kind::End, "outer", 40, 1, 1, vec![]));
        assert_eq!(sink.len(), 5);
        assert_well_formed_chrome(&sink.finish_json().to_string());
    }

    #[test]
    fn chrome_discards_stray_ends_and_closes_stray_begins() {
        let sink = ChromeTraceSink::new(Level::Trace);
        // End for a span whose Begin predates the sink: dropped.
        sink.record(&rec(Kind::End, "orphan", 5, 1, 99, vec![]));
        assert!(sink.is_empty());
        // Begin that never closes: finish synthesizes the E.
        sink.record(&rec(Kind::Begin, "open", 10, 2, 7, vec![]));
        sink.record(&rec(Kind::Instant, "late", 50, 2, 7, vec![]));
        let doc = sink.finish_json().to_string();
        assert_well_formed_chrome(&doc);
        let parsed = Json::parse(&doc).unwrap();
        let events = chrome_events(&parsed);
        let closer = events.iter().find(|(ph, ..)| ph == "E").expect("synth E");
        assert_eq!(closer.1, 50, "closer must land at the max observed ts");
        assert_eq!(closer.3, "open");
    }

    #[test]
    fn random_interleaved_traces_stay_well_formed() {
        use rand::Rng;
        use rand::SeedableRng;
        use rand_chacha::ChaCha20Rng;

        const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
        for seed in 0..40u64 {
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let sink = ChromeTraceSink::new(Level::Trace);
            // Per-thread stacks of open span ids; a global clock that
            // only moves forward, like the real monotonic source.
            let mut open: Vec<Vec<u64>> = vec![Vec::new(); 3];
            let mut next_span = 1u64;
            let mut ts = 0u64;
            for _ in 0..rng.gen_range(5..120) {
                let t = rng.gen_range(0..open.len());
                let tid = t as u64 + 1;
                ts += rng.gen_range(0..50);
                let name = NAMES[rng.gen_range(0..NAMES.len())];
                match rng.gen_range(0..10) {
                    // Mostly begins and ends, some instants, and the
                    // occasional stray End the exporter must reject.
                    0..=3 => {
                        let id = next_span;
                        next_span += 1;
                        open[t].push(id);
                        let fields = vec![
                            ("seed", Value::U64(seed)),
                            ("s", Value::Str("\"\\\u{7}".into())),
                        ];
                        sink.record(&rec(Kind::Begin, name, ts, tid, id, fields));
                    }
                    4..=6 => {
                        if let Some(id) = open[t].pop() {
                            sink.record(&rec(Kind::End, name, ts, tid, id, vec![]));
                        }
                    }
                    7..=8 => sink.record(&rec(Kind::Instant, name, ts, tid, 0, vec![])),
                    _ => sink.record(&rec(Kind::End, name, ts, tid, next_span + 1000, vec![])),
                }
            }
            assert_well_formed_chrome(&sink.finish_json().to_string());
        }
    }
}
