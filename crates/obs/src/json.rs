//! Minimal self-contained JSON: a value model, a strict parser, and a
//! writer, with no external dependencies.
//!
//! Lives in `rebert-obs` (the workspace's base crate) so both the
//! tracing exporters here and the higher layers — model checkpointing
//! (`rebert::persist`), the `rebert-serve` daemon's request/response
//! bodies, `rebert-analyze` reports — share one implementation without
//! pulling a JSON crate into the hot loop. `rebert` re-exports it as
//! `rebert::json`, which is the name the rest of the workspace uses.
//! Numbers keep their literal text ([`Json::Num`]): the writer emits the
//! shortest round-trip representation of the value it was given, and the
//! reader re-parses the literal at the requested width, so `f32`
//! checkpoints survive a save/load cycle bit-for-bit.

use std::fmt;

/// A parsed (or to-be-written) JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A number value from anything float-like; non-finite values become
    /// `null` (JSON has no NaN/Inf).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// A number value from an `f32`, written with `f32` shortest
    /// round-trip precision.
    pub fn num_f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// A number value from an unsigned integer.
    pub fn uint(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number re-parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number re-parsed as `f32` (directly from the literal, so an
    /// `f32` written with [`Json::num_f32`] round-trips exactly).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number re-parsed as `u64` (rejects fractions and signs).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number re-parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(s) => f.write_str(s),
            Json::Str(s) => write_json_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with escaping.
pub fn write_json_string(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_str("\"")
}

/// Recursion guard: netlist/checkpoint documents are shallow, so a tight
/// bound keeps malicious request bodies from overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Duplicate keys are ambiguous (RFC 8259 leaves the behaviour
            // undefined); checkpoints and request bodies never need them,
            // so reject instead of silently keeping one of the values.
            if fields.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => {
                            return Err(self.err(format!("invalid escape `\\{}`", c as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Json::Num(text.to_owned()))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "1e-3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":"x\ny","c":null}],"d":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn f32_values_survive_exactly() {
        let vals = [
            0.1f32,
            -1.5e-30,
            f32::MIN_POSITIVE,
            1.000_000_1,
            123456790.0,
            f32::MAX,
        ];
        for &x in &vals {
            let text = Json::num_f32(x).to_string();
            let back = Json::parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num_f32(f32::INFINITY), Json::Null);
    }

    #[test]
    fn string_escapes_decode() {
        let v = Json::parse(r#""tab\t quote\" back\\ u\u0041 snow\u2603""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" back\\ uA snow☃"));
        // Surrogate pair (🂡 U+1F0A1).
        let v = Json::parse(r#""\ud83c\udca1""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F0A1}"));
    }

    #[test]
    fn control_chars_escape_on_write() {
        let s = Json::Str("a\u{1}\n".to_owned()).to_string();
        assert_eq!(s, r#""a\u0001\n""#);
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("a\u{1}\n"));
    }

    #[test]
    fn malformed_documents_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "01",
            "1.",
            "--1",
            "\"\\q\"",
            "\"\u{1}\"",
            "nulL",
            "[1] garbage",
            "\"unterminated",
            r#""\ud800x""#,
            r#"{"a":1,"a":2}"#,
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn duplicate_object_keys_rejected() {
        let err = Json::parse(r#"{"k":1,"b":2,"k":3}"#).unwrap_err();
        assert!(err.message.contains("duplicate object key `k`"), "{err}");
        // Nested objects are checked too; same key at different depths is
        // fine.
        assert!(Json::parse(r#"{"a":{"x":1,"x":2}}"#).is_err());
        assert!(Json::parse(r#"{"a":{"a":1}}"#).is_ok());
        // Escapes are resolved before comparison: "\u0061" is "a".
        assert!(Json::parse(r#"{"a":1,"\u0061":2}"#).is_err());
    }

    // ---- hand-rolled property tests (seeded, deterministic) ----------
    //
    // The offline harness compiles these without proptest, so the
    // generators are driven directly by a seeded ChaCha stream.

    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// An adversarial string: quotes, backslashes, control characters,
    /// multi-byte scalars, and near-surrogate code points.
    fn gen_string(rng: &mut ChaCha20Rng) -> String {
        const POOL: &[char] = &[
            'a',
            'Z',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1f}',
            '☃',
            '\u{1F0A1}',
            '\u{D7FF}',
            '\u{E000}',
            '\u{FFFD}',
            '{',
            '}',
            '[',
            ']',
            ',',
            ':',
            'é',
        ];
        let len = rng.gen_range(0..8usize);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }

    fn gen_value(rng: &mut ChaCha20Rng, depth: usize) -> Json {
        let pick = if depth >= 4 {
            rng.gen_range(0..4u32) // leaves only
        } else {
            rng.gen_range(0..6u32)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_bool(0.5)),
            2 => Json::num(f64::from(rng.gen_range(-1000i32..1000)) * 0.125),
            3 => Json::Str(gen_string(rng)),
            4 => Json::Arr(
                (0..rng.gen_range(0..4usize))
                    .map(|_| gen_value(rng, depth + 1))
                    .collect(),
            ),
            _ => {
                let n = rng.gen_range(0..4usize);
                let mut fields: Vec<(String, Json)> = Vec::new();
                for _ in 0..n {
                    let key = gen_string(rng);
                    if fields.iter().any(|(k, _)| *k == key) {
                        continue; // writer output must stay parseable
                    }
                    let v = gen_value(rng, depth + 1);
                    fields.push((key, v));
                }
                Json::Obj(fields)
            }
        }
    }

    #[test]
    fn random_documents_round_trip_exactly() {
        let mut rng = ChaCha20Rng::seed_from_u64(0x5eed1);
        for i in 0..500 {
            let v = gen_value(&mut rng, 0);
            let text = v.to_string();
            let back = Json::parse(&text).unwrap_or_else(|e| panic!("case {i}: {e}: {text}"));
            assert_eq!(back, v, "case {i}: {text}");
            // Stability: writing the re-parsed value is byte-identical.
            assert_eq!(back.to_string(), text, "case {i}");
        }
    }

    #[test]
    fn mutated_documents_never_panic_and_stay_strict() {
        // Random single-character edits of valid documents: the parser
        // must cleanly accept or reject, and anything accepted must
        // round-trip through its own writer.
        let mut rng = ChaCha20Rng::seed_from_u64(0x5eed2);
        for i in 0..500 {
            let chars: Vec<char> = gen_value(&mut rng, 0).to_string().chars().collect();
            let mut mutated = chars.clone();
            const GLYPHS: &[char] = &['{', '}', '[', ']', '"', ',', ':', '\\', '0', 'e', '-', ' '];
            match rng.gen_range(0..3u32) {
                0 if !mutated.is_empty() => {
                    let at = rng.gen_range(0..mutated.len());
                    mutated[at] = GLYPHS[rng.gen_range(0..GLYPHS.len())];
                }
                1 if !mutated.is_empty() => {
                    mutated.remove(rng.gen_range(0..mutated.len()));
                }
                _ => {
                    let at = rng.gen_range(0..=mutated.len());
                    mutated.insert(at, GLYPHS[rng.gen_range(0..GLYPHS.len())]);
                }
            }
            let text: String = mutated.into_iter().collect();
            if let Ok(v) = Json::parse(&text) {
                let rewritten = v.to_string();
                assert_eq!(
                    Json::parse(&rewritten).as_ref(),
                    Ok(&v),
                    "case {i}: accepted `{text}` but failed to round-trip"
                );
            }
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn typed_accessors() {
        let v = Json::parse("42").unwrap();
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(v.as_usize(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::uint(7).to_string(), "7");
    }
}
