//! The wire-level data model: levels, field values, and the one record
//! type every sink consumes.
//!
//! A [`Record`] is deliberately flat and cheap to clone: static names,
//! a microsecond timestamp on the process-local monotonic clock, a
//! compact thread id, span/parent ids for reconstructing the tree, and
//! a small vector of key/value fields. Sinks never get callbacks into
//! user code — they see finished records only — so a slow sink can at
//! worst drop data (see [`crate::ring::RingSink`]), never corrupt it.

use std::fmt;

/// Severity / verbosity of a record, ordered `Error < Warn < Info <
/// Debug < Trace`.
///
/// The numeric representation is load-bearing: the global gate keeps
/// the maximum enabled level in one atomic and [`crate::enabled`]
/// compares against it with a single relaxed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// High-level lifecycle: phases, epochs, requests.
    Info = 3,
    /// Per-batch / per-connection detail.
    Debug = 4,
    /// Per-step firehose.
    Trace = 5,
}

impl Level {
    /// All levels, ascending verbosity.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Canonical lower-case name (`"error"`, ..., `"trace"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name, case-insensitively. Accepts the canonical
    /// names plus the common aliases `warning` and `off`-less synonyms
    /// used by `RUST_LOG`-style variables.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "err" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Reconstructs a level from its `repr(u8)` value.
    pub fn from_u8(v: u8) -> Option<Level> {
        Level::ALL.into_iter().find(|l| *l as u8 == v)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A field value. Small closed set so sinks can render without
/// trait objects or reflection.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, throughputs, seconds).
    F64(f64),
    /// Owned text (request ids, messages, names).
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(f64::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// One key/value pair on a record.
pub type Field = (&'static str, Value);

/// What a record marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened (`ph: "B"` in Chrome trace terms).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
}

impl Kind {
    /// The Chrome trace-event phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            Kind::Begin => "B",
            Kind::End => "E",
            Kind::Instant => "i",
        }
    }
}

/// One finished tracing record, as handed to every installed sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Microseconds since the process-local monotonic epoch (first
    /// tracing call in the process). Monotonic per thread.
    pub ts_micros: u64,
    /// Begin / End / Instant.
    pub kind: Kind,
    /// Severity.
    pub level: Level,
    /// Coarse subsystem name (`"pipeline"`, `"par"`, `"serve"`, ...);
    /// becomes the Chrome trace category.
    pub target: &'static str,
    /// Span or event name (`"tokenize"`, `"score_batch"`, ...).
    pub name: &'static str,
    /// Compact per-process thread id (small dense integers, assigned
    /// in thread-creation order as threads first trace something).
    pub thread: u64,
    /// Span id this record belongs to: the span itself for
    /// `Begin`/`End`, the *enclosing* span (0 if none) for `Instant`.
    pub span: u64,
    /// Parent span id (0 if root). Only meaningful on `Begin`.
    pub parent: u64,
    /// Key/value payload. Context fields adopted from
    /// [`crate::span::TraceCtx`] are appended after the record's own.
    pub fields: Vec<Field>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_parse_round_trips_and_accepts_aliases() {
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()), Some(l));
            assert_eq!(Level::parse(&l.as_str().to_uppercase()), Some(l));
            assert_eq!(Level::from_u8(l as u8), Some(l));
        }
        assert_eq!(Level::parse(" warning "), Some(Level::Warn));
        assert_eq!(Level::parse("err"), Some(Level::Error));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::from_u8(0), None);
        assert_eq!(Level::from_u8(6), None);
    }

    #[test]
    fn value_conversions_preserve_payloads() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i64), Value::I64(-2));
        assert_eq!(Value::from(0.5f32), Value::F64(0.5));
        assert_eq!(Value::from("id"), Value::Str("id".to_string()));
        assert_eq!(Value::from(true).to_string(), "true");
    }

    #[test]
    fn kind_phases_are_chrome_letters() {
        assert_eq!(Kind::Begin.phase(), "B");
        assert_eq!(Kind::End.phase(), "E");
        assert_eq!(Kind::Instant.phase(), "i");
    }
}
