//! Span lifecycle: monotonic timestamps, compact thread ids, the
//! thread-local span stack, RAII [`SpanGuard`]s, point events, and
//! cross-thread context propagation via [`TraceCtx`].
//!
//! Everything here is gated on [`crate::enabled`], which is a single
//! relaxed atomic load when no sink is installed — a disabled span is
//! one branch and the construction of a dead guard, nothing else.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::record::{Field, Kind, Level, Record, Value};

/// The process-local epoch: set by the first tracing call, so the
/// first record lands at (or near) t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-local monotonic epoch.
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static LOCAL: RefCell<LocalCtx> = const { RefCell::new(LocalCtx { stack: Vec::new(), fields: Vec::new() }) };
}

/// Per-thread tracing state: the stack of open span ids plus any
/// context fields adopted from another thread (request ids and the
/// like) that get appended to every record emitted here.
struct LocalCtx {
    stack: Vec<u64>,
    fields: Vec<Field>,
}

/// Compact per-process id of the calling thread. Assigned densely in
/// the order threads first touch tracing, so Chrome trace tracks get
/// small stable numbers instead of opaque OS ids.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Opens a span with no fields. See [`span_with`].
pub fn span(level: Level, target: &'static str, name: &'static str) -> SpanGuard {
    span_with(level, target, name, Vec::new())
}

/// Opens a span: emits a `Begin` record, pushes the span onto the
/// calling thread's stack, and returns a guard whose drop emits the
/// matching `End`. When tracing is disabled this returns a dead guard
/// and touches nothing.
pub fn span_with(
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<Field>,
) -> SpanGuard {
    if !crate::enabled(level) {
        return SpanGuard {
            id: 0,
            begin_micros: 0,
            level,
            target,
            name,
            live: false,
            end_fields: Vec::new(),
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let (parent, ctx_fields) = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let parent = l.stack.last().copied().unwrap_or(0);
        l.stack.push(id);
        (parent, l.fields.clone())
    });
    let ts = now_micros();
    let mut all = fields;
    all.extend(ctx_fields);
    crate::dispatch(Record {
        ts_micros: ts,
        kind: Kind::Begin,
        level,
        target,
        name,
        thread: thread_id(),
        span: id,
        parent,
        fields: all,
    });
    SpanGuard {
        id,
        begin_micros: ts,
        level,
        target,
        name,
        live: true,
        end_fields: Vec::new(),
        _not_send: PhantomData,
    }
}

/// RAII handle for an open span. Dropping it (or calling [`end`] /
/// [`end_at`]) emits the `End` record and pops the thread-local stack.
///
/// Not `Send`: the guard must close on the thread that opened it, so
/// Begin/End pairs stay balanced per Chrome-trace track. To reference
/// the span from another thread, ship a [`TraceCtx`] instead.
///
/// [`end`]: SpanGuard::end
/// [`end_at`]: SpanGuard::end_at
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    begin_micros: u64,
    level: Level,
    target: &'static str,
    name: &'static str,
    live: bool,
    end_fields: Vec<Field>,
    _not_send: PhantomData<*mut ()>,
}

impl SpanGuard {
    /// The span id (0 for a dead guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this guard will emit an `End` record.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Attaches a field to the eventual `End` record (losses, counts —
    /// anything only known once the work finishes). No-op when dead.
    pub fn add_field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.live {
            self.end_fields.push((key, value.into()));
        }
    }

    /// Closes the span now.
    pub fn end(self) {
        // Drop does the work.
    }

    /// Closes the span with an explicit duration: the `End` record's
    /// timestamp becomes `begin + dur`. Used by the pipeline so phase
    /// spans carry *exactly* the durations reported in
    /// `PipelineStats`. Callers must measure `dur` from a point at or
    /// after the span was opened, or per-track monotonicity breaks.
    pub fn end_at(mut self, dur: Duration) {
        if self.live {
            let ts = self.begin_micros + dur.as_micros() as u64;
            self.finish(ts);
        }
    }

    fn finish(&mut self, ts: u64) {
        self.live = false;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            // Pop through the id rather than blindly popping the top:
            // a caller that drops guards out of order degrades
            // gracefully instead of corrupting parentage.
            if let Some(pos) = l.stack.iter().rposition(|&s| s == self.id) {
                l.stack.truncate(pos);
            }
        });
        crate::dispatch(Record {
            ts_micros: ts,
            kind: Kind::End,
            level: self.level,
            target: self.target,
            name: self.name,
            thread: thread_id(),
            span: self.id,
            parent: 0,
            fields: std::mem::take(&mut self.end_fields),
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            let ts = now_micros();
            self.finish(ts);
        }
    }
}

/// Emits a point event with no fields. See [`event_with`].
pub fn event(level: Level, target: &'static str, name: &'static str) {
    event_with(level, target, name, Vec::new());
}

/// Emits a point (`Instant`) event under the current span, carrying
/// the given fields plus any adopted context fields.
pub fn event_with(level: Level, target: &'static str, name: &'static str, fields: Vec<Field>) {
    if !crate::enabled(level) {
        return;
    }
    let (span, ctx_fields) = LOCAL.with(|l| {
        let l = l.borrow();
        (l.stack.last().copied().unwrap_or(0), l.fields.clone())
    });
    let mut all = fields;
    all.extend(ctx_fields);
    crate::dispatch(Record {
        ts_micros: now_micros(),
        kind: Kind::Instant,
        level,
        target,
        name,
        thread: thread_id(),
        span,
        parent: 0,
        fields: all,
    });
}

/// Emits a free-text log event (what the `error!`/`warn!`/... macros
/// expand to): an `Instant` named `log` with a `message` field.
pub fn message(level: Level, target: &'static str, text: String) {
    event_with(level, target, "log", vec![("message", Value::Str(text))]);
}

/// A snapshot of the calling thread's tracing context — the current
/// span id plus adopted fields — cheap to clone and `Send`, for
/// parenting work that hops threads (worker pools, the serve
/// executor).
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    span: u64,
    fields: Vec<Field>,
}

impl TraceCtx {
    /// The span id new records will parent under (0 = root).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Returns the context extended with one more field (e.g. a
    /// request id) that every record under it will carry.
    pub fn with_field(mut self, key: &'static str, value: impl Into<Value>) -> TraceCtx {
        self.fields.push((key, value.into()));
        self
    }
}

/// Captures the calling thread's current context. Empty (and
/// allocation-free) when tracing is disabled.
pub fn current_ctx() -> TraceCtx {
    if !crate::active() {
        return TraceCtx::default();
    }
    LOCAL.with(|l| {
        let l = l.borrow();
        TraceCtx {
            span: l.stack.last().copied().unwrap_or(0),
            fields: l.fields.clone(),
        }
    })
}

/// Adopts a context on the calling thread: spans and events emitted
/// until the returned guard drops parent under `ctx.span()` and carry
/// `ctx`'s fields. Used by worker threads and the serve executor.
pub fn enter_ctx(ctx: &TraceCtx) -> CtxGuard {
    let pushed = ctx.span != 0;
    let added = ctx.fields.len();
    if pushed || added > 0 {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            if pushed {
                l.stack.push(ctx.span);
            }
            l.fields.extend(ctx.fields.iter().cloned());
        });
    }
    CtxGuard {
        pushed,
        added,
        _not_send: PhantomData,
    }
}

/// Guard returned by [`enter_ctx`]; dropping it restores the thread's
/// previous context. Not `Send`.
pub struct CtxGuard {
    pushed: bool,
    added: usize,
    _not_send: PhantomData<*mut ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.pushed || self.added > 0 {
            LOCAL.with(|l| {
                let mut l = l.borrow_mut();
                if self.pushed {
                    l.stack.pop();
                }
                let keep = l.fields.len().saturating_sub(self.added);
                l.fields.truncate(keep);
            });
        }
    }
}
