//! # rebert-obs — dependency-free structured tracing
//!
//! The workspace's observability core: span/event records with
//! monotonic timestamps, thread ids, levels, and key/value fields;
//! thread-local span stacks with RAII [`SpanGuard`]s; a bounded
//! [`RingSink`] that never blocks recording threads; and pluggable
//! [`Sink`]s — a level-filtered stderr logger, a JSONL exporter, and a
//! Chrome trace-event exporter loadable in Perfetto. Like the rest of
//! the workspace (`rebert::json`, the serve HTTP stack) it is
//! hand-rolled with no external dependencies, so instrumenting the
//! scoring hot paths pulls nothing beneath them.
//!
//! ## Zero cost when disabled
//!
//! The dispatcher keeps the maximum level any installed sink wants in
//! one atomic. With no sink installed, [`enabled`] is a relaxed load
//! and a compare — spans, events, and the logging macros all bail
//! before building anything. The disabled-tracing benchmark
//! (`crates/bench/benches/tracing.rs`) pins the score-path overhead.
//!
//! ## Shape
//!
//! ```text
//! span!/event!/macros ──> enabled()? ──> Record ──> dispatch ──┬─> StderrSink
//!        │                                                    ├─> JsonlSink
//!   thread-local stack                                        ├─> ChromeTraceSink
//!   (ids, ctx fields)  <── TraceCtx (cross-thread adoption)   └─> RingSink (bounded,
//!                                                                  never blocks)
//! ```
//!
//! A span opened on one thread is referenced from another by shipping
//! a [`TraceCtx`] ([`current_ctx`] / [`enter_ctx`]): the serve daemon
//! captures the request's root-span context (carrying the generated
//! request id as a field) into the executor job, and
//! `rebert::par` workers adopt the caller's context so per-batch
//! events land under the scoring span on per-thread tracks.
//!
//! The JSON module used across the workspace also lives here (see
//! [`json`]); `rebert` re-exports it as `rebert::json`.

#![warn(missing_docs)]

pub mod json;
pub mod record;
pub mod ring;
pub mod sink;
pub mod span;
pub mod tap;

pub use record::{Field, Kind, Level, Record, Value};
pub use ring::RingSink;
pub use sink::{record_json, value_json, ChromeTraceSink, JsonlSink, Sink, StderrSink};
pub use span::{
    current_ctx, enter_ctx, event, event_with, message, now_micros, span, span_with, thread_id,
    CtxGuard, SpanGuard, TraceCtx,
};
pub use tap::{TapSink, TapSubscription};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use rebert_sync::RwLock;

/// The maximum level any installed sink admits; 0 = tracing disabled.
/// This is the whole fast path: [`enabled`] is one relaxed load.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

type Registry = RwLock<Vec<(u64, Arc<dyn Sink>)>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new(), "obs.registry"))
}

static NEXT_SINK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Handle returned by [`install`]; pass to [`uninstall`] to remove the
/// sink again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

/// Installs a sink. Records at or below the sink's
/// [`Sink::max_level`] start flowing to it immediately; the global
/// gate widens to admit them.
pub fn install(sink: Arc<dyn Sink>) -> SinkId {
    let id = NEXT_SINK.fetch_add(1, Ordering::Relaxed);
    let mut reg = registry().write();
    reg.push((id, sink));
    recompute_gate(&reg);
    SinkId(id)
}

/// Removes a previously installed sink (flushing it) and narrows the
/// global gate. Unknown ids are ignored, so double-uninstall is safe.
pub fn uninstall(id: SinkId) {
    let removed = {
        let mut reg = registry().write();
        let before = reg.len();
        let removed: Vec<_> = {
            let mut kept = Vec::with_capacity(before);
            let mut gone = Vec::new();
            for entry in reg.drain(..) {
                if entry.0 == id.0 {
                    gone.push(entry.1);
                } else {
                    kept.push(entry);
                }
            }
            *reg = kept;
            gone
        };
        recompute_gate(&reg);
        removed
    };
    // Flush outside the registry lock: flushing may do I/O.
    for sink in removed {
        sink.flush();
    }
}

fn recompute_gate(reg: &[(u64, Arc<dyn Sink>)]) {
    let max = reg
        .iter()
        .map(|(_, s)| s.max_level() as u8)
        .max()
        .unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::SeqCst);
}

/// Whether a record at `level` would reach any installed sink. One
/// relaxed atomic load — this is the check on every hot path.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether any sink is installed at all.
#[inline]
pub fn active() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) != 0
}

/// Flushes every installed sink.
pub fn flush_all() {
    let sinks: Vec<Arc<dyn Sink>> = {
        let reg = registry().read();
        reg.iter().map(|(_, s)| Arc::clone(s)).collect()
    };
    for sink in sinks {
        sink.flush();
    }
}

/// Delivers a finished record to every installed sink that admits its
/// level. Called by `span`/`event`; not part of the public API surface
/// users normally touch, but public so higher crates can inject
/// synthetic records in tests.
pub fn dispatch(rec: Record) {
    let reg = registry().read();
    for (_, sink) in reg.iter() {
        if rec.level as u8 <= sink.max_level() as u8 {
            sink.record(&rec);
        }
    }
}

/// Logs a formatted message at an explicit level:
/// `log!(Level::Info, "serve", "listening on {addr}")`.
///
/// Expands to a gate check first — when disabled, the format arguments
/// are never evaluated.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $target:expr, $($arg:tt)+) => {{
        let lvl = $lvl;
        if $crate::enabled(lvl) {
            $crate::message(lvl, $target, ::std::format!($($arg)+));
        }
    }};
}

/// Logs at [`Level::Error`]: `error!("serve", "accept failed: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Error, $target, $($arg)+) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Warn, $target, $($arg)+) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Info, $target, $($arg)+) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Debug, $target, $($arg)+) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    // Test-only serialization lock: a const-initialized static, which
    // the (runtime-registered) checked wrapper cannot provide.
    use std::sync::Mutex; // rebert-lint: allow(raw-sync-primitive)

    /// Global tracing state is process-wide; tests that install sinks
    /// serialize on this.
    pub(crate) fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_spans_are_dead() {
        let _g = global_lock();
        assert!(!active());
        assert!(!enabled(Level::Error));
        let sp = span(Level::Info, "test", "nothing");
        assert!(!sp.is_live());
        assert_eq!(sp.id(), 0);
        // Events and macros are no-ops; this must not panic.
        event(Level::Info, "test", "nothing");
        info!("test", "also nothing {}", 1);
    }

    #[test]
    fn install_widens_and_uninstall_narrows_the_gate() {
        let _g = global_lock();
        let id = install(Arc::new(RingSink::new(16, Level::Debug)));
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        let id2 = install(Arc::new(RingSink::new(16, Level::Trace)));
        assert!(enabled(Level::Trace));
        uninstall(id2);
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        uninstall(id);
        assert!(!active());
        // Double uninstall is harmless.
        uninstall(id);
    }

    #[test]
    fn spans_nest_and_records_flow_to_the_ring() {
        let _g = global_lock();
        let ring = Arc::new(RingSink::new(64, Level::Trace));
        let id = install(ring.clone());
        {
            let outer = span(Level::Info, "test", "outer");
            assert!(outer.is_live());
            {
                let mut inner =
                    span_with(Level::Debug, "test", "inner", vec![("k", Value::U64(7))]);
                inner.add_field("done", true);
                event_with(Level::Trace, "test", "tick", vec![("i", Value::U64(1))]);
                let begins: Vec<Record> = ring
                    .drain()
                    .into_iter()
                    .filter(|r| r.kind == Kind::Begin || r.kind == Kind::Instant)
                    .collect();
                assert_eq!(begins.len(), 3);
                assert_eq!(begins[0].name, "outer");
                assert_eq!(begins[0].parent, 0);
                assert_eq!(begins[1].name, "inner");
                assert_eq!(begins[1].parent, outer.id());
                assert_eq!(begins[1].fields, vec![("k", Value::U64(7))]);
                // The instant event hangs off the innermost open span.
                assert_eq!(begins[2].name, "tick");
                assert_eq!(begins[2].span, inner.id());
            }
            let ends = ring.drain();
            assert_eq!(ends.len(), 1);
            assert_eq!(ends[0].kind, Kind::End);
            assert_eq!(ends[0].name, "inner");
            assert_eq!(ends[0].fields, vec![("done", Value::Bool(true))]);
        }
        uninstall(id);
    }

    #[test]
    fn end_at_pins_the_duration_exactly() {
        let _g = global_lock();
        let ring = Arc::new(RingSink::new(16, Level::Trace));
        let id = install(ring.clone());
        let sp = span(Level::Info, "test", "timed");
        let begin_ts = ring.drain()[0].ts_micros;
        sp.end_at(std::time::Duration::from_micros(12_345));
        let end = &ring.drain()[0];
        assert_eq!(end.ts_micros, begin_ts + 12_345);
        uninstall(id);
    }

    #[test]
    fn ctx_adoption_carries_span_and_fields_across_threads() {
        let _g = global_lock();
        let ring = Arc::new(RingSink::new(64, Level::Trace));
        let id = install(ring.clone());
        let root = span(Level::Info, "test", "root");
        let ctx = current_ctx().with_field("request_id", "req-42");
        assert_eq!(ctx.span(), root.id());
        let ctx2 = ctx.clone();
        std::thread::spawn(move || {
            let _c = enter_ctx(&ctx2);
            let _child = span(Level::Info, "test", "child");
            event(Level::Info, "test", "worker_tick");
        })
        .join()
        .unwrap();
        drop(root);
        let recs = ring.drain();
        let child = recs
            .iter()
            .find(|r| r.name == "child" && r.kind == Kind::Begin)
            .unwrap();
        assert_eq!(child.parent, ctx.span());
        assert!(child
            .fields
            .contains(&("request_id", Value::Str("req-42".to_string()))));
        let tick = recs.iter().find(|r| r.name == "worker_tick").unwrap();
        assert_eq!(tick.span, child.span);
        assert!(tick
            .fields
            .contains(&("request_id", Value::Str("req-42".to_string()))));
        // Different thread, different track.
        let root_begin = recs
            .iter()
            .find(|r| r.name == "root" && r.kind == Kind::Begin)
            .unwrap();
        assert_ne!(child.thread, root_begin.thread);
        uninstall(id);
    }

    #[test]
    fn level_filtering_respects_each_sinks_ceiling() {
        let _g = global_lock();
        let coarse = Arc::new(RingSink::new(16, Level::Warn));
        let fine = Arc::new(RingSink::new(16, Level::Debug));
        let a = install(coarse.clone());
        let b = install(fine.clone());
        event(Level::Warn, "test", "warned");
        event(Level::Debug, "test", "debugged");
        event(Level::Trace, "test", "traced"); // above both ceilings
        let coarse_names: Vec<&str> = coarse.drain().iter().map(|r| r.name).collect();
        let fine_names: Vec<&str> = fine.drain().iter().map(|r| r.name).collect();
        assert_eq!(coarse_names, vec!["warned"]);
        assert_eq!(fine_names, vec!["warned", "debugged"]);
        uninstall(a);
        uninstall(b);
    }

    #[test]
    fn macros_format_lazily_and_land_as_log_events() {
        let _g = global_lock();
        let ring = Arc::new(RingSink::new(16, Level::Info));
        let id = install(ring.clone());
        let mut evaluated = false;
        debug!("test", "{}", {
            evaluated = true;
            "never"
        });
        assert!(!evaluated, "format args ran despite a closed gate");
        info!("test", "hello {}", 42);
        let recs = ring.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "log");
        assert_eq!(
            recs[0].fields,
            vec![("message", Value::Str("hello 42".to_string()))]
        );
        uninstall(id);
    }
}
