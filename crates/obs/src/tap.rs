//! [`TapSink`]: a bounded per-subscriber broadcast for *live* record
//! streams.
//!
//! The ring ([`crate::RingSink`]) answers "what happened?"; the tap
//! answers "what is happening right now?". A single `TapSink` is
//! installed next to the ring for the daemon's lifetime; each
//! `POST /recover/stream` connection [`subscribe`](TapSink::subscribe)s
//! its own bounded queue, optionally filtered to the records carrying
//! its `request_id` context field, drains it while the job runs, and
//! unsubscribes by dropping the [`TapSubscription`].
//!
//! The write path inherits the ring's never-block contract twice over:
//! the subscriber list is read with `try_lock` (a racing
//! subscribe/unsubscribe costs one record for everyone, counted per
//! queue), and each queue is pushed with `try_lock` (contention or
//! overflow evicts/counts exactly like the ring). With zero
//! subscribers the per-record cost is one uncontended `try_lock` over
//! an empty vec.

use std::collections::VecDeque;
use std::sync::Arc;

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use rebert_sync::Mutex;

use crate::record::{Level, Record, Value};
use crate::sink::Sink;

/// One subscriber's bounded queue plus its optional request-id filter.
struct TapQueue {
    cap: usize,
    /// When set, only records whose fields carry
    /// `("request_id", Str(filter))` are enqueued. Context adoption
    /// (see `span.rs`) stamps that field on every record emitted under
    /// a request, including executor- and worker-thread records.
    filter: Option<String>,
    buf: Mutex<VecDeque<Record>>,
    dropped: AtomicU64,
}

impl TapQueue {
    fn matches(&self, rec: &Record) -> bool {
        match &self.filter {
            None => true,
            Some(want) => rec
                .fields
                .iter()
                .any(|(k, v)| *k == "request_id" && matches!(v, Value::Str(s) if s == want)),
        }
    }

    /// Never blocks: contention or overflow counts a drop, exactly
    /// like the ring's write path.
    fn push(&self, rec: &Record) {
        match self.buf.try_lock() {
            Some(mut q) => {
                if q.len() == self.cap {
                    q.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                q.push_back(rec.clone());
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Broadcast sink fanning records out to live subscribers. See the
/// module docs.
pub struct TapSink {
    level: Level,
    next_id: AtomicU64,
    subscribers: Mutex<Vec<(u64, Arc<TapQueue>)>>,
}

impl TapSink {
    /// Creates a tap admitting records up to `level`.
    pub fn new(level: Level) -> TapSink {
        TapSink {
            level,
            next_id: AtomicU64::new(1),
            subscribers: Mutex::new(Vec::new(), "obs.tap.subscribers"),
        }
    }

    /// Registers a bounded queue (at most `cap` records, min 1) and
    /// returns its handle. `request_id = Some(id)` narrows the queue to
    /// records whose context fields carry that id; `None` taps
    /// everything. Dropping the handle unsubscribes.
    pub fn subscribe(self: &Arc<Self>, cap: usize, request_id: Option<&str>) -> TapSubscription {
        let queue = Arc::new(TapQueue {
            cap: cap.max(1),
            filter: request_id.map(str::to_owned),
            buf: Mutex::new(VecDeque::new(), "obs.tap.queue"),
            dropped: AtomicU64::new(0),
        });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().push((id, Arc::clone(&queue)));
        TapSubscription {
            id,
            sink: Arc::clone(self),
            queue,
        }
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().retain(|(sid, _)| *sid != id);
    }
}

impl Sink for TapSink {
    fn record(&self, rec: &Record) {
        // The dispatcher holds the registry lock while calling us, so
        // this must never block: a subscribe/unsubscribe in flight
        // costs every subscriber this one record, counted below.
        if let Some(subs) = self.subscribers.try_lock() {
            for (_, queue) in subs.iter() {
                if queue.matches(rec) {
                    queue.push(rec);
                }
            }
        }
    }

    fn max_level(&self) -> Level {
        self.level
    }
}

/// A live subscription handle; dropping it unsubscribes the queue.
pub struct TapSubscription {
    id: u64,
    sink: Arc<TapSink>,
    queue: Arc<TapQueue>,
}

impl TapSubscription {
    /// Removes and returns everything currently queued, oldest first.
    /// Blocking (reader-side only), like [`crate::RingSink::drain`].
    pub fn drain(&self) -> Vec<Record> {
        let mut q = self.queue.buf.lock();
        q.drain(..).collect()
    }

    /// Records this subscriber lost to overflow eviction, write
    /// contention, or a racing (un)subscribe.
    pub fn dropped_events(&self) -> u64 {
        self.queue.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for TapSubscription {
    fn drop(&mut self) {
        self.sink.unsubscribe(self.id);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::record::Kind;

    fn rec(i: u64, request_id: Option<&str>) -> Record {
        let mut fields = vec![("i", Value::U64(i))];
        if let Some(id) = request_id {
            fields.push(("request_id", Value::Str(id.to_owned())));
        }
        Record {
            ts_micros: i,
            kind: Kind::Instant,
            level: Level::Info,
            target: "test",
            name: "tick",
            thread: 1,
            span: 0,
            parent: 0,
            fields,
        }
    }

    #[test]
    fn broadcast_reaches_every_subscriber() {
        let tap = Arc::new(TapSink::new(Level::Debug));
        let a = tap.subscribe(8, None);
        let b = tap.subscribe(8, None);
        tap.record(&rec(1, None));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        assert_eq!(tap.subscriber_count(), 2);
    }

    #[test]
    fn request_id_filter_admits_only_matching_records() {
        let tap = Arc::new(TapSink::new(Level::Debug));
        let sub = tap.subscribe(8, Some("req-7"));
        tap.record(&rec(1, Some("req-7")));
        tap.record(&rec(2, Some("req-8")));
        tap.record(&rec(3, None));
        tap.record(&rec(4, Some("req-7")));
        let got: Vec<u64> = sub.drain().iter().map(|r| r.ts_micros).collect();
        assert_eq!(got, vec![1, 4]);
        assert_eq!(sub.dropped_events(), 0, "filtered-out is not dropped");
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_per_subscriber() {
        let tap = Arc::new(TapSink::new(Level::Debug));
        let small = tap.subscribe(2, None);
        let large = tap.subscribe(8, None);
        for i in 0..5 {
            tap.record(&rec(i, None));
        }
        let kept: Vec<u64> = small.drain().iter().map(|r| r.ts_micros).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(small.dropped_events(), 3);
        assert_eq!(large.drain().len(), 5);
        assert_eq!(large.dropped_events(), 0);
    }

    #[test]
    fn dropping_the_handle_unsubscribes() {
        let tap = Arc::new(TapSink::new(Level::Debug));
        let sub = tap.subscribe(8, None);
        assert_eq!(tap.subscriber_count(), 1);
        drop(sub);
        assert_eq!(tap.subscriber_count(), 0);
        // Recording into an empty tap is a no-op, not an error.
        tap.record(&rec(1, None));
    }

    #[test]
    fn contended_record_drops_instead_of_blocking() {
        let tap = Arc::new(TapSink::new(Level::Debug));
        let sub = tap.subscribe(8, None);
        let held = sub.queue.buf.lock();
        tap.record(&rec(1, None));
        assert_eq!(sub.dropped_events(), 1);
        drop(held);
        tap.record(&rec(2, None));
        assert_eq!(sub.drain().len(), 1);
    }
}

/// Loom model mirroring the ring's accounting claim for the tap: a
/// record racing a subscribe is either delivered, dropped-and-counted,
/// or skipped because the subscriber was not yet registered — never
/// blocked and never lost untracked once registered. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p rebert-obs --lib loom`.
#[cfg(all(test, loom))]
mod loom_models {
    use super::*;
    use crate::record::Kind;
    use loom::thread;

    fn rec(i: u64) -> Record {
        Record {
            ts_micros: i,
            kind: Kind::Instant,
            level: Level::Info,
            target: "loom",
            name: "tick",
            thread: 1,
            span: 0,
            parent: 0,
            fields: vec![("i", Value::U64(i))],
        }
    }

    #[test]
    fn loom_tap_record_vs_drain_accounts_for_every_push() {
        loom::model(|| {
            let tap = Arc::new(TapSink::new(Level::Debug));
            let sub = tap.subscribe(2, None);
            tap.record(&rec(1));
            let writer = {
                let tap = Arc::clone(&tap);
                thread::spawn(move || tap.record(&rec(2)))
            };
            let drained = sub.drain().len();
            writer.join().unwrap();
            let residue = sub.drain().len();
            let dropped = sub.dropped_events() as usize;
            assert_eq!(drained + residue + dropped, 2);
        });
    }
}
