//! [`RingSink`]: a bounded in-memory ring of records that *never
//! blocks the recording thread*.
//!
//! Scoring workers must not stall on telemetry. The ring therefore
//! takes its lock with `try_lock` on the write path: if a reader is
//! mid-drain (or another writer holds the lock for the nanoseconds a
//! push takes), the record is counted in `dropped_events` and thrown
//! away instead of waiting. When the ring is full, the *oldest* record
//! is evicted and counted — recent history is what `/debug/trace`
//! wants. Readers ([`RingSink::drain`]) take the lock blocking, which
//! is fine: only debug endpoints and tests read.
//!
//! The same source runs on loom primitives under `--cfg loom` (models
//! at the bottom of this file), alongside the serve queue and par
//! claim-protocol models — the `rebert_sync` wrappers do the
//! std-vs-loom switch internally, and in debug builds additionally
//! feed the ring's lock into the workspace lock-order graph.

use std::collections::VecDeque;

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use rebert_sync::Mutex;

use crate::record::{Level, Record};
use crate::sink::Sink;

/// Bounded, non-blocking record buffer. See the module docs.
pub struct RingSink {
    cap: usize,
    level: Level,
    buf: Mutex<VecDeque<Record>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring holding at most `cap` records (min 1), keeping
    /// records up to `level`.
    pub fn new(cap: usize, level: Level) -> RingSink {
        RingSink {
            cap: cap.max(1),
            level,
            buf: Mutex::new(VecDeque::new(), "obs.ring.buf"),
            dropped: AtomicU64::new(0),
        }
    }

    /// The write path: clones `rec` into the ring without ever
    /// blocking. Contention or overflow increments `dropped_events`.
    pub fn push(&self, rec: &Record) {
        match self.buf.try_lock() {
            Some(mut q) => {
                if q.len() == self.cap {
                    q.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                q.push_back(rec.clone());
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns everything currently buffered, oldest
    /// first. Blocking (reader-side only).
    pub fn drain(&self) -> Vec<Record> {
        let mut q = self.buf.lock();
        q.drain(..).collect()
    }

    /// Records lost so far to overflow-eviction or write contention.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl Sink for RingSink {
    fn record(&self, rec: &Record) {
        self.push(rec);
    }

    fn max_level(&self) -> Level {
        self.level
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::record::{Kind, Value};

    fn rec(i: u64) -> Record {
        Record {
            ts_micros: i,
            kind: Kind::Instant,
            level: Level::Info,
            target: "test",
            name: "tick",
            thread: 1,
            span: 0,
            parent: 0,
            fields: vec![("i", Value::U64(i))],
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(3, Level::Trace);
        for i in 0..5 {
            ring.push(&rec(i));
        }
        assert_eq!(ring.dropped_events(), 2);
        let kept: Vec<u64> = ring.drain().iter().map(|r| r.ts_micros).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(ring.is_empty());
        // The counter survives the drain.
        assert_eq!(ring.dropped_events(), 2);
    }

    #[test]
    fn contended_push_drops_instead_of_blocking() {
        let ring = RingSink::new(8, Level::Trace);
        ring.push(&rec(0));
        let held = ring.buf.lock();
        // Lock is held: the push must return immediately and count a drop.
        ring.push(&rec(1));
        assert_eq!(ring.dropped_events(), 1);
        drop(held);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let ring = RingSink::new(0, Level::Trace);
        assert_eq!(ring.capacity(), 1);
        ring.push(&rec(7));
        ring.push(&rec(8));
        assert_eq!(
            ring.drain().iter().map(|r| r.ts_micros).collect::<Vec<_>>(),
            vec![8]
        );
        assert_eq!(ring.dropped_events(), 1);
    }
}

/// Loom models for the ring's claim that nothing is ever silently
/// lost: every push is either buffered, evicted-and-counted, or
/// contention-counted. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p rebert-obs --lib loom`.
#[cfg(all(test, loom))]
mod loom_models {
    use super::*;
    use crate::record::{Kind, Value};
    use loom::sync::Arc;
    use loom::thread;

    fn rec(i: u64) -> Record {
        Record {
            ts_micros: i,
            kind: Kind::Instant,
            level: Level::Info,
            target: "loom",
            name: "tick",
            thread: 1,
            span: 0,
            parent: 0,
            fields: vec![("i", Value::U64(i))],
        }
    }

    /// Two producers race into a ring smaller than the total pushed:
    /// afterwards buffered + dropped always equals pushed, and the
    /// buffer never exceeds capacity.
    #[test]
    fn loom_ring_accounts_for_every_push() {
        loom::model(|| {
            let ring = Arc::new(RingSink::new(2, Level::Trace));
            let a = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    ring.push(&rec(1));
                    ring.push(&rec(2));
                })
            };
            ring.push(&rec(3));
            a.join().unwrap();
            let buffered = ring.drain().len();
            let dropped = ring.dropped_events() as usize;
            assert!(buffered <= 2, "ring exceeded capacity: {buffered}");
            assert_eq!(buffered + dropped, 3, "push lost without being counted");
        });
    }

    /// A producer racing a draining reader never blocks and never
    /// loses a record untracked: the push lands in the drain, in the
    /// residue, or in the dropped counter.
    #[test]
    fn loom_push_vs_drain_never_loses_untracked() {
        loom::model(|| {
            let ring = Arc::new(RingSink::new(4, Level::Trace));
            ring.push(&rec(1));
            let writer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.push(&rec(2)))
            };
            let drained = ring.drain().len();
            writer.join().unwrap();
            let residue = ring.drain().len();
            let dropped = ring.dropped_events() as usize;
            assert_eq!(drained + residue + dropped, 2);
        });
    }
}
