//! Property-based tests of the benchmark generator: every profile in a
//! broad random family yields a valid circuit whose labels exactly
//! partition the flip-flops, deterministically per seed.

use proptest::prelude::*;
use rebert_circuits::{corrupt, generate, Profile};
use rebert_netlist::Simulator;

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (2usize..=8, 8usize..=48, 40usize..=400)
        .prop_filter_map("words must fit in ffs", |(words, ffs, gates)| {
            (ffs >= words * 2).then(|| Profile::new("prop", gates, ffs, words))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_circuits_are_valid(p in profile_strategy(), seed in any::<u64>()) {
        let c = generate(&p, seed);
        prop_assert!(c.netlist.validate().is_ok());
        prop_assert_eq!(c.netlist.dff_count(), p.ffs);
        prop_assert_eq!(c.labels.word_count(), p.words);
        prop_assert!(c.netlist.gate_count() >= p.target_gates);
    }

    #[test]
    fn labels_partition_ffs_exactly(p in profile_strategy(), seed in any::<u64>()) {
        let c = generate(&p, seed);
        let assign = c.labels.assignment();
        prop_assert_eq!(assign.len(), p.ffs);
        // Dense word ids.
        let max = assign.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max + 1, p.words);
    }

    #[test]
    fn generation_is_deterministic(p in profile_strategy(), seed in any::<u64>()) {
        let a = generate(&p, seed);
        let b = generate(&p, seed);
        prop_assert_eq!(a.netlist.gate_count(), b.netlist.gate_count());
        prop_assert_eq!(a.netlist.net_count(), b.netlist.net_count());
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn generated_circuits_simulate(p in profile_strategy(), seed in 0u64..32) {
        // The generator's output must be runnable, not just well-formed.
        let c = generate(&p, seed);
        let mut sim = Simulator::new(&c.netlist).expect("acyclic");
        let n = c.netlist.primary_inputs().len();
        let inputs = vec![true; n];
        let s0: Vec<bool> = sim.state().to_vec();
        for _ in 0..4 {
            sim.step(&inputs);
        }
        // State must evolve for at least one of a few stimulus patterns
        // (an FSM plus counters cannot be globally stuck at zero for all
        // inputs; allow the rare all-hold seed by trying the complement).
        if sim.state() == &s0[..] {
            let inputs = vec![false; n];
            for _ in 0..4 {
                sim.step(&inputs);
            }
        }
        prop_assert_eq!(sim.state().len(), p.ffs);
    }

    #[test]
    fn corruption_of_generated_circuits_validates(
        p in profile_strategy(),
        seed in any::<u64>(),
        r in 0.0f64..=1.0,
    ) {
        let c = generate(&p, seed);
        let (bad, stats) = corrupt(&c.netlist, r, seed ^ 1);
        prop_assert!(bad.validate().is_ok());
        prop_assert_eq!(bad.dff_count(), p.ffs);
        if r == 0.0 {
            prop_assert_eq!(stats.replaced, 0);
        }
        // Replacement rate tracks the R-Index loosely.
        if p.target_gates >= 100 && r > 0.0 {
            let rate = stats.replacement_rate();
            prop_assert!((rate - r).abs() < 0.25, "rate {} vs r {}", rate, r);
        }
    }
}
