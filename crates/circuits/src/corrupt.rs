//! Controlled netlist corruption (the paper's **R-Index** procedure).
//!
//! Every gate in the netlist is visited and, with probability `r_index`,
//! replaced by a randomly chosen functionally-equivalent template from
//! [`crate::equiv::templates_for`]. `r_index = 0` leaves the netlist
//! untouched; `r_index = 1` replaces every gate that has a registered
//! template. Because all templates are truth-table verified, corruption
//! never changes circuit function — only its structural patterns.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use rebert_netlist::{Driver, NetId, Netlist};

use crate::equiv::{templates_for, TemplateRef};

/// Statistics reported by [`corrupt`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptStats {
    /// Gates visited.
    pub visited: usize,
    /// Gates replaced by a template.
    pub replaced: usize,
    /// Gates left unchanged (either by the coin flip or because no
    /// template exists for their type/arity).
    pub kept: usize,
    /// Total gates in the corrupted netlist.
    pub gates_out: usize,
}

impl CorruptStats {
    /// Fraction of visited gates that were replaced.
    pub fn replacement_rate(&self) -> f64 {
        if self.visited == 0 {
            0.0
        } else {
            self.replaced as f64 / self.visited as f64
        }
    }
}

/// Applies R-Index corruption and returns the corrupted netlist plus
/// statistics. Deterministic for a fixed `(netlist, r_index, seed)`.
///
/// Net names, primary inputs/outputs, flip-flops, and therefore the
/// definition of every **bit** are preserved; replacement temporaries get
/// `__cor_*` names.
///
/// # Panics
///
/// Panics if `r_index` is not within `0.0..=1.0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_circuits::corrupt;
/// use rebert_netlist::parse_bench;
///
/// let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ny = NAND(a, b)\nOUTPUT(y)\n")?;
/// let (bad, stats) = corrupt(&nl, 1.0, 7);
/// assert_eq!(stats.replaced, 1);
/// assert!(bad.gate_count() > nl.gate_count()); // template is larger
/// # Ok(())
/// # }
/// ```
pub fn corrupt(nl: &Netlist, r_index: f64, seed: u64) -> (Netlist, CorruptStats) {
    assert!(
        (0.0..=1.0).contains(&r_index),
        "r_index must be in [0, 1], got {r_index}"
    );
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut out = Netlist::new(nl.name());
    let mut stats = CorruptStats::default();

    for (_, name) in nl.iter_nets() {
        out.add_net(name);
    }
    for &pi in nl.primary_inputs() {
        out.promote_to_input(pi);
    }
    for (id, _) in nl.iter_nets() {
        match nl.driver(id) {
            Driver::ConstOne => out.promote_to_const(id, true),
            Driver::ConstZero if nl.net_name(id).starts_with("__const") => {
                out.promote_to_const(id, false)
            }
            _ => {}
        }
    }
    for &po in nl.primary_outputs() {
        out.add_output(po);
    }

    let mut tmp = 0usize;
    for g in nl.gates() {
        stats.visited += 1;
        let candidates = templates_for(g.gtype, g.inputs.len());
        let replace = !candidates.is_empty() && rng.gen_bool(r_index);
        if !replace {
            out.add_gate(g.gtype, g.inputs.clone(), g.output)
                .expect("mirrored output net is free");
            stats.kept += 1;
            continue;
        }
        let t = &candidates[rng.gen_range(0..candidates.len())];
        let mut step_nets: Vec<NetId> = Vec::with_capacity(t.steps.len());
        for (si, s) in t.steps.iter().enumerate() {
            let args: Vec<NetId> = s
                .args
                .iter()
                .map(|r| match *r {
                    TemplateRef::Input(i) => g.inputs[i],
                    TemplateRef::Step(prev) => step_nets[prev],
                })
                .collect();
            let is_last = si + 1 == t.steps.len();
            let net = if is_last {
                out.add_gate(s.gtype, args, g.output)
                    .expect("mirrored output net is free");
                g.output
            } else {
                let n = out.add_net(format!("__cor_{tmp}"));
                tmp += 1;
                out.add_gate(s.gtype, args, n).expect("fresh net is free");
                n
            };
            step_nets.push(net);
        }
        stats.replaced += 1;
    }

    for ff in nl.dffs() {
        out.add_dff(ff.d, ff.q)
            .expect("flip-flop translation cannot conflict");
    }
    stats.gates_out = out.gate_count();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::{parse_bench, Simulator};

    const ADDER: &str = "\
INPUT(a)
INPUT(b)
INPUT(cin)
axb = XOR(a, b)
s = XOR(axb, cin)
t1 = AND(a, b)
t2 = AND(axb, cin)
cout = OR(t1, t2)
q0 = DFF(s)
q1 = DFF(cout)
OUTPUT(s)
OUTPUT(cout)
";

    fn assert_same_function(a: &Netlist, b: &Netlist) {
        let n = a.primary_inputs().len();
        let sim_a = Simulator::new(a).unwrap();
        let sim_b = Simulator::new(b).unwrap();
        // Try all PI patterns and all (small) state patterns.
        let s = a.dff_count();
        assert!(n + s <= 12);
        for srow in 0..(1u32 << s) {
            let state: Vec<bool> = (0..s).map(|j| (srow >> j) & 1 == 1).collect();
            for row in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
                let va = sim_a.eval_combinational(&inputs, &state);
                let vb = sim_b.eval_combinational(&inputs, &state);
                for (id_a, name) in a.iter_nets() {
                    if name.starts_with("__") {
                        continue;
                    }
                    if let Some(id_b) = b.find_net(name) {
                        assert_eq!(
                            va[id_a.index()],
                            vb[id_b.index()],
                            "net `{name}` differs (inputs {row:b}, state {srow:b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn r_zero_is_identity() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let (out, stats) = corrupt(&nl, 0.0, 1);
        assert_eq!(stats.replaced, 0);
        assert_eq!(out.gate_count(), nl.gate_count());
        assert_same_function(&nl, &out);
    }

    #[test]
    fn r_one_replaces_everything() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let (out, stats) = corrupt(&nl, 1.0, 1);
        assert_eq!(stats.replaced, stats.visited);
        assert!(out.gate_count() > nl.gate_count());
        assert!(out.validate().is_ok());
        assert_same_function(&nl, &out);
    }

    #[test]
    fn intermediate_r_partial_and_equivalent() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let (out, stats) = corrupt(&nl, 0.5, 42);
        assert!(stats.replaced > 0 || stats.kept > 0);
        assert!(out.validate().is_ok());
        assert_same_function(&nl, &out);
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let (a, sa) = corrupt(&nl, 0.5, 99);
        let (b, sb) = corrupt(&nl, 0.5, 99);
        assert_eq!(sa, sb);
        assert_eq!(a.gate_count(), b.gate_count());
        for (ga, gb) in a.gates().iter().zip(b.gates()) {
            assert_eq!(ga.gtype, gb.gtype);
        }
        let (c, _) = corrupt(&nl, 0.5, 100);
        // Different seed very likely differs in at least gate count or types.
        let same = a.gate_count() == c.gate_count()
            && a.gates()
                .iter()
                .zip(c.gates())
                .all(|(x, y)| x.gtype == y.gtype);
        assert!(!same, "different seeds should corrupt differently");
    }

    #[test]
    fn bits_preserved() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let (out, _) = corrupt(&nl, 1.0, 5);
        let names_in: Vec<&str> = nl.bits().iter().map(|&b| nl.net_name(b)).collect();
        let names_out: Vec<&str> = out.bits().iter().map(|&b| out.net_name(b)).collect();
        assert_eq!(names_in, names_out);
    }

    #[test]
    #[should_panic(expected = "r_index")]
    fn r_out_of_range_panics() {
        let nl = parse_bench("fa", ADDER).unwrap();
        let _ = corrupt(&nl, 1.5, 0);
    }

    #[test]
    fn sequential_behaviour_preserved_over_time() {
        let src = "\
INPUT(en)
nq0 = XOR(q0, en)
t = AND(q0, en)
nq1 = XOR(q1, t)
q0 = DFF(nq0)
q1 = DFF(nq1)
OUTPUT(q1)
";
        let nl = parse_bench("cnt", src).unwrap();
        let (out, _) = corrupt(&nl, 1.0, 3);
        let mut sa = Simulator::new(&nl).unwrap();
        let mut sb = Simulator::new(&out).unwrap();
        for i in 0..10 {
            let en = i % 3 != 0;
            sa.step(&[en]);
            sb.step(&[en]);
            assert_eq!(sa.state(), sb.state(), "cycle {i}");
        }
    }
}
